//! Quantifies the paper's Figure 1 intuition: **initial graph locality**.
//!
//! Greedy algorithms start from a random k-degree graph whose neighbours
//! are "unrelated" (average edge similarity ≈ the dataset's background
//! similarity). C²'s clustering instead starts every user among
//! FastRandomHash co-members, whose similarity is provably biased upward
//! (Theorem 1). This example measures both starting configurations on a
//! real-shaped dataset:
//!
//! * random start: average exact similarity of `k` random neighbours;
//! * C² start: average exact similarity of `k` co-cluster members.
//!
//! ```text
//! cargo run --release --example graph_locality
//! ```

use cluster_and_conquer::prelude::*;
use cnc_core::{cluster_dataset, FastRandomHash};
use cnc_graph::avg_exact_similarity;

fn main() {
    let k = 10;
    let dataset = DatasetProfile::MovieLens10M.generate(0.04, 9);
    println!("dataset: {}", DatasetStats::compute(&dataset));

    // --- (a) Traditional greedy start: k random neighbours ----------------
    let random = KnnGraph::random_init(dataset.num_users(), k, 9, |_, _| 0.0);
    let random_locality = avg_exact_similarity(&random, &dataset);

    // --- (b) C² start: k co-cluster members -------------------------------
    // Build the paper's clustering and, for each user, take the first k
    // users sharing one of her clusters (round-robin over her t clusters).
    let functions = FastRandomHash::family(9, 8, 4096);
    let clustering = cluster_dataset(&dataset, &functions, 2000);
    let mut graph = KnnGraph::new(dataset.num_users(), k);
    for cluster in &clustering.clusters {
        for (i, &u) in cluster.iter().enumerate() {
            for offset in 1..=k {
                let v = cluster[(i + offset) % cluster.len()];
                if v != u {
                    graph.insert(u, v, 0.0);
                }
                if graph.neighbors(u).len() >= k {
                    break;
                }
            }
        }
    }
    let c2_locality = avg_exact_similarity(&graph, &dataset);

    // --- (c) The ceiling: the exact KNN graph -----------------------------
    let raw = cnc_similarity::SimilarityData::build(SimilarityBackend::Raw, &dataset);
    let ctx = BuildContext { dataset: &dataset, sim: &raw, k, threads: 0, seed: 9 };
    let exact = BruteForce.build(&ctx);
    let exact_locality = avg_exact_similarity(&exact, &dataset);

    println!("\naverage similarity of a user's k = {k} starting neighbours:");
    println!("  (a) random k-degree graph (greedy start) : {random_locality:.4}");
    println!("  (b) FastRandomHash co-cluster members     : {c2_locality:.4}");
    println!("  (c) exact KNN graph (the ceiling)         : {exact_locality:.4}");
    println!(
        "\nC²'s starting configuration is ×{:.1} closer to the ceiling than the random start,",
        c2_locality / random_locality.max(1e-9)
    );
    println!("which is why its local search needs far fewer similarity computations (Fig 1).");
}
