//! Run all four KNN-graph algorithms on one dataset and print
//! Table-II-style rows (time, similarity computations, quality).
//!
//! ```text
//! cargo run --release --example algorithm_bakeoff [-- <scale>]
//! ```

use cluster_and_conquer::prelude::*;
use cnc_similarity::SimilarityData;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let k = 30;
    let seed = 11;

    let dataset = DatasetProfile::AmazonMovies.generate(scale, seed);
    println!("AmazonMovies calibration at scale {scale}: {}", DatasetStats::compute(&dataset));

    // Exact reference (raw Jaccard) for the quality column.
    println!("building exact reference graph…");
    let raw = SimilarityData::build(SimilarityBackend::Raw, &dataset);
    let ctx = BuildContext { dataset: &dataset, sim: &raw, k, threads: 0, seed };
    let exact = BruteForce.build(&ctx);

    println!("\n{:<12} {:>9} {:>14} {:>8}", "algorithm", "time (s)", "similarities", "quality");
    let hyrec = Hyrec::default();
    let nndescent = NnDescent::default();
    let lsh = Lsh::default();
    let c2 = ClusterAndConquer::new(C2Config { seed, ..C2Config::default() });
    let algos: [&dyn KnnAlgorithm; 4] = [&hyrec, &nndescent, &lsh, &c2];
    for algo in algos {
        // Every competitor runs on the paper's 1024-bit GoldFinger backend.
        let start = Instant::now();
        let sim = SimilarityData::build(SimilarityBackend::default(), &dataset);
        let ctx = BuildContext { dataset: &dataset, sim: &sim, k, threads: 0, seed };
        let graph = algo.build(&ctx);
        let elapsed = start.elapsed().as_secs_f64();
        let q = quality(&graph, &exact, &dataset);
        println!("{:<12} {:>9.3} {:>14} {:>8.3}", algo.name(), elapsed, sim.comparisons(), q);
    }
}
