//! Quickstart: build a KNN graph with Cluster-and-Conquer in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster_and_conquer::prelude::*;

fn main() {
    // 0. Turn telemetry on: every pipeline stage below records a span
    //    (wall time + comparison counts) into the global collector.
    let telemetry = Telemetry::global();
    telemetry.enable(true);

    // 1. A dataset: users × items. Here a seeded synthetic one; plug your
    //    own ratings with `cnc_dataset::io::load_ratings`.
    let dataset = SyntheticConfig::small(42).generate();
    println!("dataset: {}", DatasetStats::compute(&dataset));

    // 2. Configure C². The defaults are the paper's §IV-C setup
    //    (k = 30, b = 4096, t = 8, N = 2000, 1024-bit GoldFinger).
    let config = C2Config { k: 10, ..C2Config::default() };

    // 3. Build the graph.
    let result = ClusterAndConquer::new(config).build(&dataset);
    println!(
        "built KNN graph: {} users × k={} in {:.3}s ({} clusters, {} splits, {} similarities)",
        result.graph.num_users(),
        result.graph.k(),
        result.stats.timings.total.as_secs_f64(),
        result.stats.num_clusters,
        result.stats.splits,
        result.stats.comparisons,
    );

    // 4. Use it: the most similar user to user 0.
    let best = result.graph.best_neighbor(0).expect("user 0 has neighbours");
    println!(
        "user 0's nearest neighbour is user {} (estimated Jaccard {:.3}, exact {:.3})",
        best.user,
        best.sim,
        Jaccard::similarity(dataset.profile(0), dataset.profile(best.user)),
    );

    // 5. Where did the time go? The telemetry span summary is the
    //    stage-level breakdown the paper reports in Table 1.
    println!("\nstage                 time        comparisons");
    for span in telemetry.span_summary() {
        let comparisons = span
            .attrs
            .iter()
            .find(|(key, _)| *key == "comparisons")
            .map_or(String::new(), |(_, total)| total.to_string());
        println!("{:<20}  {:>8.3} ms  {:>11}", span.name, span.total_ns as f64 / 1e6, comparisons);
    }
}
