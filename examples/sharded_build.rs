//! Sharded map-reduce graph construction (§VIII, executed).
//!
//! Builds the same C² KNN graph twice — once with the in-process pipeline,
//! once on `cnc-runtime`'s sharded engine with a multi-shard reduce and a
//! file-backed shuffle — then compares the deployment plan's *predicted*
//! figures with the engine's *measured* ones and checks the two graphs
//! agree.
//!
//! ```text
//! cargo run --release --example sharded_build
//! ```

use cluster_and_conquer::prelude::*;

fn main() {
    // A mid-size dataset with enough clusters to shard meaningfully.
    let mut cfg = SyntheticConfig::small(4242);
    cfg.num_users = 4_000;
    cfg.num_items = 2_000;
    cfg.communities = 16;
    cfg.mean_profile = 25.0;
    cfg.min_profile = 8;
    let dataset = cfg.generate();
    println!("dataset: {}", DatasetStats::compute(&dataset));

    let c2 = C2Config {
        k: 10,
        b: 256,
        t: 4,
        max_cluster_size: 400,
        backend: SimilarityBackend::Raw,
        seed: 4242,
        ..C2Config::default()
    };
    let builder = ClusterAndConquer::new(c2);

    // Single-process reference build.
    let single = builder.build(&dataset);
    println!(
        "\nsingle-process build: {} clusters, {} comparisons, {:.1} ms",
        single.stats.num_clusters,
        single.stats.comparisons,
        single.stats.timings.total.as_secs_f64() * 1e3,
    );

    // Sharded build: 4 map workers, 2 reduce shards, spilling each
    // map→reduce stream to disk once it exceeds 64 KiB.
    let runtime = RuntimeConfig {
        workers: 4,
        reduce_shards: 2,
        channel_capacity: 64,
        steal: StealPolicy::MostLoaded,
        spill: SpillMode::Auto(64 * 1024),
    };
    let sharded = builder.build_sharded(&dataset, &runtime);
    let report = &sharded.report;

    println!(
        "\nsharded build over {} workers and {} reduce shards:",
        report.workers.len(),
        report.reducers.len()
    );
    println!("  predicted speed-up (LPT plan):  {:.2}", report.plan.speedup());
    println!("  measured speed-up (Σbusy/max):  {:.2}", report.measured_speedup());
    println!("  predicted imbalance:            {:.3}", report.plan.imbalance());
    println!("  measured imbalance:             {:.3}", report.measured_imbalance());
    println!("  predicted shuffle entries:      {}", report.plan.merge_traffic);
    println!("  measured shuffle entries:       {}", report.shuffle_entries);
    println!("  clusters stolen by idle shards: {}", report.stolen_clusters());
    println!("  reduce-stage speed-up:          {:.2}", report.reduce_speedup());
    println!("  shuffle skew (max/ideal):       {:.3}", report.shuffle_skew());
    println!(
        "  spilled to disk:                {} entries, {} bytes",
        report.total_spill_entries(),
        report.total_spill_bytes()
    );
    println!(
        "  map+reduce wall:                {:.1} ms",
        report.map_reduce_wall.as_secs_f64() * 1e3
    );
    for w in &report.workers {
        println!(
            "    worker {}: {} clusters ({} stolen), busy {:.1} ms, shipped {} entries \
             ({} spilled)",
            w.worker,
            w.clusters.len(),
            w.stolen,
            w.busy.as_secs_f64() * 1e3,
            w.shuffle_entries,
            w.spilled_entries,
        );
    }
    for r in &report.reducers {
        println!(
            "    reducer {}: {} users, merged {} entries ({} from spill files), busy {:.1} ms",
            r.shard,
            r.users,
            r.entries,
            r.spilled_entries,
            r.busy.as_secs_f64() * 1e3,
        );
    }

    report.check_invariants().expect("shuffle accounting must balance");

    // The sharded merge is order-independent, so the graphs must agree.
    let agree = dataset
        .users()
        .all(|u| sharded.graph.neighbors(u).sorted() == single.graph.neighbors(u).sorted());
    println!("\ngraphs identical: {agree}");
    assert!(agree, "sharded and single-process graphs diverged");
}
