//! An online-news-style recommendation pipeline (the paper's motivating
//! application: "online news recommenders, in which the use of fresh data is
//! of utmost importance").
//!
//! Walks the full production loop end to end:
//!
//! 1. **Build** — a batch of user/article interactions arrives and an
//!    approximate KNN graph is built as fast as possible (C² vs the exact
//!    brute force, the paper's Table III protocol at small scale);
//! 2. **Snapshot** — the built serving state (dataset + graph +
//!    fingerprints) is persisted to one binary file;
//! 3. **Reload & serve** — a "serving host" brings the snapshot back up
//!    and answers reader queries while absorbing a stream of new readers,
//!    rebuilding and atomically swapping in a fresh epoch mid-stream.
//!
//! ```text
//! cargo run --release --example news_recommender
//! ```

use cluster_and_conquer::prelude::*;
use cnc_dataset::CrossValidation;
use std::time::Instant;

fn main() {
    // "Articles read" dataset: MovieLens10M calibration at 3% scale.
    let dataset = DatasetProfile::MovieLens10M.generate(0.03, 7);
    println!("news corpus: {}", DatasetStats::compute(&dataset));

    // Hold out 20% of each reader's history as the ground truth to recover.
    let cv = CrossValidation::new(&dataset, 5, 7);
    let split = cv.split(&dataset, 0);
    let k = 20;
    let recommendations = 30;

    // --- Exact pipeline (what freshness constraints cannot afford) -------
    let t0 = Instant::now();
    let sim = cnc_similarity::SimilarityData::build(SimilarityBackend::Raw, &split.train);
    let ctx = BuildContext { dataset: &split.train, sim: &sim, k, threads: 0, seed: 7 };
    let exact_graph = BruteForce.build(&ctx);
    let exact_time = t0.elapsed();
    let exact_recall =
        Recommender::new(&split.train, &exact_graph).recall(&split.test, recommendations);

    // --- C² pipeline (the freshness-friendly path) ------------------------
    let t1 = Instant::now();
    let config = C2Config { k, seed: 7, ..C2Config::default() };
    let result = ClusterAndConquer::new(config).build(&split.train);
    let c2_time = t1.elapsed();
    let c2_recall =
        Recommender::new(&split.train, &result.graph).recall(&split.test, recommendations);

    println!("\n                 build time   recall@{recommendations}");
    println!("exact KNN graph   {:>8.3}s   {:.3}", exact_time.as_secs_f64(), exact_recall);
    println!(
        "C² (ours)         {:>8.3}s   {:.3}   (×{:.1} faster, Δrecall {:+.3})",
        c2_time.as_secs_f64(),
        c2_recall,
        exact_time.as_secs_f64() / c2_time.as_secs_f64(),
        c2_recall - exact_recall
    );

    // Fresh recommendations for one reader.
    let reader: u32 = 3;
    let picks = Recommender::new(&split.train, &result.graph).recommend(reader, 5);
    println!("\ntop-5 fresh articles for reader {reader}: {picks:?}");

    // --- Serving: build → snapshot → reload → queries + streaming inserts
    let serving_config = ServingConfig {
        c2: config,
        runtime: RuntimeConfig::default(),
        beam: BeamSearchConfig { beam_width: 48, entry_points: 8, max_comparisons: 0 },
        // Small epoch budget so the demo stream triggers a swap.
        rebuild_after: 25,
        ..ServingConfig::default()
    };
    let t2 = Instant::now();
    let engine = ServingEngine::build(split.train.clone(), serving_config);
    println!(
        "\nserving epoch 1 built on the sharded runtime in {:.3}s",
        t2.elapsed().as_secs_f64()
    );

    let snap_path = std::env::temp_dir().join("news_recommender.snap");
    // Streams straight from the epoch's buffers and renames into place
    // atomically — no clone, and a crash never clobbers a good snapshot.
    let bytes = engine.write_snapshot(&snap_path).expect("snapshot write failed");
    println!("snapshot: {} KiB → {}", bytes / 1024, snap_path.display());

    // A serving host restarts from the file and answers identically.
    let snapshot = Snapshot::load(&snap_path).expect("snapshot load failed");
    let server = ServingEngine::from_snapshot(snapshot, serving_config);
    let probe = split.train.profile(3);
    assert_eq!(
        engine.query(probe, 5, 99).neighbors,
        server.query(probe, 5, 99).neighbors,
        "reloaded engine must answer identically"
    );
    println!("reloaded engine answers queries identically to the builder");

    // Mixed online traffic: cold-start visitors query, new readers sign up.
    let t3 = Instant::now();
    let (mut queries, mut swaps) = (0u32, 0u32);
    let mut session = server.session();
    for i in 0..30u32 {
        // A visitor with a partial history asks for similar readers…
        let visitor: Vec<u32> =
            split.train.profile((i * 13) % 1000).iter().copied().take(10).collect();
        let answer = server.query_with(&mut session, &visitor, 10, i as u64);
        queries += 1;

        // …and a new reader signs up with that history.
        let outcome = server.insert(visitor, i as u64);
        if let Some(epoch) = outcome.published {
            swaps += 1;
            println!(
                "  epoch {epoch} published after {} inserts ({} users served)",
                server.stats().inserts,
                server.stats().num_users
            );
        }
        assert!(!answer.neighbors.is_empty());
    }
    let stats = server.stats();
    println!(
        "served {queries} queries + {} inserts in {:.3}s across {swaps} epoch swap(s); \
         now serving {} readers (epoch {})",
        stats.inserts,
        t3.elapsed().as_secs_f64(),
        stats.num_users,
        stats.epoch,
    );
    let _ = std::fs::remove_file(&snap_path);
}
