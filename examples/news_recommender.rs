//! An online-news-style recommendation pipeline (the paper's motivating
//! application: "online news recommenders, in which the use of fresh data is
//! of utmost importance").
//!
//! Simulates the production loop: a batch of user/article interactions
//! arrives, an approximate KNN graph must be (re)built as fast as possible,
//! and recommendations are served from it. The example compares the C²
//! graph with the exact graph on both build time and recommendation recall
//! (the paper's Table III protocol at small scale).
//!
//! ```text
//! cargo run --release --example news_recommender
//! ```

use cluster_and_conquer::prelude::*;
use cnc_dataset::CrossValidation;
use std::time::Instant;

fn main() {
    // "Articles read" dataset: MovieLens10M calibration at 3% scale.
    let dataset = DatasetProfile::MovieLens10M.generate(0.03, 7);
    println!("news corpus: {}", DatasetStats::compute(&dataset));

    // Hold out 20% of each reader's history as the ground truth to recover.
    let cv = CrossValidation::new(&dataset, 5, 7);
    let split = cv.split(&dataset, 0);
    let k = 20;
    let recommendations = 30;

    // --- Exact pipeline (what freshness constraints cannot afford) -------
    let t0 = Instant::now();
    let sim = cnc_similarity::SimilarityData::build(SimilarityBackend::Raw, &split.train);
    let ctx = BuildContext { dataset: &split.train, sim: &sim, k, threads: 0, seed: 7 };
    let exact_graph = BruteForce.build(&ctx);
    let exact_time = t0.elapsed();
    let exact_recall =
        Recommender::new(&split.train, &exact_graph).recall(&split.test, recommendations);

    // --- C² pipeline (the freshness-friendly path) ------------------------
    let t1 = Instant::now();
    let config = C2Config { k, seed: 7, ..C2Config::default() };
    let result = ClusterAndConquer::new(config).build(&split.train);
    let c2_time = t1.elapsed();
    let c2_recall =
        Recommender::new(&split.train, &result.graph).recall(&split.test, recommendations);

    println!("\n                 build time   recall@{recommendations}");
    println!("exact KNN graph   {:>8.3}s   {:.3}", exact_time.as_secs_f64(), exact_recall);
    println!(
        "C² (ours)         {:>8.3}s   {:.3}   (×{:.1} faster, Δrecall {:+.3})",
        c2_time.as_secs_f64(),
        c2_recall,
        exact_time.as_secs_f64() / c2_time.as_secs_f64(),
        c2_recall - exact_recall
    );

    // Fresh recommendations for one reader.
    let reader: u32 = 3;
    let picks = Recommender::new(&split.train, &result.graph).recommend(reader, 5);
    println!("\ntop-5 fresh articles for reader {reader}: {picks:?}");
}
