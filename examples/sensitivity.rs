//! Parameter-sensitivity sweep (the paper's §VI, Figs 6–7 at small scale):
//! how `t` (hash functions), `b` (clusters per function) and `N` (max
//! cluster size) trade computation time against KNN quality.
//!
//! ```text
//! cargo run --release --example sensitivity
//! ```

use cluster_and_conquer::prelude::*;
use cnc_similarity::SimilarityData;
use std::time::Instant;

fn run_once(dataset: &cnc_dataset::Dataset, exact: &KnnGraph, config: C2Config) -> (f64, f64) {
    let start = Instant::now();
    let result = ClusterAndConquer::new(config).build(dataset);
    let secs = start.elapsed().as_secs_f64();
    (secs, quality(&result.graph, exact, dataset))
}

fn main() {
    let k = 10;
    let dataset = DatasetProfile::MovieLens10M.generate(0.04, 5);
    println!("dataset: {}", DatasetStats::compute(&dataset));

    println!("building exact reference graph…");
    let raw = SimilarityData::build(SimilarityBackend::Raw, &dataset);
    let ctx = BuildContext { dataset: &dataset, sim: &raw, k, threads: 0, seed: 5 };
    let exact = BruteForce.build(&ctx);

    let base = C2Config { k, seed: 5, ..C2Config::default() };

    println!("\n-- effect of t (b = 2048, N = 250) ------------- (Fig 6)");
    println!("{:>3} {:>9} {:>8}", "t", "time (s)", "quality");
    for t in [1, 2, 4, 8, 10] {
        let (secs, q) =
            run_once(&dataset, &exact, C2Config { t, b: 2048, max_cluster_size: 250, ..base });
        println!("{t:>3} {secs:>9.3} {q:>8.3}");
    }

    println!("\n-- effect of b (t = 4, N = 250) ---------------- (Fig 6)");
    println!("{:>5} {:>9} {:>8}", "b", "time (s)", "quality");
    for b in [512, 2048, 8192] {
        let (secs, q) =
            run_once(&dataset, &exact, C2Config { t: 4, b, max_cluster_size: 250, ..base });
        println!("{b:>5} {secs:>9.3} {q:>8.3}");
    }

    println!("\n-- effect of N (t = 4, b = 2048) --------------- (Fig 7)");
    println!("{:>6} {:>9} {:>8}", "N", "time (s)", "quality");
    for n in [50, 100, 250, 500, 1000] {
        let (secs, q) =
            run_once(&dataset, &exact, C2Config { t: 4, b: 2048, max_cluster_size: n, ..base });
        println!("{n:>6} {secs:>9.3} {q:>8.3}");
    }
}
