//! User segmentation via KNN classification + capacity planning for a
//! distributed deployment (the paper's intro application [1], [2] and its
//! §VIII future-work direction).
//!
//! Scenario: a service knows the segment (community) of 30% of its users
//! and wants to label the rest. A C² KNN graph powers a similarity-weighted
//! majority-vote classifier; the same clustering also feeds the map-reduce
//! deployment planner to answer "how would this scale out to W workers?".
//!
//! ```text
//! cargo run --release --example user_segmentation
//! ```

use cluster_and_conquer::prelude::*;
use cnc_core::{cluster_dataset, plan_deployment, FastRandomHash};
use cnc_eval::KnnClassifier;

fn main() {
    // A dataset with 12 latent segments.
    let mut cfg = SyntheticConfig::small(33);
    cfg.num_users = 3_000;
    cfg.communities = 12;
    cfg.affinity = 0.8;
    let dataset = cfg.generate();
    println!("dataset: {}", DatasetStats::compute(&dataset));

    // Build the KNN graph with C².
    let config = C2Config { k: 10, seed: 33, ..C2Config::default() };
    let result = ClusterAndConquer::new(config).build(&dataset);
    println!(
        "C² graph built in {:.3}s ({} similarity computations)",
        result.stats.timings.total.as_secs_f64(),
        result.stats.comparisons
    );

    // Label 30% of users with their ground-truth segment, classify the rest.
    let truth: Vec<u32> = dataset.users().map(|u| cfg.community_of(u)).collect();
    let labels: Vec<Option<u32>> =
        dataset.users().map(|u| if u % 10 < 3 { Some(truth[u as usize]) } else { None }).collect();
    let classifier = KnnClassifier::new(&result.graph, &labels);
    let accuracy = classifier.accuracy(&truth);
    println!(
        "\nsegment classification: {:.1}% accuracy over {} unlabelled users \
         (chance level: {:.1}%)",
        accuracy * 100.0,
        labels.iter().filter(|l| l.is_none()).count(),
        100.0 / cfg.communities as f64
    );

    // Capacity planning: how would Step 2 scale across a cluster of workers?
    let functions = FastRandomHash::family(33, config.t, config.b);
    let clustering = cluster_dataset(&dataset, &functions, config.max_cluster_size);
    println!("\nmap-reduce deployment plan (Algorithm-2 cost model):");
    println!("{:>8} {:>12} {:>9} {:>10}", "workers", "makespan", "speed-up", "imbalance");
    for workers in [1usize, 2, 4, 8, 16] {
        let plan = plan_deployment(&clustering, workers, config.k, config.rho);
        println!(
            "{:>8} {:>12} {:>9.2} {:>10.3}",
            workers,
            plan.makespan(),
            plan.speedup(),
            plan.imbalance()
        );
    }
    let plan = plan_deployment(&clustering, 8, config.k, config.rho);
    println!(
        "\nreduce-phase shuffle volume: {} (user, neighbour, sim) entries",
        plan.merge_traffic
    );
}
