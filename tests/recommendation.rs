//! Integration test of the Table III protocol: recommendation recall with
//! C² graphs must stay close to exact-graph recall.

use cluster_and_conquer::prelude::*;
use cnc_eval::evaluate_recall;
use cnc_similarity::SimilarityData;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(555);
    cfg.num_users = 500;
    cfg.num_items = 500;
    cfg.communities = 10;
    cfg.mean_profile = 30.0;
    cfg.min_profile = 15;
    cfg.affinity = 0.85;
    cfg.generate()
}

fn exact_graph(train: &Dataset, k: usize) -> KnnGraph {
    let sim = SimilarityData::build(SimilarityBackend::Raw, train);
    let ctx = BuildContext { dataset: train, sim: &sim, k, threads: 0, seed: 2 };
    BruteForce.build(&ctx)
}

#[test]
fn c2_recall_tracks_exact_recall_under_cross_validation() {
    let ds = dataset();
    let k = 10;
    let brute = evaluate_recall(&ds, 5, 20, 77, |train| exact_graph(train, k));
    let c2 = ClusterAndConquer::new(C2Config {
        k,
        b: 128,
        t: 6,
        max_cluster_size: 200,
        backend: SimilarityBackend::Raw,
        seed: 77,
        ..C2Config::default()
    });
    let approx = evaluate_recall(&ds, 5, 20, 77, |train| c2.build(train).graph);

    assert!(brute.mean > 0.05, "exact recall {:.3} too low to be meaningful", brute.mean);
    // Table III's claim: small average loss (paper: 2.05%; we allow more
    // slack at this scale).
    let relative_loss = (brute.mean - approx.mean) / brute.mean;
    assert!(
        relative_loss < 0.20,
        "C2 recall {:.3} lost {:.0}% vs exact {:.3}",
        approx.mean,
        relative_loss * 100.0,
        brute.mean
    );
}

#[test]
fn recall_improves_with_more_recommendations() {
    let ds = dataset();
    let r5 = evaluate_recall(&ds, 3, 5, 78, |train| exact_graph(train, 10));
    let r30 = evaluate_recall(&ds, 3, 30, 78, |train| exact_graph(train, 10));
    assert!(r30.mean >= r5.mean, "recall@30 {:.3} < recall@5 {:.3}", r30.mean, r5.mean);
}

#[test]
fn per_fold_recalls_are_consistent() {
    let ds = dataset();
    let result = evaluate_recall(&ds, 5, 20, 79, |train| exact_graph(train, 10));
    let max = result.per_fold.iter().cloned().fold(0.0f64, f64::max);
    let min = result.per_fold.iter().cloned().fold(1.0f64, f64::min);
    // Folds are exchangeable; a huge spread would indicate a protocol bug.
    assert!(max - min < 0.2, "fold spread too large: {:?}", result.per_fold);
}
