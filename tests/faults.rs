//! Workspace chaos suite (PR 8 keystone): under any seeded fault
//! schedule the engine *survives*, the build it produces is **bit
//! identical** to the fault-free build — injected IO errors, torn spill
//! writes and solver panics may cost retries and requeues, but never an
//! edge — and the `ClusterCache` comparison accounting still balances.
//! On the serving side, concurrent readers never observe a partially
//! published epoch while rebuilds are failing underneath them.
//!
//! The schedules stay inside the survivable regime by construction: the
//! per-key failure-budget span is capped at 2, below the runtime's
//! 3-attempt solve budget and far below the 16-attempt spill/snapshot
//! retry loops, so every injected failure is absorbed by recovery rather
//! than escalated to a typed abort (escalation is pinned by the crate
//! unit tests).

use cluster_and_conquer::prelude::*;
use cnc_faults::{silence_injected_panics, Site};
use cnc_runtime::Runtime;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every test that arms the process-global fault registry.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn chaos_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = SyntheticConfig::small(7711);
        cfg.num_users = 380;
        cfg.num_items = 320;
        cfg.communities = 8;
        cfg.mean_profile = 20.0;
        cfg.min_profile = 6;
        cfg.generate()
    })
}

fn c2_config() -> C2Config {
    C2Config {
        k: 8,
        b: 64,
        t: 3,
        max_cluster_size: 120,
        backend: SimilarityBackend::Raw,
        seed: 17,
        threads: 1,
        ..C2Config::default()
    }
}

/// One chaos cell: builds fault-free, rebuilds under the armed schedule,
/// and asserts the keystone invariant — identical graphs, balanced
/// accounting, invariant-clean report.
fn chaos_case(fault_seed: u64, p: f64, workers: usize, reduce_shards: usize, spill: SpillMode) {
    let _serial = fault_lock();
    silence_injected_panics();
    let dataset = chaos_dataset();
    let c2 = c2_config();
    let config = RuntimeConfig { workers, reduce_shards, spill, ..Default::default() };
    let runtime = Runtime::new(config);
    let label = format!(
        "fault_seed={fault_seed} p={p:.2} workers={workers} shards={reduce_shards} spill={spill:?}"
    );

    let clean = runtime.execute_incremental(dataset, &c2, &ClusterCache::new(&c2), &[]);
    let faulted = {
        let _guard = Faults::global().arm(FaultPlan::new(fault_seed, p).with_span(2));
        runtime.execute_incremental(dataset, &c2, &ClusterCache::new(&c2), &[])
    };
    assert!(!Faults::global().armed(), "{label}: guard must disarm on drop");

    assert_eq!(clean.graph.num_users(), faulted.graph.num_users(), "{label}");
    for u in 0..clean.graph.num_users() as u32 {
        assert_eq!(
            clean.graph.neighbors(u).sorted(),
            faulted.graph.neighbors(u).sorted(),
            "{label}: user {u} differs between the fault-free and the faulted build"
        );
    }
    faulted
        .cache
        .check_accounting(&faulted.rebuild)
        .unwrap_or_else(|e| panic!("{label}: accounting broke under faults: {e}"));
    faulted.report.check_invariants().unwrap_or_else(|e| panic!("{label}: {e}"));
    // Comparisons are a function of the graph, not of the recovery path:
    // requeued clusters are re-solved from scratch, never double-counted.
    assert_eq!(
        faulted.cache.total_comparisons(),
        clean.cache.total_comparisons(),
        "{label}: comparison totals drifted under fault recovery"
    );
}

/// The acceptance matrix with one fixed schedule at p = 1 — every cluster
/// solve, reduce shard and spill operation fails at least once before
/// recovery succeeds.
#[test]
fn seeded_schedule_survives_bit_identically_across_the_matrix() {
    for workers in [1usize, 3] {
        for reduce_shards in [1usize, 2] {
            for spill in [SpillMode::Off, SpillMode::Always] {
                chaos_case(42, 1.0, workers, reduce_shards, spill);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized fault schedules over the same matrix: whatever subset
    /// of sites fires, at whatever probability, the surviving build is
    /// the fault-free build.
    #[test]
    fn random_fault_schedules_build_identical_graphs(
        fault_seed in 0u64..10_000,
        p_mille in 50u32..1000,
        cell in 0usize..8,
    ) {
        let workers = [1, 3][cell & 1];
        let reduce_shards = [1, 2][(cell >> 1) & 1];
        let spill = [SpillMode::Off, SpillMode::Always][(cell >> 2) & 1];
        chaos_case(fault_seed, p_mille as f64 / 1000.0, workers, reduce_shards, spill);
    }
}

/// Serving under failing rebuilds: readers hammer the engine while every
/// rebuild attempt dies (span 12 exhausts the per-cluster solve budget).
/// No query may ever observe a partially built epoch — the user count and
/// the neighbour ids must stay those of the last *good* epoch — and once
/// the schedule is disarmed the queued inserts publish normally.
#[test]
fn readers_never_observe_a_partial_epoch_while_rebuilds_fail() {
    let _serial = fault_lock();
    silence_injected_panics();
    let base = {
        let mut cfg = SyntheticConfig::small(6006);
        cfg.num_users = 240;
        cfg.num_items = 200;
        cfg.communities = 6;
        cfg.mean_profile = 16.0;
        cfg.min_profile = 5;
        cfg.generate()
    };
    let users0 = base.num_users();
    let config = ServingConfig {
        c2: C2Config {
            k: 8,
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 33 },
            seed: 9,
            threads: 1,
            ..C2Config::default()
        },
        runtime: RuntimeConfig::with_workers(2),
        beam: BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
        rebuild_after: 2,
        ..ServingConfig::default()
    };
    let engine = ServingEngine::build(base.clone(), config);

    let inserts = 8usize;
    let guard =
        Faults::global().arm(FaultPlan::new(3, 1.0).only(&[Site::SolveCluster]).with_span(12));
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..inserts {
                let mut profile = base.profile((i % users0) as u32).to_vec();
                profile.push((i % 50) as u32);
                profile.sort_unstable();
                profile.dedup();
                engine.insert(profile, i as u64);
            }
        });
        for reader in 0..2u64 {
            let engine = &engine;
            let base = &base;
            scope.spawn(move || {
                let mut session = engine.session();
                for i in 0..150u64 {
                    let profile = base.profile(((reader * 97 + i) % users0 as u64) as u32);
                    let result = engine.query_with(&mut session, profile, 5, i);
                    assert!(!result.neighbors.is_empty(), "query on a live epoch came back empty");
                    for n in &result.neighbors {
                        assert!(
                            (n.user as usize) < users0,
                            "reader saw user {} from an unpublished epoch (epoch has {users0})",
                            n.user
                        );
                    }
                }
            });
        }
        writer.join().expect("writer thread panicked");
    });

    let stats = engine.stats();
    assert_eq!(stats.num_users, users0, "a failed rebuild must not publish");
    assert!(
        stats.rebuild_failures > 0,
        "the schedule must have killed at least one rebuild attempt"
    );
    assert_eq!(stats.inserts, inserts as u64, "every insert is absorbed despite the failures");

    // Disarm: the engine heals on the next explicit publish, absorbing
    // everything that queued up while rebuilds were failing.
    drop(guard);
    engine.publish();
    let healed = engine.stats();
    assert_eq!(healed.num_users, users0 + inserts, "queued inserts publish after recovery");
}

/// The `snapshot.mmap` fault site: an injected map failure never fails
/// the adoption — it forces the bit-exact copy fallback, and the engine
/// that adopts the fallen-back state serves exactly like one that
/// mapped.
#[test]
fn injected_mmap_failures_fall_back_to_the_copy_path() {
    use cluster_and_conquer::serve::AdoptedSnapshot;

    let _serial = fault_lock();
    silence_injected_panics();
    let base = {
        let mut cfg = SyntheticConfig::small(4242);
        cfg.num_users = 160;
        cfg.num_items = 140;
        cfg.communities = 6;
        cfg.mean_profile = 14.0;
        cfg.min_profile = 5;
        cfg.generate()
    };
    let config = ServingConfig {
        c2: C2Config {
            k: 8,
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 33 },
            seed: 9,
            threads: 1,
            ..C2Config::default()
        },
        runtime: RuntimeConfig::with_workers(2),
        beam: BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
        rebuild_after: 0,
        ..ServingConfig::default()
    };
    let engine = ServingEngine::build(base.clone(), config);
    let path = std::env::temp_dir().join(format!("cnc-chaos-mmap-{}.snap", std::process::id()));
    engine.write_snapshot(&path).unwrap();

    let mapped = AdoptedSnapshot::open(&path).unwrap();
    let fallback = {
        let _guard =
            Faults::global().arm(FaultPlan::new(5, 1.0).only(&[Site::SnapshotMmap]).with_span(2));
        let fallback = AdoptedSnapshot::open(&path).unwrap();
        assert!(!fallback.mapped, "an armed snapshot.mmap site must force the copy path");
        assert!(
            Faults::global().injected(Site::SnapshotMmap) > 0,
            "the injection must actually have fired"
        );
        fallback
    };
    let _ = std::fs::remove_file(&path);

    // Both load paths decode the same file in file order: bit-identical,
    // heap layout included.
    assert_eq!(mapped.dataset, fallback.dataset);
    assert_eq!(mapped.graph.num_users(), fallback.graph.num_users());
    for (u, list) in mapped.graph.iter() {
        let mine: Vec<(u32, u32)> = list.iter().map(|n| (n.user, n.sim.to_bits())).collect();
        let got: Vec<(u32, u32)> =
            fallback.graph.neighbors(u).iter().map(|n| (n.user, n.sim.to_bits())).collect();
        assert_eq!(mine, got, "user {u} differs between mmap and copy fallback");
    }

    // The fallen-back state still adopts and serves.
    engine.adopt(fallback);
    let result = engine.query(base.profile(3), 5, 1);
    assert!(!result.neighbors.is_empty(), "the adopted fallback epoch must answer queries");
}
