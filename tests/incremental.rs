//! The incremental-rebuild equivalence suite (PR 5 acceptance matrix).
//!
//! The contract of the staged `BuildPlan` path: an incremental build that
//! re-solves only the clusters whose content hash changed must be
//! **bit-identical** to a from-scratch build of the same dataset —
//! identical graphs for every `(insert batch × workers × reduce shards ×
//! spill mode)` cell, and comparison counts that split exactly into
//! "fresh solves" (the incremental report) plus "cached solves" (the
//! cluster cache's totals). On top of the matrix: the in-process
//! pipeline's incremental path, a randomized insert-sequence equivalence
//! through the full `ServingEngine` loop, and proptests pinning the
//! cluster-hash semantics (stable under member reordering; changes iff
//! membership or item sets change).

use cluster_and_conquer::prelude::*;
use cnc_core::build_plan::{cluster_hash, profile_digest};
use cnc_core::ClusterSolution;
use cnc_graph::KnnGraph;
use cnc_runtime::Runtime;

fn base_dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(5151);
    cfg.num_users = 450;
    cfg.num_items = 380;
    cfg.communities = 9;
    cfg.mean_profile = 22.0;
    cfg.min_profile = 7;
    cfg.generate()
}

fn c2_config() -> C2Config {
    C2Config {
        k: 8,
        b: 64,
        t: 3,
        max_cluster_size: 120,
        backend: SimilarityBackend::Raw,
        seed: 17,
        threads: 1,
        ..C2Config::default()
    }
}

/// Appends `batch` synthetic newcomers (donor profiles with a drift item,
/// sorted + deduplicated like the serving path stores them) and returns
/// the grown dataset plus the inserted ids.
fn grow(dataset: &Dataset, batch: usize, salt: u32) -> (Dataset, Vec<u32>) {
    let mut profiles: Vec<Vec<u32>> = dataset.iter().map(|(_, p)| p.to_vec()).collect();
    let n0 = profiles.len() as u32;
    for i in 0..batch as u32 {
        let donor = ((i * 31 + salt) as usize * 7) % profiles.len();
        let mut p = profiles[donor].clone();
        p.push(370 + (i + salt) % 17);
        p.sort_unstable();
        p.dedup();
        profiles.push(p);
    }
    let grown = Dataset::from_profiles(profiles, dataset.num_items() as u32);
    let inserted: Vec<u32> = (n0..grown.num_users() as u32).collect();
    (grown, inserted)
}

fn assert_graphs_identical(a: &KnnGraph, b: &KnnGraph, label: &str) {
    assert_eq!(a.num_users(), b.num_users(), "{label}: user counts differ");
    for u in 0..a.num_users() as u32 {
        assert_eq!(
            a.neighbors(u).sorted(),
            b.neighbors(u).sorted(),
            "{label}: user {u} differs between incremental and from-scratch"
        );
    }
}

/// The acceptance matrix: full-vs-incremental bit-identical graphs over
/// (insert batch sizes × workers × reduce shards × spill modes), with the
/// comparison accounting attributable per cell.
#[test]
fn incremental_matches_from_scratch_across_the_matrix() {
    let base = base_dataset();
    let c2 = c2_config();
    for batch in [1usize, 6, 32] {
        let (grown, inserted) = grow(&base, batch, batch as u32);
        for workers in [1usize, 3] {
            for reduce_shards in [1usize, 2] {
                for spill in [SpillMode::Off, SpillMode::Always] {
                    let label = format!(
                        "batch={batch} workers={workers} shards={reduce_shards} spill={spill:?}"
                    );
                    let config =
                        RuntimeConfig { workers, reduce_shards, spill, ..Default::default() };
                    let runtime = Runtime::new(config);
                    // Seed the cache from the base dataset, then rebuild
                    // the grown one incrementally.
                    let seeded =
                        runtime.execute_incremental(&base, &c2, &ClusterCache::new(&c2), &[]);
                    let incr = runtime.execute_incremental(&grown, &c2, &seeded.cache, &inserted);
                    let full = runtime.execute(&grown, &c2);

                    assert_graphs_identical(&incr.graph, &full.graph, &label);
                    assert!(
                        incr.rebuild.reuse_ratio > 0.0,
                        "{label}: no clusters reused after a {batch}-user batch"
                    );
                    // Fresh + cached comparisons account for the whole
                    // from-scratch build, exactly.
                    assert!(incr.report.comparisons < full.report.comparisons, "{label}");
                    assert_eq!(
                        incr.cache.total_comparisons(),
                        full.report.comparisons,
                        "{label}: cache totals must equal a from-scratch build's count"
                    );
                    assert_eq!(incr.cache.len(), incr.rebuild.clusters_total, "{label}");
                    incr.report.check_invariants().unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert_eq!(
                        incr.report.num_clusters, incr.rebuild.clusters_resolved,
                        "{label}: scheduled clusters must match the rebuild stats"
                    );
                }
            }
        }
    }
}

/// The in-process pipeline's incremental path obeys the same contract as
/// the sharded engine's (they share the staged `BuildPlan`).
#[test]
fn pipeline_incremental_matches_full_build() {
    let base = base_dataset();
    let c2 = c2_config();
    let builder = ClusterAndConquer::new(c2);
    let seeded = builder.build_incremental(&base, &ClusterCache::new(&c2));
    assert_eq!(seeded.rebuild.reuse_ratio, 0.0, "empty cache resolves everything");

    let (grown, _) = grow(&base, 9, 3);
    let full = builder.build(&grown);
    let incr = builder.build_incremental(&grown, &seeded.cache);
    assert_graphs_identical(&incr.result.graph, &full.graph, "pipeline");
    assert!(incr.rebuild.reuse_ratio > 0.5, "reuse {:.2}", incr.rebuild.reuse_ratio);
    assert!(incr.result.stats.comparisons < full.stats.comparisons);
    assert_eq!(incr.cache.total_comparisons(), full.stats.comparisons);

    // Pipeline and sharded engine agree with each other, too.
    let sharded = Runtime::new(RuntimeConfig::with_workers(2)).execute_incremental(
        &grown,
        &c2,
        &seeded.cache,
        &[],
    );
    assert_graphs_identical(&sharded.graph, &incr.result.graph, "pipeline vs sharded");
    assert_eq!(sharded.rebuild.clusters_resolved, incr.rebuild.clusters_resolved);
}

/// GoldFinger fingerprints are per-user independent, so cached solutions
/// survive dataset growth bit-identically on the fingerprint backend too
/// — the serving engine's actual configuration.
#[test]
fn goldfinger_incremental_matches_from_scratch() {
    let base = base_dataset();
    let c2 =
        C2Config { backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 29 }, ..c2_config() };
    let runtime = Runtime::new(RuntimeConfig::with_workers(2));
    let seeded = runtime.execute_incremental(&base, &c2, &ClusterCache::new(&c2), &[]);
    let (grown, inserted) = grow(&base, 12, 8);
    let incr = runtime.execute_incremental(&grown, &c2, &seeded.cache, &inserted);
    let full = runtime.execute(&grown, &c2);
    assert_graphs_identical(&incr.graph, &full.graph, "goldfinger");
    assert!(incr.rebuild.reuse_ratio > 0.5);
    assert_eq!(incr.cache.total_comparisons(), full.report.comparisons);
}

/// End-to-end randomized insert sequences through the serving loop: every
/// published epoch must serve exactly the graph a from-scratch engine
/// builds on the same dataset.
#[test]
fn serving_epochs_are_bit_identical_to_from_scratch_builds() {
    let base = base_dataset();
    let config = cnc_serve::ServingConfig {
        c2: C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 5 },
            ..c2_config()
        },
        runtime: RuntimeConfig::with_workers(2),
        beam: cnc_query::BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
        rebuild_after: 0,
        ..cnc_serve::ServingConfig::default()
    };
    let engine = ServingEngine::build(base.clone(), config);
    // Three epochs of randomized insert batches (sizes 3, 1, 7; profiles
    // derived from pseudo-random donors).
    let mut salt = 0x5EEDu32;
    for batch in [3usize, 1, 7] {
        for i in 0..batch {
            salt = salt.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let donor = salt % base.num_users() as u32;
            let mut profile = base.profile(donor).to_vec();
            profile.push(350 + (salt % 29));
            engine.insert(profile, salt as u64 + i as u64);
        }
        engine.publish();
        let epoch = engine.current_epoch();
        assert!(epoch.rebuild_stats().reuse_ratio > 0.0, "epoch {} reused nothing", epoch.epoch());
        // A from-scratch engine on the published dataset must serve the
        // identical graph (sorted per-user equality, plus identical
        // answers to a probe query).
        let scratch = ServingEngine::build(epoch.dataset().clone(), config);
        assert_graphs_identical(
            epoch.graph(),
            scratch.current_epoch().graph(),
            &format!("epoch {}", epoch.epoch()),
        );
        let probe = base.profile(11);
        assert_eq!(
            engine.query(probe, 5, 99).neighbors,
            scratch.query(probe, 5, 99).neighbors,
            "epoch {}: query answers diverge",
            epoch.epoch()
        );
    }
    assert_eq!(engine.rebuild_history().len(), 3);
}

/// The cache lookup path never reuses across configuration changes.
#[test]
fn config_changes_invalidate_the_cache() {
    let base = base_dataset();
    let c2 = c2_config();
    let runtime = Runtime::new(RuntimeConfig::with_workers(1));
    let seeded = runtime.execute_incremental(&base, &c2, &ClusterCache::new(&c2), &[]);
    let changed = C2Config { seed: c2.seed + 1, ..c2 };
    let rebuilt = runtime.execute_incremental(&base, &changed, &seeded.cache, &[]);
    assert_eq!(rebuilt.rebuild.reuse_ratio, 0.0, "other-config cache must be ignored");
    let full = runtime.execute(&base, &changed);
    assert_graphs_identical(&rebuilt.graph, &full.graph, "changed config");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn profiles_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..300, 1..25)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            4..24,
        )
    }

    proptest! {
        /// The cluster hash is invariant under member reordering…
        #[test]
        fn cluster_hash_is_stable_under_member_reordering(
            profiles in profiles_strategy(),
            picks in proptest::collection::vec(0usize..24, 2..10),
            rotate in 1usize..8,
        ) {
            let ds = Dataset::from_profiles(profiles, 0);
            let digests: Vec<u64> = ds.iter().map(|(_, p)| profile_digest(p)).collect();
            let mut users: Vec<u32> = picks
                .into_iter()
                .map(|p| (p % ds.num_users()) as u32)
                .collect();
            users.sort_unstable();
            users.dedup();
            prop_assume!(users.len() >= 2);
            let original = cluster_hash(&users, &digests);
            let mut shuffled = users.clone();
            let len = shuffled.len();
            shuffled.rotate_left(rotate % len);
            shuffled.reverse();
            prop_assert_eq!(cluster_hash(&shuffled, &digests), original);
        }

        /// …and changes iff the membership or a member's item set changes.
        #[test]
        fn cluster_hash_changes_iff_membership_or_items_change(
            profiles in profiles_strategy(),
            drop_index in 0usize..8,
            touched in 0usize..8,
            new_item in 300u32..400,
        ) {
            let ds = Dataset::from_profiles(profiles.clone(), 0);
            let digests: Vec<u64> = ds.iter().map(|(_, p)| profile_digest(p)).collect();
            let users: Vec<u32> = (0..ds.num_users() as u32).collect();
            let original = cluster_hash(&users, &digests);

            // Same members, same item sets: identical hash.
            prop_assert_eq!(cluster_hash(&users, &digests), original);

            // Dropped member: different hash.
            let mut fewer = users.clone();
            fewer.remove(drop_index % fewer.len());
            prop_assert!(cluster_hash(&fewer, &digests) != original);

            // One member's item set grows by an unseen item: different
            // hash (the digest layer catches profile drift).
            let victim = touched % profiles.len();
            let mut drifted = profiles;
            drifted[victim].push(new_item);
            drifted[victim].sort_unstable();
            drifted[victim].dedup();
            let ds2 = Dataset::from_profiles(drifted, 0);
            let digests2: Vec<u64> = ds2.iter().map(|(_, p)| profile_digest(p)).collect();
            prop_assert!(cluster_hash(&users, &digests2) != original);
        }

        /// Cache lookups key on (hash, exact members, seed when the solve
        /// is greedy): a permuted member list never reuses a solution.
        #[test]
        fn cache_lookup_requires_exact_member_order(
            seed in 0u64..1_000,
        ) {
            let c2 = c2_config();
            let mut cache = ClusterCache::new(&c2);
            let users = vec![3u32, 7, 11, 42];
            let digests = vec![1u64; 64];
            let hash = cluster_hash(&users, &digests);
            cache.insert(ClusterSolution {
                hash,
                users: users.clone(),
                seed,
                lists: vec![cnc_graph::NeighborList::new(4); 4],
                comparisons: 6,
            });
            prop_assert!(cache.lookup(hash, &users, seed, true).is_some());
            let mut permuted = users.clone();
            permuted.swap(0, 3);
            // Same content hash (order-invariant), but the ordered
            // verification refuses the reuse.
            prop_assert_eq!(cluster_hash(&permuted, &digests), hash);
            prop_assert!(cache.lookup(hash, &permuted, seed, true).is_none());
            prop_assert!(cache.lookup(hash, &users, seed + 1, true).is_none());
            prop_assert!(cache.lookup(hash, &users, seed + 1, false).is_some());
        }
    }
}
