//! Integration: the sharded map-reduce runtime against the single-process
//! pipeline — equivalence, plan agreement, and scaling.

use cluster_and_conquer::prelude::*;
use cnc_graph::quality as graph_quality;
use cnc_similarity::SimilarityData;

/// The `tests/end_to_end.rs` dataset (same seed and shape).
fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(2024);
    cfg.num_users = 800;
    cfg.num_items = 600;
    cfg.communities = 12;
    cfg.mean_profile = 30.0;
    cfg.min_profile = 10;
    cfg.generate()
}

fn c2_config(k: usize) -> C2Config {
    C2Config {
        k,
        b: 128,
        t: 6,
        max_cluster_size: 150,
        backend: SimilarityBackend::Raw,
        seed: 99,
        ..C2Config::default()
    }
}

fn exact(ds: &Dataset, k: usize) -> KnnGraph {
    let sim = SimilarityData::build(SimilarityBackend::Raw, ds);
    let ctx = BuildContext { dataset: ds, sim: &sim, k, threads: 0, seed: 1 };
    BruteForce.build(&ctx)
}

#[test]
fn sharded_build_matches_single_process_quality() {
    let ds = dataset();
    let k = 10;
    let reference = exact(&ds, k);
    let builder = ClusterAndConquer::new(c2_config(k));

    let single = builder.build(&ds);
    let sharded = builder.build_sharded(&ds, &RuntimeConfig::with_workers(4));

    let q_single = graph_quality(&single.graph, &reference, &ds);
    let q_sharded = graph_quality(&sharded.graph, &reference, &ds);
    assert!(
        (q_single - q_sharded).abs() < 1e-9,
        "sharded quality {q_sharded:.4} deviates from single-process {q_single:.4}"
    );

    // Stronger than within-noise: the bounded-heap merge is order-
    // independent, so the graphs must be identical neighbourhood by
    // neighbourhood.
    for u in ds.users() {
        assert_eq!(
            sharded.graph.neighbors(u).sorted(),
            single.graph.neighbors(u).sorted(),
            "user {u} differs between sharded and single-process builds"
        );
    }
}

#[test]
fn sharded_comparisons_match_single_process() {
    let ds = dataset();
    let builder = ClusterAndConquer::new(c2_config(10));
    let single = builder.build(&ds);
    let sharded = builder.build_sharded(&ds, &RuntimeConfig::with_workers(3));
    assert_eq!(
        sharded.report.comparisons, single.stats.comparisons,
        "sharded run performed a different amount of similarity work"
    );
}

/// The acceptance criterion's speed-up check. Worker busy times are wall
/// clocks, so real parallel speed-up needs real parallel hardware: on
/// fewer than 4 cores the assertion is skipped (the structural checks
/// above still run everywhere).
#[test]
fn four_workers_speed_up_a_large_build() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Large synthetic dataset with brute-force-heavy clusters.
    let mut cfg = SyntheticConfig::small(777);
    cfg.num_users = 6_000;
    cfg.num_items = 3_000;
    cfg.communities = 16;
    cfg.mean_profile = 25.0;
    cfg.min_profile = 8;
    let ds = cfg.generate();
    let c2 = C2Config {
        k: 10,
        b: 256,
        t: 3,
        max_cluster_size: 600,
        backend: SimilarityBackend::Raw,
        seed: 777,
        ..C2Config::default()
    };
    let builder = ClusterAndConquer::new(c2);

    let one = builder.build_sharded(&ds, &RuntimeConfig::with_workers(1));
    let four = builder.build_sharded(&ds, &RuntimeConfig::with_workers(4));

    // The plan itself must promise near-linear scaling on this workload …
    assert!(
        four.report.plan.speedup() > 3.0,
        "LPT plan predicts only {:.2}× on 4 workers — dataset too lumpy",
        four.report.plan.speedup()
    );

    if cores < 4 {
        eprintln!(
            "skipping wall-clock speed-up assertion: {cores} core(s) available, need 4 \
             (measured Σbusy/makespan = {:.2})",
            four.report.measured_speedup()
        );
        return;
    }

    // … and the measured wall clock must follow it.
    let t1 = one.report.map_reduce_wall.as_secs_f64();
    let t4 = four.report.map_reduce_wall.as_secs_f64();
    assert!(
        t1 / t4 > 1.5,
        "4-worker map+reduce only {:.2}× faster than 1 worker ({t1:.3}s vs {t4:.3}s)",
        t1 / t4
    );
}

mod plan_agreement {
    //! Property tests: the runtime agrees with the §VIII simulation.

    use super::*;
    use cnc_core::plan_deployment;
    use cnc_runtime::Runtime;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// With stealing disabled, the executed per-worker cluster sets are
        /// exactly the `plan_deployment` assignment, whatever the dataset
        /// seed and worker count.
        #[test]
        fn executed_assignments_match_the_plan(seed in 0u64..500, workers in 1usize..6) {
            let mut cfg = SyntheticConfig::small(seed);
            cfg.num_users = 300;
            cfg.num_items = 200;
            cfg.mean_profile = 12.0;
            cfg.min_profile = 3;
            let ds = cfg.generate();
            let c2 = C2Config {
                k: 5,
                b: 32,
                t: 3,
                max_cluster_size: 80,
                backend: SimilarityBackend::Raw,
                seed,
                threads: 1,
                ..C2Config::default()
            };
            let runtime = RuntimeConfig {
                workers,
                steal: StealPolicy::Disabled,
                ..RuntimeConfig::default()
            };
            let result = Runtime::new(runtime).execute(&ds, &c2);

            let clustering = ClusterAndConquer::new(c2).cluster_step(&ds);
            let plan = plan_deployment(&clustering, workers, c2.k, c2.rho);
            let executed = result.report.executed_assignments();
            prop_assert_eq!(executed.len(), plan.assignments.len());
            for (w, planned) in plan.assignments.iter().enumerate() {
                let mut planned = planned.clone();
                planned.sort_unstable();
                prop_assert_eq!(&executed[w], &planned, "worker {} deviated", w);
            }
        }

        /// Measured shuffle entry counts equal the plan's predicted
        /// `merge_traffic`, with and without stealing.
        #[test]
        fn measured_shuffle_equals_merge_traffic(seed in 0u64..500, workers in 1usize..6) {
            let mut cfg = SyntheticConfig::small(seed ^ 0xABCD);
            cfg.num_users = 250;
            cfg.num_items = 180;
            cfg.mean_profile = 10.0;
            cfg.min_profile = 2;
            let ds = cfg.generate();
            let c2 = C2Config {
                k: 4,
                b: 16,
                t: 2,
                max_cluster_size: 60,
                backend: SimilarityBackend::Raw,
                seed,
                threads: 1,
                ..C2Config::default()
            };
            for steal in [StealPolicy::Disabled, StealPolicy::MostLoaded] {
                let runtime = RuntimeConfig { workers, steal, ..RuntimeConfig::default() };
                let result = Runtime::new(runtime).execute(&ds, &c2);
                prop_assert_eq!(
                    result.report.shuffle_entries,
                    result.report.plan.merge_traffic,
                    "steal={:?}", steal
                );
                let sent: u64 =
                    result.report.workers.iter().map(|w| w.shuffle_entries).sum();
                prop_assert_eq!(sent, result.report.shuffle_entries);
            }
        }
    }
}
