//! Integration tests of the beyond-the-paper extension features composing
//! with the main pipeline: profile sampling → C², alternative estimators
//! vs GoldFinger, classification on C² graphs, deployment planning on the
//! real clustering.

use cluster_and_conquer::prelude::*;
use cnc_core::{cluster_dataset, plan_deployment, FastRandomHash};
use cnc_dataset::{sample_profiles, SamplingPolicy};
use cnc_similarity::bbit::BBitSignature;
use cnc_similarity::bloom::BloomFilter;
use cnc_similarity::MinHasher;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(4242);
    cfg.num_users = 600;
    cfg.num_items = 500;
    cfg.communities = 10;
    cfg.mean_profile = 35.0;
    cfg.min_profile = 12;
    cfg.generate()
}

fn c2(k: usize) -> ClusterAndConquer {
    ClusterAndConquer::new(C2Config {
        k,
        b: 128,
        t: 6,
        max_cluster_size: 150,
        backend: SimilarityBackend::Raw,
        seed: 7,
        ..C2Config::default()
    })
}

#[test]
fn sampling_preprocessing_composes_with_c2() {
    let ds = dataset();
    let full = c2(8).build(&ds);

    // Cap profiles at 15 items with the least-popular policy [39].
    let sampled = sample_profiles(&ds, 15, SamplingPolicy::LeastPopular, 3);
    let cheap = c2(8).build(&sampled);

    // Sampling must cut the similarity *cost per comparison* while keeping
    // a usable graph: quality measured on the ORIGINAL dataset.
    let sim = cnc_similarity::SimilarityData::build(SimilarityBackend::Raw, &ds);
    let ctx = BuildContext { dataset: &ds, sim: &sim, k: 8, threads: 0, seed: 7 };
    let exact = BruteForce.build(&ctx);
    let q_full = quality(&full.graph, &exact, &ds);
    let q_sampled = quality(&cheap.graph, &exact, &ds);
    assert!(q_full > 0.8);
    assert!(
        q_sampled > 0.5 * q_full,
        "least-popular sampling destroyed the graph: {q_sampled:.3} vs {q_full:.3}"
    );
    // Least-popular must beat most-popular (the [39] finding).
    let anti = sample_profiles(&ds, 15, SamplingPolicy::MostPopular, 3);
    let anti_graph = c2(8).build(&anti);
    let q_anti = quality(&anti_graph.graph, &exact, &ds);
    assert!(
        q_sampled >= q_anti - 0.05,
        "least-popular ({q_sampled:.3}) should not lose to most-popular ({q_anti:.3})"
    );
}

#[test]
fn alternative_estimators_agree_with_exact_jaccard() {
    let ds = dataset();
    let bank = MinHasher::family(11, 512);
    let mut max_err_bbit = 0.0f64;
    let mut max_err_bloom = 0.0f64;
    for (u, v) in [(0u32, 1u32), (5, 15), (10, 110), (3, 303)] {
        let (pa, pb) = (ds.profile(u), ds.profile(v));
        let exact = Jaccard::similarity(pa, pb);
        let sa = BBitSignature::compute(&bank, pa, 4);
        let sb = BBitSignature::compute(&bank, pb, 4);
        max_err_bbit = max_err_bbit.max((sa.estimate(&sb) - exact).abs());
        let fa = BloomFilter::from_profile(pa, 2048, 3, 11);
        let fb = BloomFilter::from_profile(pb, 2048, 3, 11);
        max_err_bloom = max_err_bloom.max((fa.estimate_jaccard(&fb) - exact).abs());
    }
    assert!(max_err_bbit < 0.12, "b-bit max error {max_err_bbit:.3}");
    assert!(max_err_bloom < 0.12, "bloom max error {max_err_bloom:.3}");
}

#[test]
fn classifier_on_c2_graph_beats_chance_by_a_wide_margin() {
    let mut cfg = SyntheticConfig::small(777);
    cfg.num_users = 600;
    cfg.communities = 8;
    cfg.affinity = 0.85;
    let ds = cfg.generate();
    let result = c2(10).build(&ds);
    let truth: Vec<u32> = ds.users().map(|u| cfg.community_of(u)).collect();
    let labels: Vec<Option<u32>> =
        ds.users().map(|u| if u % 3 == 0 { Some(truth[u as usize]) } else { None }).collect();
    let clf = KnnClassifier::new(&result.graph, &labels);
    let accuracy = clf.accuracy(&truth);
    let chance = 1.0 / cfg.communities as f64;
    assert!(
        accuracy > 4.0 * chance,
        "accuracy {accuracy:.3} not far enough above chance {chance:.3}"
    );
}

#[test]
fn deployment_plan_on_real_clustering_scales() {
    let ds = dataset();
    let functions = FastRandomHash::family(7, 6, 128);
    let clustering = cluster_dataset(&ds, &functions, 150);
    let plan1 = plan_deployment(&clustering, 1, 10, 5);
    let plan4 = plan_deployment(&clustering, 4, 10, 5);
    assert_eq!(plan1.total_cost(), plan4.total_cost(), "work is conserved");
    assert!(plan4.speedup() > 2.0, "4 workers speed-up {:.2} too low", plan4.speedup());
    assert!(plan4.imbalance() < 1.5, "imbalance {:.2}", plan4.imbalance());
    // Shuffle volume is bounded by t·n·k.
    assert!(plan4.merge_traffic <= (6 * ds.num_users() * 10) as u64);
}
