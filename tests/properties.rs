//! Workspace-level property tests tying the theory to the implementation.

use cluster_and_conquer::prelude::*;
use cnc_core::frh::FastRandomHash;
use cnc_core::theory::collisions;
use cnc_similarity::SimilarityData;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..2000, 1..80)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1's exact sandwich (Eq. 9) holds for the *conditional*
    /// probability identity (Eq. 6): over many seeds the empirical
    /// frequency stays within the averaged bounds.
    #[test]
    fn frh_collision_probability_is_sandwiched(
        p1 in profile_strategy(),
        p2 in profile_strategy(),
    ) {
        let b = 512u32;
        let trials = 400u64;
        let mut equal = 0u64;
        let (mut lower, mut upper) = (0.0f64, 0.0f64);
        let j = Jaccard::similarity(&p1, &p2);
        let mut union: Vec<u32> = p1.iter().chain(p2.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        let ell = union.len() as f64;
        for seed in 0..trials {
            let frh = FastRandomHash::new(seed, b);
            if frh.user_hash(&p1) == frh.user_hash(&p2) {
                equal += 1;
            }
            let kappa = collisions(&frh, &p1, &p2) as f64;
            let density = kappa / ell;
            if density < 1.0 {
                lower += (j - density) / (1.0 - density);
                upper += (j + density) / (1.0 - density);
            } else {
                upper += 1.0;
            }
        }
        let p = equal as f64 / trials as f64;
        // 5σ statistical slack for 400 Bernoulli trials ≈ 0.125.
        prop_assert!(p >= lower / trials as f64 - 0.13,
            "P={p:.3} below lower bound {:.3}", lower / trials as f64);
        prop_assert!(p <= upper / trials as f64 + 0.13,
            "P={p:.3} above upper bound {:.3}", upper / trials as f64);
    }

    /// The clustering step is a partition per hash function, whatever the
    /// dataset and parameters.
    #[test]
    fn clustering_is_a_partition(
        seed in 0u64..1000,
        b in 2u32..64,
        t in 1usize..5,
        n_max in 5usize..100,
    ) {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.num_users = 150;
        cfg.num_items = 120;
        cfg.mean_profile = 12.0;
        cfg.min_profile = 3;
        let ds = cfg.generate();
        let functions = FastRandomHash::family(seed, t, b);
        let clustering = cnc_core::cluster_dataset(&ds, &functions, n_max.max(2));
        let mut counts = vec![0usize; ds.num_users()];
        for cluster in &clustering.clusters {
            prop_assert!(!cluster.is_empty(), "empty cluster emitted");
            for &u in cluster {
                counts[u as usize] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == t), "not a t-cover: {counts:?}");
    }

    /// The full pipeline returns, for every user, neighbours that actually
    /// exist and are never the user herself, with sims in [0, 1].
    #[test]
    fn c2_graph_is_well_formed(seed in 0u64..50) {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.num_users = 120;
        cfg.num_items = 100;
        cfg.mean_profile = 10.0;
        cfg.min_profile = 3;
        let ds = cfg.generate();
        let config = C2Config {
            k: 5,
            b: 32,
            t: 3,
            max_cluster_size: 60,
            backend: SimilarityBackend::Raw,
            seed,
            threads: 1,
            ..C2Config::default()
        };
        let result = ClusterAndConquer::new(config).build(&ds);
        for (u, list) in result.graph.iter() {
            prop_assert!(list.len() <= 5);
            for nb in list.iter() {
                prop_assert!(nb.user != u, "self loop at {u}");
                prop_assert!((nb.user as usize) < ds.num_users());
                prop_assert!((0.0..=1.0).contains(&nb.sim), "sim {} out of range", nb.sim);
            }
        }
    }

    /// Comparison counting is exact for brute force regardless of threads.
    #[test]
    fn brute_force_comparison_count_is_invariant(threads in 1usize..5) {
        let mut cfg = SyntheticConfig::small(7);
        cfg.num_users = 80;
        cfg.num_items = 60;
        cfg.mean_profile = 8.0;
        cfg.min_profile = 2;
        let ds = cfg.generate();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 4, threads, seed: 1 };
        BruteForce.build(&ctx);
        prop_assert_eq!(sim.comparisons(), 80 * 79 / 2);
    }
}
