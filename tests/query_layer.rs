//! Integration: the query layer on top of a C²-built graph — the full
//! production loop (build with C², serve out-of-sample queries, absorb new
//! users online).

use cluster_and_conquer::prelude::*;
use cnc_query::DynamicIndex;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(31337);
    cfg.num_users = 700;
    cfg.num_items = 600;
    cfg.communities = 10;
    cfg.mean_profile = 30.0;
    cfg.min_profile = 12;
    cfg.generate()
}

fn c2_graph(ds: &Dataset, k: usize) -> KnnGraph {
    ClusterAndConquer::new(C2Config {
        k,
        b: 128,
        t: 6,
        max_cluster_size: 180,
        backend: SimilarityBackend::Raw,
        seed: 5,
        ..C2Config::default()
    })
    .build(ds)
    .graph
}

#[test]
fn beam_search_over_a_c2_graph_answers_out_of_sample_queries() {
    let ds = dataset();
    let graph = c2_graph(&ds, 12);
    let index = QueryIndex::new(&ds, &graph);
    let config = BeamSearchConfig { beam_width: 48, entry_points: 8, max_comparisons: 0 };

    let mut total_recall = 0.0;
    let queries = 15;
    for q in 0..queries {
        // Perturbed copies of existing profiles play the out-of-sample user.
        let mut query: Vec<u32> = ds.profile(q * 31).to_vec();
        query.retain(|&i| i % 7 != 0); // drop ~1/7 of the items
        let approx = index.search(&query, 10, &config, q as u64);
        let exact = index.exact_search(&query, 10);
        total_recall += QueryIndex::recall(&approx, &exact);
        assert!(
            approx.comparisons < ds.num_users(),
            "query {q} cost {} ≥ a linear scan",
            approx.comparisons
        );
    }
    let recall = total_recall / queries as f64;
    assert!(recall > 0.65, "beam-search recall {recall:.3} over C² graph too low");
}

#[test]
fn dynamic_index_absorbs_a_stream_of_new_users() {
    let ds = dataset();
    let graph = c2_graph(&ds, 10);
    let config = BeamSearchConfig { beam_width: 40, entry_points: 12, max_comparisons: 0 };
    let mut index = DynamicIndex::new(&ds, graph, config);

    // Stream in twins of existing users; each must find its donor.
    let mut found = 0;
    for i in 0..30u32 {
        let donor = i * 23 % ds.num_users() as u32;
        let (id, cost) = index.add_user(ds.profile(donor).to_vec(), i as u64);
        assert!(cost < ds.num_users(), "insertion cost {cost} ≥ linear scan");
        let knn = index.knn(id);
        if knn.first().map(|n| n.sim) == Some(1.0) {
            found += 1;
        }
    }
    assert!(found >= 25, "only {found}/30 streamed twins located their donor at sim 1.0");
    assert_eq!(index.inserted_users(), 30);
}

#[test]
fn recommender_works_on_a_dynamically_grown_graph() {
    // The graph handed to the recommender can be the dynamic one — the
    // base users' neighbourhoods remain intact or improved.
    let ds = dataset();
    let graph = c2_graph(&ds, 10);
    let before_edges = graph.num_edges();
    let config = BeamSearchConfig { beam_width: 40, entry_points: 8, max_comparisons: 0 };
    let mut index = DynamicIndex::new(&ds, graph, config);
    for i in 0..10u32 {
        index.add_user(ds.profile(i).to_vec(), 1000 + i as u64);
    }
    assert!(index.graph().num_edges() >= before_edges, "insertions must not lose edges");
    // Base users still have full neighbourhoods.
    for u in 0..20u32 {
        assert!(!index.knn(u).is_empty());
    }
}
