//! Integration suite for the `cnc-serve` subsystem: snapshot round-trip
//! fidelity (including property tests over arbitrary datasets/graphs), a
//! corrupt-file matrix, serve-after-reload equivalence, and the
//! concurrent reader/writer epoch-swap behaviour.

use cluster_and_conquer::prelude::*;
use cluster_and_conquer::serve::{
    write_snapshot, write_snapshot_v1_to, AdoptedSnapshot, SnapshotAdopter, SnapshotError,
    SnapshotPublisher,
};
use cnc_query::QueryResult;
use cnc_similarity::SimilarityData;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A unique temp path removed on drop, so failing tests don't leak files.
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        TempPath(std::env::temp_dir().join(format!(
            "cnc-serve-{}-{tag}-{:?}.snap",
            std::process::id(),
            std::thread::current().id(),
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A unique temp directory removed (recursively) on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "cnc-serve-{}-{tag}-{:?}.d",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dataset(seed: u64, users: usize) -> Dataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.num_users = users;
    cfg.num_items = users.max(100);
    cfg.communities = 8;
    cfg.mean_profile = 18.0;
    cfg.min_profile = 6;
    cfg.generate()
}

fn serving_config(rebuild_after: usize) -> ServingConfig {
    ServingConfig {
        c2: C2Config {
            k: 8,
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 33 },
            seed: 9,
            threads: 1,
            ..C2Config::default()
        },
        runtime: RuntimeConfig::with_workers(2),
        beam: BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
        rebuild_after,
        ..ServingConfig::default()
    }
}

fn assert_graphs_identical(a: &KnnGraph, b: &KnnGraph) {
    assert_eq!(a.k(), b.k());
    assert_eq!(a.num_users(), b.num_users());
    for (u, list) in a.iter() {
        let mine: Vec<(u32, u32)> = list.iter().map(|n| (n.user, n.sim.to_bits())).collect();
        let got: Vec<(u32, u32)> =
            b.neighbors(u).iter().map(|n| (n.user, n.sim.to_bits())).collect();
        assert_eq!(mine, got, "user {u} neighbour layout differs");
    }
}

fn assert_snapshots_identical(a: &Snapshot, b: &Snapshot) {
    assert_eq!(a.dataset, b.dataset);
    assert_graphs_identical(&a.graph, &b.graph);
    match (&a.goldfinger, &b.goldfinger) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.words(), y.words());
            assert_eq!((x.bits(), x.seed()), (y.bits(), y.seed()));
        }
        _ => panic!("fingerprint presence differs"),
    }
}

#[test]
fn snapshot_file_round_trip_is_bit_exact() {
    let ds = dataset(1, 250);
    let engine = ServingEngine::build(ds, serving_config(0));
    let snap = engine.snapshot();
    let path = TempPath::new("roundtrip");
    snap.write(&path.0).unwrap();
    let back = Snapshot::load(&path.0).unwrap();
    assert_snapshots_identical(&snap, &back);

    // The streaming borrowed-parts writer produces the identical file
    // without cloning the parts.
    let streamed = TempPath::new("streamed");
    write_snapshot(&snap.dataset, &snap.graph, snap.goldfinger.as_ref(), &streamed.0).unwrap();
    assert_eq!(
        std::fs::read(&path.0).unwrap(),
        std::fs::read(&streamed.0).unwrap(),
        "owned and streamed writers must emit identical bytes"
    );

    // The engine-side writer additionally persists the builder's cluster
    // cache (extra per-cluster sections) but restores the identical
    // serving state.
    let engine_written = TempPath::new("engine");
    engine.write_snapshot(&engine_written.0).unwrap();
    let full = Snapshot::load(&engine_written.0).unwrap();
    assert_snapshots_identical(&snap, &full);
    assert!(full.cache.is_some(), "engine snapshots must carry the cluster cache");
    assert!(snap.cache.is_none(), "epoch-only snapshots carry no builder state");
}

#[test]
fn concurrent_snapshot_writes_to_one_path_never_clobber() {
    // Per-call temp names + atomic rename: racing writers must always
    // leave a loadable snapshot at the destination.
    let ds = dataset(8, 150);
    let engine = ServingEngine::build(ds, serving_config(0));
    let path = TempPath::new("race");
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let engine = &engine;
            let path = &path.0;
            scope.spawn(move || {
                for _ in 0..4 {
                    engine.write_snapshot(path).unwrap();
                }
            });
        }
    });
    let loaded = Snapshot::load(&path.0).unwrap();
    assert_snapshots_identical(&engine.snapshot(), &loaded);
}

#[test]
fn reloaded_engine_answers_queries_identically() {
    let ds = dataset(2, 300);
    let config = serving_config(0);
    let engine = ServingEngine::build(ds.clone(), config);
    let path = TempPath::new("reload");
    engine.snapshot().write(&path.0).unwrap();
    let reloaded = ServingEngine::from_snapshot(Snapshot::load(&path.0).unwrap(), config);

    for q in 0..25u64 {
        let profile = ds.profile((q * 11 % 300) as u32);
        let fresh: QueryResult = engine.query(profile, 10, q);
        let replay: QueryResult = reloaded.query(profile, 10, q);
        assert_eq!(fresh.neighbors, replay.neighbors, "query {q} diverged after reload");
        assert_eq!(fresh.comparisons, replay.comparisons, "query {q} cost diverged");
    }
}

#[test]
fn reloaded_engine_continues_the_serving_loop() {
    // A snapshot is not a dead end: the reloaded engine keeps absorbing
    // inserts and publishing epochs.
    let ds = dataset(3, 200);
    let engine = ServingEngine::build(ds.clone(), serving_config(4));
    let path = TempPath::new("continue");
    engine.snapshot().write(&path.0).unwrap();
    let reloaded =
        ServingEngine::from_snapshot(Snapshot::load(&path.0).unwrap(), serving_config(4));
    for i in 0..4u32 {
        reloaded.insert(ds.profile(i * 9).to_vec(), i as u64);
    }
    let stats = reloaded.stats();
    assert_eq!(stats.epoch, 2, "four inserts must publish the second epoch");
    assert_eq!(stats.num_users, ds.num_users() + 4);
}

#[test]
fn corrupt_file_matrix_yields_typed_errors_not_panics() {
    let ds = dataset(4, 120);
    let engine = ServingEngine::build(ds, serving_config(0));
    let mut bytes = Vec::new();
    engine.snapshot().write_to(&mut bytes).unwrap();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[..8].copy_from_slice(b"GARBAGE!");
    assert!(matches!(Snapshot::load_from(&mut bad.as_slice()), Err(SnapshotError::BadMagic(_))));

    // Version skew (a future format).
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        Snapshot::load_from(&mut bad.as_slice()),
        Err(SnapshotError::UnsupportedVersion(7))
    ));

    // Checksum mismatch: flip one payload byte.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        Snapshot::load_from(&mut bad.as_slice()),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // Truncation at every byte boundary of the header and table, plus a
    // spread of payload cuts: typed errors, never panics.
    for cut in (0..bytes.len().min(80)).chain([bytes.len() / 3, bytes.len() / 2, bytes.len() - 1]) {
        let truncated = &bytes[..cut];
        match Snapshot::load_from(&mut truncated.to_vec().as_slice()) {
            Err(SnapshotError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}")
            }
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut} bytes loaded successfully"),
        }
    }
}

#[test]
fn concurrent_readers_survive_epoch_swaps() {
    let ds = dataset(5, 250);
    let n = ds.num_users();
    let engine = Arc::new(ServingEngine::build(ds.clone(), serving_config(6)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Two readers hammer queries across whatever epoch is current.
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let ds = &ds;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let mut answered = 0u64;
                    let mut q = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let profile = ds.profile(((q * 7 + r * 13) % n as u64) as u32);
                        let result = engine.query_with(&mut session, profile, 8, q);
                        assert!(result.neighbors.len() <= 8);
                        assert!(
                            result.neighbors.iter().all(|nb| (nb.user as usize) < n + 64),
                            "neighbour id out of any epoch's range"
                        );
                        answered += 1;
                        q += 1;
                    }
                    answered
                })
            })
            .collect();

        // The writer absorbs a stream that triggers several swaps.
        let mut published = 0;
        for i in 0..20u32 {
            let mut profile = ds.profile((i * 3) % n as u32).to_vec();
            profile.push(i % 50);
            let outcome = engine.insert(profile, i as u64);
            published += usize::from(outcome.published.is_some());
        }
        stop.store(true, Ordering::Relaxed);
        let answered: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(answered > 0, "readers must make progress during swaps");
        assert_eq!(published, 3, "20 inserts at rebuild_after = 6 publish 3 epochs");
    });

    let stats = engine.stats();
    assert_eq!(stats.epoch_swaps, 3);
    assert_eq!(stats.epoch, 4);
    assert_eq!(stats.num_users, n + 18, "3 published batches of 6 inserts each");
    assert_eq!(stats.pending_inserts, 2);
}

#[test]
fn held_epochs_stay_queryable_after_many_swaps() {
    let ds = dataset(6, 150);
    let engine = ServingEngine::build(ds.clone(), serving_config(0));
    let held = engine.current_epoch();
    let before = held.index().search(ds.profile(3), 5, &serving_config(0).beam, 1);
    for round in 0..3u64 {
        engine.insert(ds.profile((round * 5) as u32).to_vec(), round);
        engine.publish();
    }
    assert_eq!(engine.current_epoch().epoch(), 4);
    // The old epoch still answers, unchanged — readers are never torn.
    let after = held.index().search(ds.profile(3), 5, &serving_config(0).beam, 1);
    assert_eq!(before.neighbors, after.neighbors);
    assert_eq!(held.epoch(), 1);
}

#[test]
fn mmap_adoption_is_zero_copy_and_bit_identical_to_the_copy_path() {
    let ds = dataset(10, 250);
    let config = serving_config(0);
    let engine = ServingEngine::build(ds.clone(), config);
    let path = TempPath::new("mmap");
    engine.write_snapshot(&path.0).unwrap();

    let adopted = AdoptedSnapshot::open(&path.0).unwrap();
    assert_eq!(
        adopted.mapped,
        AdoptedSnapshot::zero_copy_supported(),
        "a v2 file must map wherever the platform allows"
    );
    let copied = AdoptedSnapshot::load_copied(&path.0).unwrap();
    assert!(!copied.mapped);

    // Bit-identity between the two load paths: same profiles, same
    // neighbour heap layout, same fingerprint words.
    assert_eq!(adopted.dataset, copied.dataset);
    assert_graphs_identical(&adopted.graph, &copied.graph);
    assert_eq!(
        adopted.goldfinger.as_ref().unwrap().words(),
        copied.goldfinger.as_ref().unwrap().words()
    );

    if adopted.mapped {
        // The structural zero-copy assertion: every bulk array borrows
        // the map — adoption did no per-user work.
        assert!(adopted.dataset.is_shared(), "mapped dataset must borrow the file");
        assert!(adopted.graph.is_shared(), "mapped graph must borrow the file");
        assert!(adopted.goldfinger.as_ref().unwrap().is_shared());
    }

    // Adopt into an engine serving something else entirely; afterwards it
    // must answer exactly like an engine that decoded the same file.
    let serving = ServingEngine::build(dataset(11, 150), config);
    let epoch = serving.adopt(adopted);
    assert_eq!(epoch, 2, "adoption publishes the next epoch");
    if AdoptedSnapshot::zero_copy_supported() {
        let current = serving.current_epoch();
        assert!(
            current.dataset().is_shared() && current.graph().is_shared(),
            "the adopted epoch must keep borrowing the map"
        );
    }
    let reference = ServingEngine::from_snapshot(Snapshot::load(&path.0).unwrap(), config);
    for q in 0..25u64 {
        let profile = ds.profile((q * 13 % 250) as u32);
        let mine: QueryResult = serving.query(profile, 10, q);
        let theirs: QueryResult = reference.query(profile, 10, q);
        assert_eq!(mine.neighbors, theirs.neighbors, "query {q} diverged under mmap");
        assert_eq!(mine.comparisons, theirs.comparisons, "query {q} cost diverged under mmap");
    }

    // The adopted engine is not read-only: inserts copy-on-write and the
    // serving loop continues.
    serving.insert(ds.profile(7).to_vec(), 99);
    serving.publish();
    assert_eq!(serving.stats().num_users, 251);
}

#[test]
fn v1_snapshots_load_bit_exactly_through_the_copy_path() {
    let ds = dataset(12, 180);
    let engine = ServingEngine::build(ds, serving_config(0));
    let snap = engine.snapshot();

    let mut v1 = Vec::new();
    write_snapshot_v1_to(&snap.dataset, &snap.graph, snap.goldfinger.as_ref(), &mut v1).unwrap();
    let back = Snapshot::load_from(&mut v1.as_slice()).unwrap();
    assert_snapshots_identical(&snap, &back);
    assert!(back.cache.is_none(), "v1 has no cluster sections");

    // Adoption of a v1 file must silently take the copy fallback, never
    // fail for want of a flat layout.
    let path = TempPath::new("v1");
    std::fs::write(&path.0, &v1).unwrap();
    let adopted = AdoptedSnapshot::open(&path.0).unwrap();
    assert!(!adopted.mapped, "v1 files cannot be served zero-copy");
    assert_eq!(adopted.dataset, snap.dataset);
    assert_graphs_identical(&adopted.graph, &snap.graph);
}

#[test]
fn version_header_skew_and_table_truncation_are_typed_errors() {
    let ds = dataset(13, 100);
    let engine = ServingEngine::build(ds, serving_config(0));
    let mut v2 = Vec::new();
    engine.snapshot().write_to(&mut v2).unwrap();

    // A v1 header over v2 sections: the v1 table/codec cannot interpret
    // the aligned layout — a typed error, never a panic, never a
    // half-decoded snapshot.
    let mut crossed = v2.clone();
    crossed[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(
        Snapshot::load_from(&mut crossed.as_slice()).is_err(),
        "v1 header over v2 sections must not load"
    );
    let path = TempPath::new("crossed");
    std::fs::write(&path.0, &crossed).unwrap();
    assert!(AdoptedSnapshot::open(&path.0).is_err(), "adoption must reject it too");

    // Truncation inside the v2 section table, through both load paths.
    for cut in [17usize, 16 + 10, 16 + 28, 16 + 28 + 5] {
        let truncated = &v2[..cut];
        match Snapshot::load_from(&mut truncated.to_vec().as_slice()) {
            Err(SnapshotError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}")
            }
            Err(other) => panic!("cut at {cut}: expected UnexpectedEof, got {other}"),
            Ok(_) => panic!("truncated table at {cut} bytes loaded successfully"),
        }
        std::fs::write(&path.0, truncated).unwrap();
        assert!(AdoptedSnapshot::open(&path.0).is_err(), "adoption must reject the cut at {cut}");
    }
}

#[test]
fn persisted_cluster_cache_makes_the_first_post_restart_publish_incremental() {
    let ds = dataset(14, 300);
    let config = serving_config(0);
    let engine = ServingEngine::build(ds.clone(), config);
    let path = TempPath::new("restart");
    engine.write_snapshot(&path.0).unwrap();
    drop(engine); // the builder leaves the address space entirely

    let snap = Snapshot::load(&path.0).unwrap();
    assert!(snap.cache.is_some(), "the builder cache must survive the file");
    let restored = ServingEngine::from_snapshot(snap, config);
    restored.insert(ds.profile(4).to_vec(), 1);
    restored.publish();
    let first = restored.current_epoch().rebuild_stats();
    assert!(
        first.reuse_ratio > 0.0,
        "restart lost incrementality: {} of {} clusters reused",
        first.clusters_reused(),
        first.clusters_total
    );

    // And reuse is exact: the incremental post-restart build publishes
    // the same neighbourhoods — same users, same similarity bits — as a
    // from-scratch engine fed the same insert. (Heap *layout* is compared
    // order-independently: the multi-worker merge order varies even
    // between two identical in-process builds.)
    let scratch = ServingEngine::build(ds.clone(), config);
    scratch.insert(ds.profile(4).to_vec(), 1);
    scratch.publish();
    let (a, b) = (restored.current_epoch(), scratch.current_epoch());
    assert_eq!(a.graph().num_users(), b.graph().num_users());
    for (u, list) in a.graph().iter() {
        let mut mine: Vec<(u32, u32)> = list.iter().map(|n| (n.user, n.sim.to_bits())).collect();
        let mut theirs: Vec<(u32, u32)> =
            b.graph().neighbors(u).iter().map(|n| (n.user, n.sim.to_bits())).collect();
        mine.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(mine, theirs, "user {u}: restart-incremental differs from from-scratch");
    }
}

#[test]
fn snapshot_directory_publisher_and_adopter_hand_off_epochs() {
    let dir = TempDir::new("publish");
    let ds = dataset(15, 200);
    let config = serving_config(0);
    let builder = ServingEngine::build(ds.clone(), config);

    let mut publisher = SnapshotPublisher::open(&dir.0).unwrap();
    let (seq0, path0) = publisher.publish(&builder).unwrap();
    assert_eq!(seq0, 0);

    // A serving replica bootstraps from the published file and then
    // follows the directory — no builder in its address space.
    let replica = ServingEngine::from_snapshot(Snapshot::load(&path0).unwrap(), config);
    let mut adopter = SnapshotAdopter::new(&dir.0);
    assert_eq!(adopter.poll_into(&replica).unwrap(), Some(0), "first poll adopts seq 0");
    assert_eq!(adopter.poll_into(&replica).unwrap(), None, "nothing new");

    // The builder moves on; the replica catches up on the next poll.
    builder.insert(ds.profile(3).to_vec(), 7);
    builder.publish();
    let (seq1, _) = publisher.publish(&builder).unwrap();
    assert_eq!(seq1, 1);
    assert_eq!(adopter.poll_into(&replica).unwrap(), Some(1));
    assert_eq!(replica.stats().num_users, 201, "the adopted epoch serves the new user");
    for q in 0..10u64 {
        let profile = ds.profile((q * 17 % 200) as u32);
        let a: QueryResult = replica.query(profile, 8, q);
        let b: QueryResult = builder.query(profile, 8, q);
        assert_eq!(a.neighbors, b.neighbors, "replica diverged from builder on query {q}");
    }

    // Publisher restarts resume the sequence; pruning keeps the tail.
    drop(publisher);
    let publisher = SnapshotPublisher::open(&dir.0).unwrap();
    assert_eq!(publisher.next_seq(), 2, "restart must resume after the newest file");
    assert_eq!(publisher.prune(1).unwrap(), 1, "pruning drops all but the newest");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary datasets + graphs round trip bit-exactly through the
    /// snapshot codec, fingerprints included.
    #[test]
    fn snapshot_round_trip_on_arbitrary_datasets(
        profiles in proptest::collection::vec(
            proptest::collection::btree_set(0u32..300, 0..25)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            1..40,
        ),
        k in 1usize..12,
        bits_index in 0usize..4,
        with_fingerprints in (0u32..2).prop_map(|b| b == 1),
        seed in 0u64..100,
    ) {
        let ds = Dataset::from_profiles(profiles, 0);
        let bits = [64usize, 192, 1024, 4096][bits_index];
        let sim = SimilarityData::build(
            SimilarityBackend::GoldFinger { bits, seed }, &ds);
        let ctx = cluster_and_conquer::baselines::BuildContext {
            dataset: &ds, sim: &sim, k, threads: 1, seed,
        };
        use cluster_and_conquer::baselines::KnnAlgorithm;
        let graph = cluster_and_conquer::baselines::BruteForce.build(&ctx);
        let goldfinger = with_fingerprints.then(|| sim.goldfinger().unwrap().clone());
        let snap = Snapshot::new(ds, graph, goldfinger);
        let mut buf = Vec::new();
        let written = snap.write_to(&mut buf).unwrap();
        prop_assert_eq!(written as usize, buf.len());
        let back = Snapshot::load_from(&mut buf.as_slice()).unwrap();
        assert_snapshots_identical(&snap, &back);
    }

    /// Random single-byte corruption anywhere in the file must never
    /// panic and must never be silently accepted as a different snapshot.
    #[test]
    fn random_corruption_never_panics(
        position_sel in 0u64..1_000_000,
        flip in 1u32..256,
    ) {
        let ds = dataset(7, 60);
        let gf = GoldFinger::build(&ds, 256, 3);
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = cluster_and_conquer::baselines::BuildContext {
            dataset: &ds, sim: &sim, k: 4, threads: 1, seed: 1,
        };
        use cluster_and_conquer::baselines::KnnAlgorithm;
        let graph = cluster_and_conquer::baselines::BruteForce.build(&ctx);
        let snap = Snapshot::new(ds, graph, Some(gf));
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let position = (bytes.len() as u64 * position_sel / 1_000_000) as usize;
        bytes[position] ^= flip as u8;
        // Either a typed error, or — when the flip hits a byte the format
        // does not interpret (it re-reads as the same value) — a snapshot
        // identical to the original. What must never happen: a panic, or
        // a *different* snapshot loading successfully.
        if let Ok(loaded) = Snapshot::load_from(&mut bytes.as_slice()) {
            assert_snapshots_identical(&snap, &loaded);
        }
    }
}
