//! The determinism/equivalence suite for the multi-shard reduce and the
//! file-backed shuffle: every `(workers, reduce_shards, spill)`
//! combination must produce **exactly** the graph of the single-process
//! `ClusterAndConquer::build`, and the shuffle's own accounting must
//! balance.

use cluster_and_conquer::prelude::*;
use cnc_graph::NeighborList;
use cnc_runtime::shuffle::{encoded_len, partition_of, read_record, write_record};
use cnc_runtime::Runtime;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(3131);
    cfg.num_users = 600;
    cfg.num_items = 450;
    cfg.communities = 10;
    cfg.mean_profile = 25.0;
    cfg.min_profile = 8;
    cfg.generate()
}

fn c2_config() -> C2Config {
    C2Config {
        k: 8,
        b: 64,
        t: 4,
        max_cluster_size: 130,
        backend: SimilarityBackend::Raw,
        seed: 31,
        threads: 1,
        ..C2Config::default()
    }
}

/// The acceptance matrix: workers × reduce shards × spill modes, each
/// cell checked for exact graph equality with the single-process build
/// and for balanced shuffle accounting.
#[test]
fn every_configuration_reproduces_the_single_process_graph() {
    let ds = dataset();
    let single = ClusterAndConquer::new(c2_config()).build(&ds);
    for workers in [1usize, 2, 4] {
        for reduce_shards in [1usize, 2, 3] {
            for spill in [SpillMode::Off, SpillMode::Always] {
                let config =
                    RuntimeConfig { workers, reduce_shards, spill, ..RuntimeConfig::default() };
                let sharded = Runtime::new(config).execute(&ds, &c2_config());
                let report = &sharded.report;
                let label = format!("W={workers} R={reduce_shards} spill={spill:?}");

                report.check_invariants().unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(report.reducers.len(), reduce_shards, "{label}");
                for u in ds.users() {
                    assert_eq!(
                        sharded.graph.neighbors(u).sorted(),
                        single.graph.neighbors(u).sorted(),
                        "{label}: user {u} differs from the single-process build"
                    );
                }
                match spill {
                    SpillMode::Off => {
                        assert_eq!(report.total_spill_bytes(), 0, "{label}");
                        assert_eq!(report.total_spill_entries(), 0, "{label}");
                        assert!(report.spill_dir.is_none(), "{label}");
                    }
                    _ => {
                        // The acceptance criterion: a spilling multi-shard
                        // reduce really routes bytes through files.
                        if reduce_shards >= 2 {
                            assert!(report.total_spill_bytes() > 0, "{label}: no spill bytes");
                        }
                        assert_eq!(
                            report.total_spill_entries(),
                            report.shuffle_entries,
                            "{label}: Always must spill every entry"
                        );
                    }
                }
            }
        }
    }
}

/// Repeated builds of the same configuration are deterministic — the
/// shuffle introduces no ordering or scheduling dependence.
#[test]
fn sharded_builds_are_reproducible() {
    let ds = dataset();
    let config = RuntimeConfig {
        workers: 3,
        reduce_shards: 2,
        spill: SpillMode::Always,
        ..RuntimeConfig::default()
    };
    let a = Runtime::new(config).execute(&ds, &c2_config());
    let b = Runtime::new(config).execute(&ds, &c2_config());
    assert_eq!(a.report.shuffle_entries, b.report.shuffle_entries);
    for u in ds.users() {
        assert_eq!(a.graph.neighbors(u).sorted(), b.graph.neighbors(u).sorted());
    }
}

/// The spill temp dir must be gone by the time the build returns.
#[test]
fn spill_directory_is_cleaned_up() {
    let ds = dataset();
    let config = RuntimeConfig {
        workers: 2,
        reduce_shards: 2,
        spill: SpillMode::Always,
        ..RuntimeConfig::default()
    };
    let result = Runtime::new(config).execute(&ds, &c2_config());
    let dir = result.report.spill_dir.as_ref().expect("spilling build records its dir");
    assert!(!dir.exists(), "{} must be removed after the build", dir.display());
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Partitioning is a total disjoint cover: every user lands in
        /// exactly one in-range shard, deterministically.
        #[test]
        fn partitioning_is_a_total_disjoint_cover(n in 1usize..3000, shards in 1usize..10) {
            let mut counts = vec![0usize; shards];
            for u in 0..n as u32 {
                let p = partition_of(u, shards);
                prop_assert!(p < shards, "user {} escaped to shard {} of {}", u, p, shards);
                prop_assert_eq!(p, partition_of(u, shards), "partitioner must be deterministic");
                counts[p] += 1;
            }
            // Each user is counted once, so shard sizes sum to n: the
            // partition covers the users and the parts are disjoint.
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
        }

        /// Spill-file round-trip (encode→decode) is lossless for
        /// arbitrary partial lists: the decoded list holds exactly the
        /// encoded entries, with bit-identical similarities.
        #[test]
        fn spill_round_trip_is_lossless(
            user in 0u32..100_000,
            cluster_hash in 0u64..u64::MAX,
            inserts in proptest::collection::vec((0u32..5_000, -1000i32..1000), 0..40),
            k in 1usize..16,
        ) {
            let mut original = NeighborList::new(k);
            for &(neighbor, sim_raw) in &inserts {
                original.insert(neighbor, sim_raw as f32 / 128.0);
            }
            let mut buf = Vec::new();
            let written = write_record(&mut buf, user, cluster_hash, &original).unwrap();
            prop_assert_eq!(written, encoded_len(&original));
            prop_assert_eq!(written as usize, buf.len());

            let mut reader = buf.as_slice();
            let (decoded_user, decoded_hash, decoded) =
                read_record(&mut reader, k).unwrap().unwrap();
            prop_assert_eq!(decoded_user, user);
            prop_assert_eq!(decoded_hash, cluster_hash);
            prop_assert_eq!(decoded.len(), original.len());
            let got: Vec<(u32, u32)> =
                decoded.sorted().iter().map(|n| (n.user, n.sim.to_bits())).collect();
            let expect: Vec<(u32, u32)> =
                original.sorted().iter().map(|n| (n.user, n.sim.to_bits())).collect();
            prop_assert_eq!(got, expect, "decoded list differs from the encoded one");
            prop_assert!(read_record(&mut reader, k).unwrap().is_none(), "trailing bytes");
        }

        /// Concatenated records decode back one-for-one, in order — the
        /// exact access pattern of a reducer replaying a spill file.
        #[test]
        fn spill_streams_replay_in_order(
            lists in proptest::collection::vec(
                proptest::collection::vec((0u32..2_000, 0i32..256), 0..12),
                0..25,
            ),
        ) {
            let k = 12;
            let originals: Vec<NeighborList> = lists
                .iter()
                .map(|entries| {
                    let mut l = NeighborList::new(k);
                    for &(neighbor, sim_raw) in entries {
                        l.insert(neighbor, sim_raw as f32 / 256.0);
                    }
                    l
                })
                .collect();
            let mut buf = Vec::new();
            for (i, l) in originals.iter().enumerate() {
                write_record(&mut buf, i as u32, i as u64 * 31, l).unwrap();
            }
            let mut reader = buf.as_slice();
            for (i, l) in originals.iter().enumerate() {
                let (user, hash, decoded) = read_record(&mut reader, k).unwrap().unwrap();
                prop_assert_eq!(user, i as u32);
                prop_assert_eq!(hash, i as u64 * 31);
                prop_assert_eq!(decoded.sorted(), l.sorted());
            }
            prop_assert!(read_record(&mut reader, k).unwrap().is_none());
        }
    }
}
