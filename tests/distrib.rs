//! Distributed build suite (PR 9 keystone): the multi-process
//! coordinator produces graphs **bit-identical** to the single-process
//! [`ClusterAndConquer::build`] across every cell of
//! processes × reduce shards × transport — including with a worker
//! SIGKILLed mid-build, under armed `worker.exit` / `transport.send`
//! chaos schedules, and all the way down to the no-survivors inline
//! recovery lane. Escalation is typed: a cluster that kills
//! `MAX_CLUSTER_ATTEMPTS` processes fails the build with
//! `ClusterExhausted`, and the publisher keeps the last good result
//! live across that failure.
//!
//! This binary runs without the libtest harness because it *is* the
//! worker fleet: the coordinator re-execs `current_exe()` with
//! `--distrib-worker`, which [`maybe_run_worker`] intercepts first
//! thing in `main`.

use cluster_and_conquer::distrib::{
    DistribConfig, DistribError, DistribPublisher, DistribResult, DistribRuntime, KillSpec,
    ProcExit, Transport, MAX_CLUSTER_ATTEMPTS,
};
use cluster_and_conquer::prelude::*;
use cnc_faults::Site;
use cnc_telemetry::wire::TID_STRIDE;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

fn main() {
    cluster_and_conquer::distrib::maybe_run_worker();

    let tests: &[(&str, fn())] = &[
        ("bit_identity_across_the_matrix", bit_identity_across_the_matrix),
        ("killed_worker_recovers_bit_identically", killed_worker_recovers_bit_identically),
        (
            "worker_exit_chaos_drains_into_inline_recovery",
            worker_exit_chaos_drains_into_inline_recovery,
        ),
        (
            "transport_send_chaos_is_absorbed_by_backoff",
            transport_send_chaos_is_absorbed_by_backoff,
        ),
        ("hot_cluster_escalates_to_typed_exhaustion", hot_cluster_escalates_to_typed_exhaustion),
        (
            "publisher_keeps_last_good_across_failed_rebuild",
            publisher_keeps_last_good_across_failed_rebuild,
        ),
        ("remote_spans_merge_into_one_timeline", remote_spans_merge_into_one_timeline),
    ];
    let mut failed = 0;
    for (name, test) in tests {
        print!("test {name} ... ");
        std::io::stdout().flush().expect("stdout");
        match catch_unwind(AssertUnwindSafe(test)) {
            Ok(()) => println!("ok"),
            Err(_) => {
                failed += 1;
                println!("FAILED");
            }
        }
    }
    println!();
    if failed > 0 {
        println!("test result: FAILED. {} passed; {failed} failed", tests.len() - failed);
        std::process::exit(1);
    }
    println!("test result: ok. {} passed; 0 failed", tests.len());
}

fn distrib_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = SyntheticConfig::small(7711);
        cfg.num_users = 380;
        cfg.num_items = 320;
        cfg.communities = 8;
        cfg.mean_profile = 20.0;
        cfg.min_profile = 6;
        cfg.generate()
    })
}

fn c2_config() -> C2Config {
    C2Config {
        k: 8,
        b: 64,
        t: 3,
        max_cluster_size: 120,
        backend: SimilarityBackend::Raw,
        seed: 17,
        threads: 1,
        ..C2Config::default()
    }
}

fn baseline() -> &'static KnnGraph {
    static GRAPH: OnceLock<KnnGraph> = OnceLock::new();
    GRAPH.get_or_init(|| ClusterAndConquer::new(c2_config()).build(distrib_dataset()).graph)
}

fn assert_bit_identical(distributed: &KnnGraph, label: &str) {
    let single = baseline();
    assert_eq!(single.num_users(), distributed.num_users(), "{label}");
    for u in 0..single.num_users() as u32 {
        assert_eq!(
            single.neighbors(u).sorted(),
            distributed.neighbors(u).sorted(),
            "{label}: user {u} differs between single-process and distributed builds"
        );
    }
}

fn execute(config: DistribConfig, label: &str) -> DistribResult {
    DistribRuntime::new(config)
        .execute(distrib_dataset(), &c2_config())
        .unwrap_or_else(|e| panic!("{label}: distributed build failed: {e}"))
}

/// Every cell of the §VIII deployment matrix merges to the same bits.
fn bit_identity_across_the_matrix() {
    for transport in [Transport::Pipe, Transport::Socket] {
        for processes in [1usize, 2, 4] {
            for reduce_shards in [1usize, 2] {
                let label = format!("{transport} x{processes} shards={reduce_shards}");
                let result = execute(
                    DistribConfig {
                        processes,
                        reduce_shards,
                        transport,
                        ..DistribConfig::default()
                    },
                    &label,
                );
                assert_bit_identical(&result.graph, &label);
                assert_eq!(result.report.worker_deaths, 0, "{label}: clean run");
                assert_eq!(result.report.processes, processes, "{label}");
                assert!(
                    result.report.workers.iter().all(|w| w.exit == ProcExit::Clean),
                    "{label}: every worker must say goodbye"
                );
            }
        }
    }
}

/// SIGKILL a worker after its first solved cluster: its remaining
/// queue requeues on the survivors and the merge still lands on the
/// same bits (buffered complete frames drain; partial frames drop).
///
/// The kill is asynchronous — a fast worker can drain its whole batch
/// into the pipe before the signal lands, leaving nothing in flight to
/// requeue. Every attempt must be bit-identical with exactly one
/// death; the run retries until the kill catches clusters in flight.
fn killed_worker_recovers_bit_identically() {
    const ATTEMPTS: usize = 10;
    for attempt in 1..=ATTEMPTS {
        let label = format!("kill worker 0 after 1 cluster (attempt {attempt})");
        let result = execute(
            DistribConfig {
                processes: 3,
                reduce_shards: 2,
                kill: Some(KillSpec { worker: 0, after_clusters: 1 }),
                ..DistribConfig::default()
            },
            &label,
        );
        assert_bit_identical(&result.graph, &label);
        assert_eq!(result.report.worker_deaths, 1, "{label}: exactly the killed worker dies");
        assert!(matches!(result.report.workers[0].exit, ProcExit::Dead(_)), "{label}");
        if result.report.requeued_clusters >= 1 {
            return;
        }
    }
    panic!("kill never caught worker 0 with clusters in flight over {ATTEMPTS} runs");
}

/// `worker.exit` at p=1, span=1: every worker dies on its first
/// cluster, zero survivors remain, and the coordinator's inline
/// recovery lane solves the entire pool — still bit-identical.
fn worker_exit_chaos_drains_into_inline_recovery() {
    let label = "worker.exit p=1 span=1";
    let spec = FaultPlan::new(4242, 1.0).with_span(1).only(&[Site::WorkerExit]).spec();
    let result = execute(
        DistribConfig {
            processes: 2,
            reduce_shards: 2,
            faults_spec: Some(spec),
            ..DistribConfig::default()
        },
        label,
    );
    assert_bit_identical(&result.graph, label);
    assert_eq!(result.report.worker_deaths, 2, "{label}: both workers must die");
    assert_eq!(
        result.report.recovered_inline, result.report.clusters_total as u64,
        "{label}: with no survivors, every cluster is solved inline"
    );
}

/// `transport.send` at p=1: every frame send draws injected IO and the
/// capped-backoff loop absorbs it (span ≤ 12 < 16 attempts) — no
/// deaths, same bits, retries accounted in the report.
fn transport_send_chaos_is_absorbed_by_backoff() {
    let label = "transport.send p=1";
    let spec = FaultPlan::new(99, 1.0).with_span(3).only(&[Site::TransportSend]).spec();
    let result = execute(
        DistribConfig {
            processes: 2,
            reduce_shards: 2,
            faults_spec: Some(spec),
            ..DistribConfig::default()
        },
        label,
    );
    assert_bit_identical(&result.graph, label);
    assert_eq!(result.report.worker_deaths, 0, "{label}: retries, not deaths");
    assert!(result.report.transport_retries > 0, "{label}: p=1 must cost transport retries");
    assert!(result.report.worker_injected > 0, "{label}: faults fired in workers");
}

/// Finds a fault seed whose `worker.exit` schedule draws exactly one
/// cluster, with a failure budget deep enough to kill
/// `MAX_CLUSTER_ATTEMPTS` successive holders. Pure arithmetic on
/// [`FaultPlan::failure_budget`] — no processes involved.
fn hot_cluster_plan() -> (FaultPlan, usize) {
    let total = BuildPlan::assign(&c2_config(), distrib_dataset()).clusters().len();
    assert!(total >= 8, "chaos dataset must split into enough clusters (got {total})");
    for seed in 0..20_000u64 {
        let plan = FaultPlan::new(seed, 0.02).with_span(6).only(&[Site::WorkerExit]);
        let mut drawn = (0..total as u64)
            .filter(|&c| plan.failure_budget(Site::WorkerExit, c) > 0)
            .collect::<Vec<_>>();
        if drawn.len() == 1 {
            let cluster = drawn.pop().expect("one drawn") as usize;
            if plan.failure_budget(Site::WorkerExit, cluster as u64) >= MAX_CLUSTER_ATTEMPTS {
                return (plan, cluster);
            }
        }
    }
    panic!("no seed draws exactly one deep hot cluster");
}

/// One cluster with a ≥3-death budget, plenty of healthy survivors:
/// the coordinator requeues it twice, then fails typed with
/// `ClusterExhausted` naming that cluster — never a wrong graph.
fn hot_cluster_escalates_to_typed_exhaustion() {
    let (plan, hot) = hot_cluster_plan();
    let runtime = DistribRuntime::new(DistribConfig {
        processes: 4,
        reduce_shards: 2,
        faults_spec: Some(plan.spec()),
        ..DistribConfig::default()
    });
    match runtime.execute(distrib_dataset(), &c2_config()) {
        Err(DistribError::ClusterExhausted { cluster, attempts }) => {
            assert_eq!(cluster, hot, "the hot cluster is named");
            assert_eq!(attempts, MAX_CLUSTER_ATTEMPTS);
        }
        Err(other) => panic!("expected ClusterExhausted, got: {other}"),
        Ok(result) => panic!(
            "build must fail typed; it completed with {} deaths",
            result.report.worker_deaths
        ),
    }
}

/// The serving-writer contract at fleet level: a failed rebuild leaves
/// the previously published result untouched.
fn publisher_keeps_last_good_across_failed_rebuild() {
    let (plan, _) = hot_cluster_plan();
    let mut publisher = DistribPublisher::new(DistribRuntime::new(DistribConfig {
        processes: 2,
        reduce_shards: 2,
        ..DistribConfig::default()
    }));
    let good = publisher.rebuild(distrib_dataset(), &c2_config()).expect("clean rebuild publishes");
    assert_bit_identical(&good.graph, "published build");

    publisher.runtime_mut().config_mut().processes = 4;
    publisher.runtime_mut().config_mut().faults_spec = Some(plan.spec());
    let err = publisher
        .rebuild(distrib_dataset(), &c2_config())
        .expect_err("hot cluster must fail the rebuild");
    assert!(matches!(err, DistribError::ClusterExhausted { .. }), "typed failure: {err}");
    let current = publisher.current().expect("last good stays live");
    assert!(Arc::ptr_eq(&current, &good), "failed rebuild must not replace the result");
}

/// Workers ship their span records at finish; the coordinator merges
/// them under per-process tid offsets into one loadable timeline.
fn remote_spans_merge_into_one_timeline() {
    let telemetry = Telemetry::global();
    telemetry.enable(true);
    let result = execute(
        DistribConfig {
            processes: 2,
            reduce_shards: 2,
            telemetry: true,
            ..DistribConfig::default()
        },
        "telemetry run",
    );
    telemetry.enable(false);
    assert!(result.report.remote_spans > 0, "workers must ship span records");
    let records = telemetry.span_records();
    assert!(
        records.iter().any(|r| r.thread >= TID_STRIDE),
        "merged remote spans carry per-process tid offsets"
    );
    assert!(
        records.iter().any(|r| r.name == "distrib.worker.process"),
        "worker process spans appear in the combined timeline"
    );
}
