//! Cross-crate integration tests: the full C² pipeline against the
//! baselines on a community-structured dataset.

use cluster_and_conquer::prelude::*;
use cnc_similarity::SimilarityData;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::small(2024);
    cfg.num_users = 800;
    cfg.num_items = 600;
    cfg.communities = 12;
    cfg.mean_profile = 30.0;
    cfg.min_profile = 10;
    cfg.generate()
}

fn exact(ds: &Dataset, k: usize) -> KnnGraph {
    let sim = SimilarityData::build(SimilarityBackend::Raw, ds);
    let ctx = BuildContext { dataset: ds, sim: &sim, k, threads: 0, seed: 1 };
    BruteForce.build(&ctx)
}

fn c2_config(k: usize) -> C2Config {
    C2Config {
        k,
        b: 128,
        t: 6,
        max_cluster_size: 150,
        backend: SimilarityBackend::Raw,
        seed: 99,
        ..C2Config::default()
    }
}

#[test]
fn c2_matches_baseline_quality_with_fewer_comparisons() {
    let ds = dataset();
    let k = 10;
    let reference = exact(&ds, k);

    // C².
    let c2 = ClusterAndConquer::new(c2_config(k)).build(&ds);
    let c2_quality = quality(&c2.graph, &reference, &ds);

    // Hyrec on the same (raw) backend.
    let hyrec_sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
    let ctx = BuildContext { dataset: &ds, sim: &hyrec_sim, k, threads: 0, seed: 99 };
    let hyrec_graph = Hyrec::default().build(&ctx);
    let hyrec_quality = quality(&hyrec_graph, &reference, &ds);

    // The paper's headline shape: comparable quality (Δ within ±0.1 at this
    // scale), strictly fewer similarity computations.
    assert!(c2_quality > 0.8, "C2 quality {c2_quality:.3}");
    assert!(
        (c2_quality - hyrec_quality).abs() < 0.12,
        "quality gap too wide: C2 {c2_quality:.3} vs Hyrec {hyrec_quality:.3}"
    );
    assert!(
        c2.stats.comparisons < hyrec_sim.comparisons(),
        "C2 {} comparisons vs Hyrec {}",
        c2.stats.comparisons,
        hyrec_sim.comparisons()
    );
}

#[test]
fn all_algorithms_beat_the_random_graph() {
    let ds = dataset();
    let k = 10;
    let random_sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
    let random = KnnGraph::random_init(ds.num_users(), k, 3, |u, v| random_sim.sim(u, v));
    let random_avg = cnc_graph::avg_exact_similarity(&random, &ds);

    let hyrec = Hyrec::default();
    let nnd = NnDescent::default();
    let lsh = Lsh::default();
    let algos: [&dyn KnnAlgorithm; 3] = [&hyrec, &nnd, &lsh];
    for algo in algos {
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k, threads: 0, seed: 3 };
        let graph = algo.build(&ctx);
        let avg = cnc_graph::avg_exact_similarity(&graph, &ds);
        assert!(
            avg > 1.3 * random_avg,
            "{} ({avg:.4}) did not improve over random ({random_avg:.4})",
            algo.name()
        );
    }
    let c2 = ClusterAndConquer::new(c2_config(k)).build(&ds);
    let avg = cnc_graph::avg_exact_similarity(&c2.graph, &ds);
    assert!(avg > 1.3 * random_avg, "C2 ({avg:.4}) vs random ({random_avg:.4})");
}

#[test]
fn pipeline_is_deterministic_on_one_thread() {
    let ds = dataset();
    let config = C2Config { threads: 1, ..c2_config(8) };
    let a = ClusterAndConquer::new(config).build(&ds);
    let b = ClusterAndConquer::new(config).build(&ds);
    assert_eq!(a.stats.comparisons, b.stats.comparisons);
    assert_eq!(a.stats.num_clusters, b.stats.num_clusters);
    for u in ds.users() {
        assert_eq!(a.graph.neighbors(u).sorted(), b.graph.neighbors(u).sorted());
    }
}

#[test]
fn multithreaded_c2_preserves_quality() {
    let ds = dataset();
    let reference = exact(&ds, 8);
    let single = ClusterAndConquer::new(C2Config { threads: 1, ..c2_config(8) }).build(&ds);
    let multi = ClusterAndConquer::new(C2Config { threads: 4, ..c2_config(8) }).build(&ds);
    let q1 = quality(&single.graph, &reference, &ds);
    let q4 = quality(&multi.graph, &reference, &ds);
    // Thread interleaving may reorder tie-breaks, but quality must match.
    assert!((q1 - q4).abs() < 0.01, "thread count changed quality: {q1:.4} vs {q4:.4}");
}

#[test]
fn goldfinger_pipeline_stays_close_to_raw_pipeline() {
    // Table V's shape: GoldFinger trades a small quality delta for speed.
    let ds = dataset();
    let reference = exact(&ds, 10);
    let raw = ClusterAndConquer::new(c2_config(10)).build(&ds);
    let gf = ClusterAndConquer::new(C2Config {
        backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 5 },
        ..c2_config(10)
    })
    .build(&ds);
    let q_raw = quality(&raw.graph, &reference, &ds);
    let q_gf = quality(&gf.graph, &reference, &ds);
    assert!(
        q_raw - q_gf < 0.08,
        "GoldFinger lost too much quality: raw {q_raw:.3} vs gf {q_gf:.3}"
    );
}
