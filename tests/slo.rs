//! Integration suite for the SLO-aware serving layer: cross-query batched
//! execution equivalence (bit-identical results *and* comparison counts
//! against the single-query path, over every kernel width), token-bucket
//! admission and adaptive-beam controller properties, the recall@k
//! ground-truth harness, and the engine-level overload behaviour (typed
//! shed, never a panic).

use cluster_and_conquer::prelude::*;
use cnc_eval::groundtruth::{epoch_key, GroundTruthCache, GroundTruthConfig};
use cnc_query::BatchQuery;
use cnc_serve::{BatchRequest, ManualClock, SloAction, SloConfig, SloController, TokenBucket};
use cnc_similarity::SimilarityData;
use proptest::prelude::*;
use std::time::Duration;

fn dataset(seed: u64, users: usize) -> Dataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.num_users = users;
    cfg.num_items = users.max(120);
    cfg.communities = 6;
    cfg.mean_profile = 16.0;
    cfg.min_profile = 5;
    cfg.generate()
}

fn graph_for(ds: &Dataset, k: usize) -> KnnGraph {
    let sim = SimilarityData::build(SimilarityBackend::Raw, ds);
    let ctx = BuildContext { dataset: ds, sim: &sim, k, threads: 1, seed: 3 };
    BruteForce.build(&ctx)
}

/// Neighbour lists compared as `(user, sim bit pattern)` — the equality
/// the tentpole promises.
fn bits(result: &cnc_query::QueryResult) -> Vec<(u32, u32)> {
    result.neighbors.iter().map(|n| (n.user, n.sim.to_bits())).collect()
}

/// Runs one epoch's worth of queries through the single-query path and
/// the cross-query batched path and asserts bit-identity, for one scoring
/// backend (`bits_opt`: None = raw Jaccard, Some(b) = b-bit GoldFinger).
fn assert_batched_path_identical(
    ds: &Dataset,
    graph: &KnnGraph,
    bits_opt: Option<usize>,
    k: usize,
    batch: usize,
    config: &BeamSearchConfig,
) {
    let goldfinger = bits_opt.map(|b| GoldFinger::build(ds, b, 0xF1));
    let index = match &goldfinger {
        Some(gf) => QueryIndex::with_goldfinger(ds, graph, gf),
        None => QueryIndex::new(ds, graph),
    };
    let queries: Vec<Vec<u32>> =
        (0..batch).map(|q| ds.profile((q * 7 % ds.num_users()) as u32).to_vec()).collect();
    let requests: Vec<BatchQuery> = queries
        .iter()
        .enumerate()
        .map(|(q, profile)| BatchQuery { profile, k, seed: 0xA0 + q as u64 })
        .collect();
    let batched = index.search_batch(&requests, config);
    assert_eq!(batched.len(), requests.len());
    for (request, got) in requests.iter().zip(&batched) {
        let single = index.search(request.profile, request.k, config, request.seed);
        assert_eq!(
            bits(got),
            bits(&single),
            "neighbours diverged (bits {bits_opt:?}, k {k}, batch {batch})"
        );
        assert_eq!(
            got.comparisons, single.comparisons,
            "comparison counts diverged (bits {bits_opt:?}, k {k}, batch {batch})"
        );
    }
}

/// Every monomorphized kernel width: 64 bits (1 word), 192 (dyn
/// fallback), 1024 (16 words), 4096 (64 words), 8192 (128 words), plus
/// raw Jaccard — across capped and uncapped beams.
#[test]
fn batched_path_is_bit_identical_for_every_backend_width() {
    let ds = dataset(11, 160);
    let graph = graph_for(&ds, 8);
    for bits_opt in [None, Some(64), Some(192), Some(1024), Some(4096), Some(8192)] {
        for max_comparisons in [0usize, 48, 1] {
            let config = BeamSearchConfig { beam_width: 16, entry_points: 4, max_comparisons };
            assert_batched_path_identical(&ds, &graph, bits_opt, 8, 9, &config);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random epochs × batch sizes × k: the cross-query path reproduces
    /// the single-query path exactly, neighbours and comparison counts,
    /// on raw and fingerprint backends.
    #[test]
    fn batched_equivalence_over_random_epochs(
        seed in 0u64..1000,
        users in 30usize..220,
        k in 1usize..12,
        batch in 1usize..20,
        backend_pick in 0usize..3,
        cap_pick in 0usize..3,
    ) {
        let ds = dataset(seed, users);
        let graph = graph_for(&ds, k.max(4));
        let bits_opt = [None, Some(64), Some(1024)][backend_pick];
        let max_comparisons = [0usize, 64, 1][cap_pick];
        let config = BeamSearchConfig {
            beam_width: k.max(12),
            entry_points: 4,
            max_comparisons,
        };
        assert_batched_path_identical(&ds, &graph, bits_opt, k, batch, &config);
    }

    /// Token bucket: over any run, admitted work never exceeds
    /// `burst + rate × elapsed` (integer-exact refill, charge-then-settle
    /// refunds included), and the admit/shed pattern is a deterministic
    /// function of the seeded clock.
    #[test]
    fn admitted_work_never_exceeds_the_budget(
        rate in 1u64..50_000,
        burst in 1u64..10_000,
        ops in proptest::collection::vec((0u64..5_000_000, 1u64..400, 0u64..100), 1..120),
    ) {
        let clock = ManualClock::new();
        let bucket = TokenBucket::with_manual_clock(rate, burst, &clock);
        let replay_clock = ManualClock::new();
        let replay = TokenBucket::with_manual_clock(rate, burst, &replay_clock);
        let mut elapsed_ns: u128 = 0;
        let mut admitted_work: u128 = 0;
        for &(advance, cost, spend_pct) in &ops {
            clock.advance(Duration::from_nanos(advance));
            replay_clock.advance(Duration::from_nanos(advance));
            elapsed_ns += advance as u128;
            let outcome = bucket.try_acquire(cost);
            let replayed = replay.try_acquire(cost);
            prop_assert_eq!(
                outcome.map_err(|r| r.retry_after),
                replayed.map_err(|r| r.retry_after),
                "shed decisions must be deterministic under the seeded clock"
            );
            if outcome.is_ok() {
                // The query runs, spending some fraction of its charge.
                let actual = cost * spend_pct.min(100) / 100;
                bucket.settle(cost, actual);
                replay.settle(cost, actual);
                admitted_work += actual as u128;
                // Work admitted so far can never exceed the budget line:
                // the initial burst plus everything refilled since, with
                // one token of slack for the carry numerator.
                let ceiling = burst as u128 + (elapsed_ns * rate as u128) / 1_000_000_000 + 1;
                prop_assert!(
                    admitted_work <= ceiling,
                    "admitted {admitted_work} > budget ceiling {ceiling}"
                );
            } else {
                // A rejection must carry a usable retry hint.
                prop_assert!(outcome.unwrap_err().retry_after > Duration::ZERO);
            }
        }
        prop_assert_eq!(bucket.balance(), replay.balance());
    }

    /// Controller: whatever p99 sequence it observes, the beam scale
    /// stays in [floor, 100] and the derived width never drops below the
    /// configured minimum.
    #[test]
    fn beam_never_drops_below_the_configured_floor(
        target in 1u64..10_000_000,
        full_beam in 8usize..64,
        min_pick in 1usize..8,
        p99s in proptest::collection::vec(0u64..20_000_000, 1..60),
    ) {
        let min_beam = min_pick.min(full_beam);
        let mut controller = SloController::new(target, full_beam, min_beam);
        for &p99 in &p99s {
            controller.observe(p99);
            prop_assert!(controller.scale_pct() <= 100);
            prop_assert!(
                controller.beam_width() >= min_beam,
                "beam {} below floor {min_beam} at scale {}%",
                controller.beam_width(),
                controller.scale_pct()
            );
            prop_assert!(controller.beam_width() <= full_beam);
        }
    }

    /// Recovery: after an arbitrary burst of SLO misses, a healthy stretch
    /// restores the full beam width.
    #[test]
    fn recovery_after_burst_restores_full_width(
        misses in 1usize..20,
        full_beam in 8usize..64,
    ) {
        let target = 1_000_000u64;
        let mut controller = SloController::new(target, full_beam, 2);
        for _ in 0..misses {
            controller.observe(target * 10);
        }
        prop_assert!(controller.scale_pct() < 100, "misses must degrade the beam");
        // Each +25% recovery step needs 2 consecutive healthy windows;
        // from the floor that is bounded by 2 × ceil(100/25) + slack.
        for _ in 0..16 {
            controller.observe(target / 2);
        }
        prop_assert_eq!(controller.scale_pct(), 100);
        prop_assert_eq!(controller.beam_width(), full_beam);
    }
}

#[test]
fn controller_degrades_by_halving_and_reports_actions() {
    let mut controller = SloController::new(1_000, 32, 4);
    assert_eq!(controller.observe(2_000), SloAction::Degrade);
    assert_eq!(controller.scale_pct(), 50);
    assert_eq!(controller.observe(2_000), SloAction::Degrade);
    assert_eq!(controller.scale_pct(), 25);
    // Healthy windows: hold, then recover on the second.
    assert_eq!(controller.observe(500), SloAction::Hold);
    assert_eq!(controller.observe(500), SloAction::Recover);
    assert_eq!(controller.scale_pct(), 50);
    // A miss resets the healthy streak.
    assert_eq!(controller.observe(2_000), SloAction::Degrade);
    assert_eq!(controller.observe(500), SloAction::Hold);
    assert_eq!(controller.observe(2_000), SloAction::Degrade);
}

fn serving_config(users_hint: usize) -> ServingConfig {
    ServingConfig {
        c2: C2Config {
            k: 8,
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 21 },
            seed: 5,
            threads: 1,
            ..C2Config::default()
        },
        runtime: RuntimeConfig::with_workers(2),
        beam: BeamSearchConfig {
            beam_width: 16.min(users_hint),
            entry_points: 4,
            max_comparisons: 0,
        },
        rebuild_after: 0,
        ..ServingConfig::default()
    }
}

/// Engine-level equivalence: `query_batch` and the window-coalesced
/// `query_batched` answer bit-identically to `try_query` with the same
/// arguments.
#[test]
fn engine_batched_paths_match_try_query_bitwise() {
    let ds = dataset(31, 180);
    let engine = ServingEngine::build(ds.clone(), serving_config(180));
    let requests: Vec<BatchRequest> = (0..10)
        .map(|q| BatchRequest { profile: ds.profile(q * 11).to_vec(), k: 6, seed: 900 + q as u64 })
        .collect();
    let batched = engine.query_batch(&requests);
    for (request, outcome) in requests.iter().zip(batched) {
        let got = outcome.expect("no budget configured, nothing sheds");
        let single = engine.try_query(&request.profile, request.k, request.seed).unwrap();
        assert_eq!(bits(&got), bits(&single));
        assert_eq!(got.comparisons, single.comparisons);
    }

    // The shared batching window, driven from concurrent submitters.
    let mut config = serving_config(180);
    config.slo = SloConfig { batch_window_us: 2_000, batch_max: 4, ..SloConfig::default() };
    let windowed = ServingEngine::build(ds.clone(), config);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|q| {
                let engine = &windowed;
                let ds = &ds;
                scope.spawn(move || {
                    let profile = ds.profile(q * 13).to_vec();
                    let result = engine.query_batched(&profile, 6, 700 + q as u64).unwrap();
                    (profile, 700 + q as u64, result)
                })
            })
            .collect();
        for handle in handles {
            let (profile, seed, result) = handle.join().unwrap();
            let single = windowed.try_query(&profile, 6, seed).unwrap();
            assert_eq!(bits(&result), bits(&single), "windowed batch diverged");
            assert_eq!(result.comparisons, single.comparisons);
        }
    });
    assert!(windowed.stats().batches >= 1, "the window must have coalesced at least one batch");
}

/// Overload: a starvation budget sheds with typed rejections carrying a
/// retry hint — never a panic, never a silent slow query — while the
/// queries that were admitted still answer correctly.
#[test]
fn overloaded_engine_sheds_with_typed_rejections() {
    let ds = dataset(41, 150);
    let mut config = serving_config(150);
    // One comparison per second: the burst covers exactly one query's
    // worst-case charge, after which the bucket needs hours to refill.
    config.slo = SloConfig { budget_per_sec: 1, ..SloConfig::default() };
    let engine = ServingEngine::build(ds.clone(), config);

    let first = engine.try_query(ds.profile(0), 5, 1);
    assert!(first.is_ok(), "the initial burst must admit the first query");
    let mut sheds = 0;
    for q in 0..20u64 {
        match engine.try_query(ds.profile((q % 50) as u32), 5, q) {
            Ok(_) => {}
            Err(rejected) => {
                sheds += 1;
                assert!(rejected.retry_after > Duration::ZERO, "shed must carry a retry hint");
                assert!(rejected.to_string().contains("retry"), "typed error must explain itself");
            }
        }
    }
    assert!(sheds >= 19, "starvation budget admitted too much ({sheds} sheds)");
    let stats = engine.stats();
    assert_eq!(stats.shed, sheds);
    assert!(stats.admitted >= 1);

    // The batch path sheds per request, answering every slot.
    let requests: Vec<BatchRequest> = (0..4)
        .map(|q| BatchRequest { profile: ds.profile(q).to_vec(), k: 5, seed: q as u64 })
        .collect();
    let outcomes = engine.query_batch(&requests);
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(|o| o.is_err()), "every slot sheds under starvation");

    // The unmetered path is untouched by the budget.
    let unmetered = engine.query(ds.profile(1), 5, 99);
    assert_eq!(unmetered.neighbors.len(), 5);
}

/// Light load with no budget: nothing sheds, the controller holds the
/// full beam — the CI smoke contract.
#[test]
fn unbudgeted_engine_never_sheds() {
    let ds = dataset(43, 120);
    let engine = ServingEngine::build(ds.clone(), serving_config(120));
    for q in 0..30u64 {
        engine.try_query(ds.profile((q % 40) as u32), 5, q).expect("no budget, no shed");
    }
    let stats = engine.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(engine.beam_scale_pct(), 100);
}

/// An impossible SLO target forces the adaptive beam to degrade — and
/// the scale floor holds.
#[test]
fn impossible_slo_narrows_the_beam_to_its_floor_but_not_below() {
    let ds = dataset(47, 200);
    let mut config = serving_config(200);
    config.slo = SloConfig {
        target_p99_us: 1, // 1 µs p99: unattainable, every window misses
        min_beam_width: 6,
        controller_every: 16,
        ..SloConfig::default()
    };
    let engine = ServingEngine::build(ds.clone(), config);
    let mut session = engine.session();
    for q in 0..400u64 {
        let result = engine.query_with(&mut session, ds.profile((q % 100) as u32), 5, q);
        assert!(result.neighbors.len() <= 5);
    }
    let scale = engine.beam_scale_pct();
    assert!(scale < 100, "impossible SLO must degrade the beam (scale {scale}%)");
    // floor = ceil(min_beam × 100 / full_beam) = ceil(600/16)
    assert!(scale >= 38, "scale {scale}% fell below the floor");
}

/// The recall harness against a live engine: exact search scores a
/// perfect recall, and the ground-truth cache invalidates exactly when
/// the epoch's cluster content changes.
#[test]
fn recall_harness_is_exact_and_cache_tracks_cluster_hashes() {
    let ds = dataset(53, 170);
    let engine = ServingEngine::build(ds, serving_config(170));
    let truth_cfg = GroundTruthConfig { sample: 10, k: 6, seed: 77 };
    let mut cache = GroundTruthCache::new();

    let epoch = engine.current_epoch();
    let key = epoch_key(epoch.dataset(), &engine.config().c2);
    let truth = cache.get_or_compute(key, epoch.dataset(), &truth_cfg);
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // Unbudgeted exact search recalls 1.0 on every sampled query.
    let index = epoch.index();
    for (qi, &donor) in truth.queries.iter().enumerate() {
        let exact = index.exact_search(epoch.dataset().profile(donor), truth_cfg.k);
        let ids: Vec<u32> = exact.neighbors.iter().map(|n| n.user).collect();
        assert_eq!(truth.recall_of(qi, &ids), 1.0, "exact search must recall 1.0");
        assert_eq!(exact.comparisons, epoch.dataset().num_users());
    }
    // The approximate path is bounded by 1 and not degenerate.
    for (qi, &donor) in truth.queries.iter().enumerate() {
        let approx = engine.query(epoch.dataset().profile(donor), truth_cfg.k, qi as u64);
        let ids: Vec<u32> = approx.neighbors.iter().map(|n| n.user).collect();
        let recall = truth.recall_of(qi, &ids);
        assert!((0.0..=1.0).contains(&recall));
    }

    // Same epoch key → cache hit, no recompute.
    let again = cache.get_or_compute(key, epoch.dataset(), &truth_cfg);
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(again.key, truth.key);

    // An absorbed insert + publish changes cluster content hashes → the
    // key moves → exactly one new miss.
    engine.insert(vec![1, 2, 3, 4, 5], 9);
    engine.publish();
    let fresh = engine.current_epoch();
    assert!(fresh.epoch() > epoch.epoch(), "publish must swap the epoch");
    let fresh_key = epoch_key(fresh.dataset(), &engine.config().c2);
    assert_ne!(key, fresh_key, "content change must move the epoch key");
    cache.get_or_compute(fresh_key, fresh.dataset(), &truth_cfg);
    assert_eq!((cache.hits(), cache.misses()), (1, 2));

    // Re-deriving the unchanged fresh epoch's key hits again.
    let fresh_key_again = epoch_key(fresh.dataset(), &engine.config().c2);
    assert_eq!(fresh_key, fresh_key_again);
    cache.get_or_compute(fresh_key_again, fresh.dataset(), &truth_cfg);
    assert_eq!((cache.hits(), cache.misses()), (2, 2));
}
