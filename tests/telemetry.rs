//! Cross-layer telemetry tests: histogram laws (property-based), sharded
//! counter correctness under thread storms, and end-to-end presence of
//! the spans/metrics the instrumented layers promise.
//!
//! The global registry is shared by every test in this binary (and they
//! run in parallel), so the integration tests assert *presence and
//! lower bounds* on global state, and exact equalities only on local
//! `Histogram`/`Counter` instances or per-run handles they own.

use cluster_and_conquer::prelude::*;
use cnc_telemetry::{Counter, Histogram};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Histogram laws
// ---------------------------------------------------------------------

proptest! {
    /// Quantiles are monotone in `q` for any sample set.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in proptest::collection::vec(0u64..1u64 << 40, 1..200),
        qa_millis in 0u32..1000,
        qb_millis in 0u32..1000,
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let (qa, qb) = (f64::from(qa_millis) / 1000.0, f64::from(qb_millis) / 1000.0);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(hist.quantile(lo) <= hist.quantile(hi));
    }

    /// Merging two histograms is exactly equivalent to recording the
    /// concatenated sample stream into one.
    #[test]
    fn histogram_merge_equals_concatenation(
        left in proptest::collection::vec(0u64..1u64 << 40, 0..100),
        right in proptest::collection::vec(0u64..1u64 << 40, 0..100),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &s in &left {
            a.record(s);
            combined.record(s);
        }
        for &s in &right {
            b.record(s);
            combined.record(s);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), combined.count());
        prop_assert_eq!(a.sum(), combined.sum());
        prop_assert_eq!(a.min(), combined.min());
        prop_assert_eq!(a.max(), combined.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    /// Every power of two is a bucket lower bound, so a histogram holding
    /// only copies of `1 << e` reports that exact value at any quantile.
    #[test]
    fn power_of_two_samples_report_exactly(e in 0u32..63, n in 1usize..50) {
        let value = 1u64 << e;
        let hist = Histogram::new();
        for _ in 0..n {
            hist.record(value);
        }
        for q in [0.01, 0.5, 0.99, 1.0] {
            prop_assert_eq!(hist.quantile(q), value);
        }
    }

    /// The bucket a value lands in never claims a lower bound above the
    /// value, and quantiles only quantize downward within one sub-bucket.
    #[test]
    fn bucket_lower_bound_never_exceeds_value(v in 0u64..u64::MAX / 2) {
        let idx = Histogram::bucket_index(v);
        let lower = Histogram::bucket_lower_bound(idx);
        prop_assert!(lower <= v, "bucket {idx} lower bound {lower} > value {v}");
        let hist = Histogram::new();
        hist.record(v);
        prop_assert_eq!(hist.quantile(0.5), lower);
    }
}

// ---------------------------------------------------------------------
// Sharded counter under contention
// ---------------------------------------------------------------------

#[test]
fn sharded_counter_is_exact_under_thread_storm() {
    let counter = Counter::new();
    let threads = 8;
    let increments_per_thread = 50_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                for i in 0..increments_per_thread {
                    // Mix inc() and add() so both paths see contention.
                    if (t + i) % 2 == 0 {
                        counter.inc();
                    } else {
                        counter.add(1);
                    }
                }
            });
        }
    });
    assert_eq!(counter.value(), threads * increments_per_thread);
}

// ---------------------------------------------------------------------
// Cross-layer integration (presence-based: the registry is global)
// ---------------------------------------------------------------------

#[test]
fn instrumented_build_emits_spans_and_counts_comparisons() {
    let telemetry = Telemetry::global();
    telemetry.enable(true);
    let comparisons_handle = telemetry.counter("cnc_build_comparisons_total", &[]);
    let before = comparisons_handle.value();

    let dataset = SyntheticConfig::small(97).generate();
    let config = C2Config { k: 8, ..C2Config::default() };
    let result = ClusterAndConquer::new(config).build(&dataset);
    assert!(result.stats.comparisons > 0);

    // The per-run delta on our own handle must cover this build exactly
    // once (parallel tests may add more, never subtract).
    let delta = comparisons_handle.value() - before;
    assert!(
        delta >= result.stats.comparisons,
        "registry delta {delta} < build's own count {}",
        result.stats.comparisons
    );

    let summary = telemetry.span_summary();
    for stage in ["build", "build.assign", "build.local_knn"] {
        let span = summary
            .iter()
            .find(|s| s.name == stage)
            .unwrap_or_else(|| panic!("no {stage:?} span recorded"));
        assert!(span.count >= 1);
        assert!(span.total_ns > 0, "{stage} recorded zero wall time");
    }
}

#[test]
fn exports_render_after_a_real_build() {
    let telemetry = Telemetry::global();
    telemetry.enable(true);
    let dataset = SyntheticConfig::small(98).generate();
    let config = C2Config { k: 6, ..C2Config::default() };
    ClusterAndConquer::new(config).build(&dataset);

    let text = telemetry.prometheus_text();
    assert!(text.contains("cnc_build_comparisons_total"), "missing counter in:\n{text}");

    let profile = telemetry.json_profile();
    assert!(profile.contains("\"counters\""));
    assert!(profile.contains("cnc_build_comparisons_total"));
    assert_eq!(profile.matches('{').count(), profile.matches('}').count());

    let trace = telemetry.chrome_trace();
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"build\""));
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
}

#[test]
fn epoch_adoption_records_latency_and_path_counters() {
    use cluster_and_conquer::serve::AdoptedSnapshot;
    use cnc_similarity::SimilarityBackend;

    let telemetry = Telemetry::global();
    telemetry.enable(true);
    let adopt_seconds = telemetry.histogram("cnc_epoch_adopt_seconds", &[]);
    let adopt_mmap = telemetry.counter("cnc_epoch_adopt_total", &[("path", "mmap")]);
    let adopt_copy = telemetry.counter("cnc_epoch_adopt_total", &[("path", "copy")]);
    let (hist_before, mmap_before, copy_before) =
        (adopt_seconds.count(), adopt_mmap.value(), adopt_copy.value());

    let mut cfg = SyntheticConfig::small(55);
    cfg.num_users = 120;
    cfg.num_items = 100;
    let ds = cfg.generate();
    let config = ServingConfig {
        c2: C2Config {
            k: 6,
            backend: SimilarityBackend::GoldFinger { bits: 256, seed: 3 },
            threads: 1,
            ..C2Config::default()
        },
        ..ServingConfig::default()
    };
    let engine = ServingEngine::build(ds, config);
    let path = std::env::temp_dir().join(format!(
        "cnc-telemetry-adopt-{}-{:?}.snap",
        std::process::id(),
        std::thread::current().id(),
    ));
    engine.write_snapshot(&path).unwrap();

    // One adoption per load path; each must record a latency sample and
    // bump its own path counter.
    let preferred = AdoptedSnapshot::open(&path).unwrap();
    let preferred_mapped = preferred.mapped;
    engine.adopt(preferred);
    let copied = AdoptedSnapshot::load_copied(&path).unwrap();
    engine.adopt(copied);
    let _ = std::fs::remove_file(&path);

    assert!(
        adopt_seconds.count() >= hist_before + 2,
        "both adoptions must record cnc_epoch_adopt_seconds"
    );
    assert!(adopt_copy.value() > copy_before, "the copy adoption must count path=copy");
    if preferred_mapped {
        assert!(adopt_mmap.value() > mmap_before, "the mapped adoption must count path=mmap");
    }

    let text = telemetry.prometheus_text();
    assert!(text.contains("cnc_epoch_adopt_seconds"), "missing histogram in:\n{text}");
    assert!(text.contains("cnc_epoch_adopt_total"), "missing counter in:\n{text}");
    assert!(text.contains("path=\"copy\""), "missing path label in:\n{text}");
    let profile = telemetry.json_profile();
    assert!(profile.contains("cnc_epoch_adopt_total"));
}

#[test]
fn disabled_telemetry_records_no_new_spans() {
    // A private instance (not the global one): enabling/disabling the
    // global mid-test would race the integration tests above.
    let telemetry = cnc_telemetry::Telemetry::new();
    {
        let mut span = telemetry.span("never");
        span.attr("x", 1);
    }
    telemetry.counter("quiet_total", &[]).add(5);
    assert!(telemetry.span_records().is_empty());
    // Counters always count (callers gate on enabled() themselves) —
    // the *span* path is what must stay silent when disabled.
    assert_eq!(telemetry.counter("quiet_total", &[]).value(), 5);
}
