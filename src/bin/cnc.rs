//! `cnc` — command-line front end to the Cluster-and-Conquer library.
//!
//! ```text
//! cnc stats  <ratings-file>                         dataset statistics (Table-I row)
//! cnc build  <ratings-file> [options]               build a KNN graph, write edges TSV
//! cnc query  <ratings-file> <item,item,...> [opts]  KNN query for an ad-hoc profile
//!
//! common options:
//!   --algo c2|hyrec|nndescent|lsh|brute   (default c2)
//!   --k <n>            neighbourhood size          (default 30)
//!   --threads <n>      0 = all cores               (default 0)
//!   --seed <n>                                     (default 42)
//!   --raw              exact Jaccard instead of 1024-bit GoldFinger
//!   --out <path>       edges output file           (default stdout)
//!   --binarize <f>     keep ratings > f            (default 3.0)
//!   --min-profile <n>  drop users with < n ratings (default 20)
//! ```
//!
//! The ratings file holds `user item rating` triples (comma/tab/space/`::`
//! separated — MovieLens dumps work unmodified).

use cluster_and_conquer::prelude::*;
use cnc_dataset::io::{load_ratings, LoadOptions};
use cnc_similarity::SimilarityData;
use std::io::Write;
use std::process::exit;

struct Options {
    algo: String,
    k: usize,
    threads: usize,
    seed: u64,
    raw: bool,
    out: Option<String>,
    binarize: f64,
    min_profile: usize,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        algo: "c2".into(),
        k: 30,
        threads: 0,
        seed: 42,
        raw: false,
        out: None,
        binarize: 3.0,
        min_profile: 20,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--algo" => opts.algo = value("--algo")?.to_lowercase(),
            "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--raw" => opts.raw = true,
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--binarize" => {
                opts.binarize =
                    value("--binarize")?.parse().map_err(|e| format!("--binarize: {e}"))?
            }
            "--min-profile" => {
                opts.min_profile =
                    value("--min-profile")?.parse().map_err(|e| format!("--min-profile: {e}"))?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => opts.positional.push(positional.to_owned()),
        }
    }
    Ok(opts)
}

fn load(path: &str, opts: &Options) -> Dataset {
    let load_opts = LoadOptions { binarize_above: opts.binarize, min_profile: opts.min_profile };
    match load_ratings(path, load_opts) {
        Ok(ds) => ds,
        Err(err) => {
            eprintln!("cnc: cannot load {path}: {err}");
            exit(1);
        }
    }
}

fn backend(opts: &Options) -> SimilarityBackend {
    if opts.raw {
        SimilarityBackend::Raw
    } else {
        SimilarityBackend::GoldFinger { bits: 1024, seed: opts.seed ^ 0x601D }
    }
}

fn build_graph(ds: &Dataset, opts: &Options) -> (KnnGraph, u64, f64) {
    let start = std::time::Instant::now();
    let sim = SimilarityData::build(backend(opts), ds);
    let ctx =
        BuildContext { dataset: ds, sim: &sim, k: opts.k, threads: opts.threads, seed: opts.seed };
    let c2 = ClusterAndConquer::new(C2Config { seed: opts.seed, ..C2Config::default() });
    let hyrec = Hyrec::default();
    let nnd = NnDescent::default();
    let lsh = Lsh::default();
    let algo: &dyn KnnAlgorithm = match opts.algo.as_str() {
        "c2" => &c2,
        "hyrec" => &hyrec,
        "nndescent" => &nnd,
        "lsh" => &lsh,
        "brute" => &BruteForce,
        other => {
            eprintln!("cnc: unknown algorithm {other:?} (c2|hyrec|nndescent|lsh|brute)");
            exit(2);
        }
    };
    let graph = algo.build(&ctx);
    (graph, sim.comparisons(), start.elapsed().as_secs_f64())
}

fn cmd_stats(opts: &Options) {
    let Some(path) = opts.positional.first() else {
        eprintln!("usage: cnc stats <ratings-file>");
        exit(2);
    };
    let ds = load(path, opts);
    println!("{}", DatasetStats::compute(&ds));
}

fn cmd_build(opts: &Options) {
    let Some(path) = opts.positional.first() else {
        eprintln!("usage: cnc build <ratings-file> [options]");
        exit(2);
    };
    let ds = load(path, opts);
    eprintln!("loaded: {}", DatasetStats::compute(&ds));
    let (graph, comparisons, seconds) = build_graph(&ds, opts);
    eprintln!("built {} graph in {seconds:.2}s ({comparisons} similarity computations)", opts.algo);
    let mut out: Box<dyn Write> = match &opts.out {
        Some(path) => {
            Box::new(std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cnc: cannot create {path}: {e}");
                exit(1);
            })))
        }
        None => Box::new(std::io::stdout().lock()),
    };
    for (u, list) in graph.iter() {
        for nb in list.sorted() {
            writeln!(out, "{u}\t{}\t{:.6}", nb.user, nb.sim).expect("write edge");
        }
    }
}

fn cmd_query(opts: &Options) {
    let (Some(path), Some(items)) = (opts.positional.first(), opts.positional.get(1)) else {
        eprintln!("usage: cnc query <ratings-file> <item,item,...> [options]");
        exit(2);
    };
    let ds = load(path, opts);
    let mut profile: Vec<u32> = items
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("cnc: bad item id {s:?}");
                exit(2);
            })
        })
        .collect();
    profile.sort_unstable();
    profile.dedup();
    let (graph, _, _) = build_graph(&ds, opts);
    let index = QueryIndex::new(&ds, &graph);
    let config =
        BeamSearchConfig { beam_width: (2 * opts.k).max(32), ..BeamSearchConfig::default() };
    let result = index.search(&profile, opts.k, &config, opts.seed);
    println!("# {} comparisons", result.comparisons);
    for nb in result.neighbors {
        println!("{}\t{:.6}", nb.user, nb.sim);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("usage: cnc <stats|build|query> [args] (see --help in source docs)");
        exit(2);
    };
    let opts = match parse_options(&args[1..]) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("cnc: {msg}");
            exit(2);
        }
    };
    match command.as_str() {
        "stats" => cmd_stats(&opts),
        "build" => cmd_build(&opts),
        "query" => cmd_query(&opts),
        other => {
            eprintln!("cnc: unknown command {other:?} (stats|build|query)");
            exit(2);
        }
    }
}
