//! Cluster-and-Conquer: fast KNN-graph construction via FastRandomHash
//! pre-clustering.
//!
//! This is the facade crate of the reproduction of *Cluster-and-Conquer:
//! When Randomness Meets Graph Locality* (Giakkoupis, Kermarrec, Ruas,
//! Taïani — ICDE 2021). It re-exports the public API of the workspace
//! crates; see `README.md` for an overview and `examples/quickstart.rs` for
//! a 20-line end-to-end run.
//!
//! ```
//! use cluster_and_conquer::prelude::*;
//!
//! let dataset = SyntheticConfig::small(42).generate();
//! let config = C2Config { k: 8, ..C2Config::default() };
//! let result = ClusterAndConquer::new(config).build(&dataset);
//! assert_eq!(result.graph.num_users(), dataset.num_users());
//! ```

pub use cnc_baselines as baselines;
pub use cnc_core as core;
pub use cnc_dataset as dataset;
pub use cnc_distrib as distrib;
pub use cnc_eval as eval;
pub use cnc_faults as faults;
pub use cnc_graph as graph;
pub use cnc_query as query;
pub use cnc_runtime as runtime;
pub use cnc_serve as serve;
pub use cnc_similarity as similarity;
pub use cnc_telemetry as telemetry;
pub use cnc_threadpool as threadpool;

/// Commonly used items, importable with one `use`.
pub mod prelude {
    pub use cnc_baselines::{BruteForce, BuildContext, Hyrec, KnnAlgorithm, Lsh, NnDescent};
    pub use cnc_core::{BuildPlan, C2Config, ClusterAndConquer, ClusterCache, RebuildStats};
    pub use cnc_dataset::{
        CrossValidation, Dataset, DatasetProfile, DatasetStats, SyntheticConfig,
    };
    pub use cnc_distrib::{DistribConfig, DistribPublisher, DistribRuntime, Transport};
    pub use cnc_eval::{quality, KnnClassifier, Recommender};
    pub use cnc_faults::{FaultPlan, Faults};
    pub use cnc_graph::KnnGraph;
    pub use cnc_query::{BeamSearchConfig, DynamicIndex, QueryIndex};
    pub use cnc_runtime::{Runtime, RuntimeConfig, ShardedBuild, SpillMode, StealPolicy};
    pub use cnc_serve::{ServingConfig, ServingEngine, Snapshot};
    pub use cnc_similarity::{GoldFinger, Jaccard, SimilarityBackend};
    pub use cnc_telemetry::Telemetry;
}
