//! Batched kernel → neighbour-list plumbing.
//!
//! The similarity crate's [`cnc_similarity::kernel`] layer streams raw
//! `(i, j, sim)` triples; this module lands them in bounded
//! [`NeighborList`]s — the piece that cannot live in `cnc-similarity`
//! because the graph crate sits above it in the dependency order.

use crate::neighbors::NeighborList;
use cnc_dataset::UserId;
use cnc_similarity::kernel::{pairwise, SimKernel};

/// Brute-force a cluster through a monomorphized kernel: every unordered
/// pair of kernel rows is computed once and inserted symmetrically into
/// the positionally-aligned `lists` (`lists[i]` belongs to `users[i]`,
/// kernel row `i` is `users[i]`).
///
/// Computes exactly `len·(len−1)/2` similarities and counts none of them —
/// the caller flushes [`cnc_similarity::kernel::pair_count`] in one
/// `add_comparisons`.
///
/// # Panics
/// Panics (in debug builds) if `users` and `lists` disagree with the
/// kernel's row count.
pub fn pairwise_into<K: SimKernel>(kernel: &K, users: &[UserId], lists: &mut [NeighborList]) {
    debug_assert_eq!(kernel.len(), users.len());
    debug_assert_eq!(kernel.len(), lists.len());
    pairwise(kernel, |i, j, s| {
        lists[i as usize].insert(users[j as usize], s);
        lists[j as usize].insert(users[i as usize], s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::Dataset;
    use cnc_similarity::kernel::{ClusterTile, RawKernel, Remap};
    use cnc_similarity::{GoldFinger, Jaccard};

    fn dataset() -> Dataset {
        Dataset::from_profiles(
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 4],
                vec![0, 1, 5, 6],
                vec![7, 8, 9],
                vec![7, 8, 9, 10],
                vec![2, 3, 7],
            ],
            0,
        )
    }

    #[test]
    fn matches_per_pair_inserts_on_raw_kernel() {
        let ds = dataset();
        let users: Vec<UserId> = vec![5, 0, 3, 1];
        let kernel = Remap::new(&users, RawKernel::new(&ds));
        let mut batched: Vec<NeighborList> =
            (0..users.len()).map(|_| NeighborList::new(2)).collect();
        pairwise_into(&kernel, &users, &mut batched);

        let mut reference: Vec<NeighborList> =
            (0..users.len()).map(|_| NeighborList::new(2)).collect();
        for i in 0..users.len() {
            for j in (i + 1)..users.len() {
                let s = Jaccard::similarity(ds.profile(users[i]), ds.profile(users[j])) as f32;
                reference[i].insert(users[j], s);
                reference[j].insert(users[i], s);
            }
        }
        for (b, r) in batched.iter().zip(&reference) {
            assert_eq!(b.sorted(), r.sorted());
        }
    }

    #[test]
    fn works_over_a_gathered_tile() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 1024, 3);
        let users: Vec<UserId> = vec![0, 1, 2, 4];
        let tile = ClusterTile::gather(&gf, &users);
        let mut lists: Vec<NeighborList> = (0..users.len()).map(|_| NeighborList::new(3)).collect();
        pairwise_into(&tile.kernel::<16>(), &users, &mut lists);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 3);
            for nb in list.iter() {
                assert!(users.contains(&nb.user));
                assert_ne!(nb.user, users[i]);
                let expect = gf.estimate(users[i], nb.user) as f32;
                assert_eq!(nb.sim.to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn trivial_clusters_are_no_ops() {
        let ds = dataset();
        let users: Vec<UserId> = vec![2];
        let kernel = Remap::new(&users, RawKernel::new(&ds));
        let mut lists = vec![NeighborList::new(2)];
        pairwise_into(&kernel, &users, &mut lists);
        assert!(lists[0].is_empty());
        let empty: Vec<UserId> = Vec::new();
        let kernel = Remap::new(&empty, RawKernel::new(&ds));
        pairwise_into(&kernel, &empty, &mut []);
    }
}
