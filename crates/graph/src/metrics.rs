//! The paper's quality metrics (Eq. (1) and (2), §II-A).
//!
//! `avg_sim(Ĝ)` averages the **exact** Jaccard similarity over all `k·n`
//! edge slots of the graph; `quality(Ĝ) = avg_sim(Ĝ) / avg_sim(G_exact)`.
//! The exact similarity is always recomputed from raw profiles here, even
//! when the graph was *built* with GoldFinger estimates — quality measures
//! how good the selected neighbours truly are, not how good the estimator
//! believed them to be.

use crate::knn_graph::KnnGraph;
use cnc_dataset::Dataset;
use cnc_similarity::Jaccard;

/// Eq. (1): the average exact similarity of a graph's edges over `k·n`
/// slots (missing edges count as similarity 0).
pub fn avg_exact_similarity(graph: &KnnGraph, dataset: &Dataset) -> f64 {
    let n = graph.num_users();
    if n == 0 {
        return 0.0;
    }
    assert_eq!(n, dataset.num_users(), "graph and dataset must cover the same users");
    let total: f64 = graph
        .iter()
        .map(|(u, list)| {
            list.iter()
                .map(|nb| Jaccard::similarity(dataset.profile(u), dataset.profile(nb.user)))
                .sum::<f64>()
        })
        .sum();
    total / (graph.k() as f64 * n as f64)
}

/// Eq. (2): the quality ratio of an approximate graph against an exact one.
///
/// A value close to 1 means the approximation can replace the exact graph;
/// values slightly above 1 are possible when `k·n` slots are not all filled
/// in the exact graph, or through ties.
pub fn quality(approx: &KnnGraph, exact: &KnnGraph, dataset: &Dataset) -> f64 {
    let exact_avg = avg_exact_similarity(exact, dataset);
    if exact_avg == 0.0 {
        return if avg_exact_similarity(approx, dataset) == 0.0 { 1.0 } else { f64::INFINITY };
    }
    avg_exact_similarity(approx, dataset) / exact_avg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_profiles(
            vec![
                vec![0, 1, 2, 3], // u0
                vec![0, 1, 2, 4], // u1: J(0,1) = 3/5
                vec![10, 11],     // u2: unrelated
                vec![10, 11],     // u3: twin of u2
            ],
            0,
        )
    }

    #[test]
    fn avg_similarity_of_perfect_graph() {
        let ds = dataset();
        let mut g = KnnGraph::new(4, 1);
        g.insert(0, 1, 0.0); // stored sims are ignored by the metric
        g.insert(1, 0, 0.0);
        g.insert(2, 3, 0.0);
        g.insert(3, 2, 0.0);
        let expected = (0.6 + 0.6 + 1.0 + 1.0) / 4.0;
        assert!((avg_exact_similarity(&g, &ds) - expected).abs() < 1e-12);
    }

    #[test]
    fn missing_edges_count_as_zero() {
        let ds = dataset();
        let mut g = KnnGraph::new(4, 2);
        g.insert(0, 1, 0.0);
        // One edge with J = 0.6 over k·n = 8 slots.
        assert!((avg_exact_similarity(&g, &ds) - 0.6 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn quality_of_exact_graph_is_one() {
        let ds = dataset();
        let mut exact = KnnGraph::new(4, 1);
        exact.insert(0, 1, 0.6);
        exact.insert(1, 0, 0.6);
        exact.insert(2, 3, 1.0);
        exact.insert(3, 2, 1.0);
        assert!((quality(&exact, &exact, &ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worse_graph_has_lower_quality() {
        let ds = dataset();
        let mut exact = KnnGraph::new(4, 1);
        exact.insert(0, 1, 0.6);
        exact.insert(1, 0, 0.6);
        exact.insert(2, 3, 1.0);
        exact.insert(3, 2, 1.0);
        let mut bad = KnnGraph::new(4, 1);
        bad.insert(0, 2, 0.0); // J(u0, u2) = 0
        bad.insert(1, 3, 0.0);
        bad.insert(2, 0, 0.0);
        bad.insert(3, 1, 0.0);
        assert_eq!(quality(&bad, &exact, &ds), 0.0);
        let mut half = KnnGraph::new(4, 1);
        half.insert(0, 1, 0.0);
        half.insert(1, 0, 0.0);
        half.insert(2, 0, 0.0);
        half.insert(3, 1, 0.0);
        let q = quality(&half, &exact, &ds);
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    fn degenerate_zero_similarity_reference() {
        let ds = Dataset::from_profiles(vec![vec![0], vec![1]], 0);
        let mut exact = KnnGraph::new(2, 1);
        exact.insert(0, 1, 0.0);
        exact.insert(1, 0, 0.0);
        let approx = exact.clone();
        assert_eq!(quality(&approx, &exact, &ds), 1.0);
    }

    #[test]
    fn empty_graph_metric_is_zero() {
        let ds = Dataset::from_profiles(vec![], 0);
        let g = KnnGraph::new(0, 3);
        assert_eq!(avg_exact_similarity(&g, &ds), 0.0);
    }
}
