//! The KNN-graph container.

use crate::neighbors::{Neighbor, NeighborList};
use cnc_dataset::UserId;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// An approximate (or exact) KNN graph: one bounded [`NeighborList`] per
/// user.
#[derive(Clone, Debug)]
pub struct KnnGraph {
    lists: Vec<NeighborList>,
    k: usize,
}

impl KnnGraph {
    /// Creates an empty graph over `n` users with neighbourhood bound `k`.
    pub fn new(n: usize, k: usize) -> Self {
        KnnGraph { lists: vec![NeighborList::new(k); n], k }
    }

    /// The neighbourhood bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.lists.len()
    }

    /// The neighbour list of `user`.
    #[inline]
    pub fn neighbors(&self, user: UserId) -> &NeighborList {
        &self.lists[user as usize]
    }

    /// Mutable access to the neighbour list of `user`.
    #[inline]
    pub fn neighbors_mut(&mut self, user: UserId) -> &mut NeighborList {
        &mut self.lists[user as usize]
    }

    /// Offers the directed edge `user → neighbor`; returns `true` on change.
    #[inline]
    pub fn insert(&mut self, user: UserId, neighbor: UserId, sim: f32) -> bool {
        debug_assert_ne!(user, neighbor, "self-loops are not KNN edges");
        self.lists[user as usize].insert(neighbor, sim)
    }

    /// Total number of directed edges currently stored (≤ `k·n`).
    pub fn num_edges(&self) -> usize {
        self.lists.iter().map(NeighborList::len).sum()
    }

    /// Average of the *stored* similarities over `k·n` slots — Eq. (1) with
    /// missing edges contributing 0. For the paper's quality ratio the
    /// similarities are recomputed exactly; see [`crate::metrics`].
    pub fn avg_stored_similarity(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: f64 = self.lists.iter().map(NeighborList::sim_sum).sum();
        total / (self.k as f64 * self.lists.len() as f64)
    }

    /// Initializes every user with `k` distinct random non-self neighbours,
    /// scoring each edge with `sim` — the "initial random k-degree graph"
    /// every greedy competitor starts from (§I).
    ///
    /// The `sim` closure is the instrumented oracle, so the initial
    /// similarity computations count toward the algorithm's cost, as in the
    /// paper's implementation.
    pub fn random_init<F: FnMut(UserId, UserId) -> f32>(
        n: usize,
        k: usize,
        seed: u64,
        mut sim: F,
    ) -> Self {
        let mut graph = KnnGraph::new(n, k);
        if n <= 1 {
            return graph;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let degree = k.min(n - 1);
        for u in 0..n as u32 {
            while graph.lists[u as usize].len() < degree {
                let v = rng.random_range(0..n as u32);
                if v != u && !graph.lists[u as usize].contains(v) {
                    let s = sim(u, v);
                    graph.lists[u as usize].insert(v, s);
                }
            }
        }
        graph
    }

    /// Merges another graph into this one user-by-user (Algorithm 3 over
    /// whole graphs); returns the number of list updates.
    pub fn merge(&mut self, other: &KnnGraph) -> usize {
        assert_eq!(self.num_users(), other.num_users(), "graphs must cover the same users");
        self.lists.iter_mut().zip(other.lists.iter()).map(|(mine, theirs)| mine.merge(theirs)).sum()
    }

    /// Reverse adjacency: for every user, who points *to* them. NNDescent
    /// explores both directions of the neighbour relation.
    pub fn reverse(&self) -> Vec<Vec<UserId>> {
        let mut rev: Vec<Vec<UserId>> = vec![Vec::new(); self.lists.len()];
        for (u, list) in self.lists.iter().enumerate() {
            for n in list.iter() {
                rev[n.user as usize].push(u as UserId);
            }
        }
        rev
    }

    /// Iterates `(user, &list)` in user order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &NeighborList)> + '_ {
        self.lists.iter().enumerate().map(|(u, l)| (u as UserId, l))
    }

    /// Appends a new user with an empty neighbourhood; returns her id.
    /// Supports online growth (see `cnc-query::DynamicIndex`).
    pub fn add_user(&mut self) -> UserId {
        self.lists.push(NeighborList::new(self.k));
        (self.lists.len() - 1) as UserId
    }

    /// The best (most similar) neighbour of `user`, if any.
    pub fn best_neighbor(&self, user: UserId) -> Option<Neighbor> {
        self.lists[user as usize]
            .iter()
            .copied()
            .max_by(|a, b| a.sim.partial_cmp(&b.sim).unwrap().then(b.user.cmp(&a.user)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = KnnGraph::new(5, 3);
        assert_eq!(g.num_users(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_stored_similarity(), 0.0);
    }

    #[test]
    fn insert_and_query() {
        let mut g = KnnGraph::new(3, 2);
        assert!(g.insert(0, 1, 0.5));
        assert!(g.insert(0, 2, 0.7));
        assert!(!g.insert(0, 1, 0.5));
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.best_neighbor(0).unwrap().user, 2);
    }

    #[test]
    fn random_init_gives_k_distinct_non_self_neighbors() {
        let g = KnnGraph::random_init(50, 5, 7, |_, _| 0.0);
        for (u, list) in g.iter() {
            assert_eq!(list.len(), 5);
            assert!(!list.contains(u), "self loop at {u}");
            let mut ids: Vec<u32> = list.iter().map(|n| n.user).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "duplicate neighbours at {u}");
        }
    }

    #[test]
    fn random_init_caps_degree_for_tiny_populations() {
        let g = KnnGraph::random_init(3, 10, 1, |_, _| 0.0);
        for (_, list) in g.iter() {
            assert_eq!(list.len(), 2);
        }
    }

    #[test]
    fn random_init_counts_similarity_calls() {
        let mut calls = 0u32;
        let _ = KnnGraph::random_init(20, 4, 3, |_, _| {
            calls += 1;
            0.0
        });
        assert!(calls >= 80, "each retained edge needs one similarity call");
    }

    #[test]
    fn random_init_is_deterministic() {
        let a = KnnGraph::random_init(30, 4, 11, |u, v| (u + v) as f32);
        let b = KnnGraph::random_init(30, 4, 11, |u, v| (u + v) as f32);
        for u in 0..30u32 {
            assert_eq!(a.neighbors(u).sorted(), b.neighbors(u).sorted());
        }
    }

    #[test]
    fn merge_unions_neighborhoods() {
        let mut a = KnnGraph::new(2, 2);
        a.insert(0, 1, 0.3);
        let mut b = KnnGraph::new(2, 2);
        b.insert(0, 1, 0.3);
        b.insert(1, 0, 0.9);
        let updates = a.merge(&b);
        assert_eq!(updates, 1);
        assert_eq!(a.num_edges(), 2);
    }

    #[test]
    fn reverse_adjacency_inverts_edges() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(0, 1, 0.5);
        g.insert(2, 1, 0.4);
        g.insert(1, 0, 0.5);
        let rev = g.reverse();
        assert_eq!(rev[1], vec![0, 2]);
        assert_eq!(rev[0], vec![1]);
        assert!(rev[2].is_empty());
    }

    #[test]
    fn avg_stored_similarity_divides_by_k_times_n() {
        let mut g = KnnGraph::new(2, 2);
        g.insert(0, 1, 1.0);
        // One edge of sim 1.0 over k·n = 4 slots.
        assert!((g.avg_stored_similarity() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same users")]
    fn merging_mismatched_graphs_panics() {
        let mut a = KnnGraph::new(2, 2);
        let b = KnnGraph::new(3, 2);
        a.merge(&b);
    }
}
