//! The KNN-graph container.

use crate::neighbors::{Neighbor, NeighborList, Neighbors};
use cnc_dataset::{Storage, UserId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The graph's backing storage: every construction path builds owned
/// per-user lists; the zero-copy snapshot path borrows a flat CSR
/// (offsets + heap-ordered entries) straight out of a mapped file. Reads
/// go through [`Neighbors`] views either way; any mutation promotes the
/// CSR to owned lists first (copy-on-write).
#[derive(Clone, Debug)]
enum Repr {
    /// One bounded heap per user (every build/mutation path).
    Lists(Vec<NeighborList>),
    /// Flat CSR: `offsets[u]..offsets[u + 1]` delimits user `u`'s entries
    /// in heap order. Validated at construction (see
    /// [`KnnGraph::from_csr_storage`]), so views uphold every
    /// [`NeighborList`] invariant.
    Csr { offsets: Storage<u64>, entries: Storage<Neighbor> },
}

/// An approximate (or exact) KNN graph: one bounded neighbour list per
/// user, stored owned or borrowed from a mapped snapshot (see [`Repr`]).
#[derive(Clone, Debug)]
pub struct KnnGraph {
    repr: Repr,
    k: usize,
}

impl KnnGraph {
    /// Creates an empty graph over `n` users with neighbourhood bound `k`.
    pub fn new(n: usize, k: usize) -> Self {
        KnnGraph { repr: Repr::Lists(vec![NeighborList::new(k); n]), k }
    }

    /// Assembles a graph borrowing (or owning) a flat CSR — the zero-copy
    /// snapshot loader's entry point. The parts come from an untrusted
    /// file, so every neighbour-list invariant is checked here, in one
    /// streaming pass with **no allocation**: offsets monotone and
    /// bounded, per-user entry counts ≤ `k`, neighbour ids in range and
    /// non-self, similarities non-NaN, users distinct within a list, and
    /// the heap invariant itself. On success, views over the CSR behave
    /// identically to views over lists rebuilt via
    /// [`NeighborList::from_heap_order`].
    pub fn from_csr_storage(
        k: usize,
        offsets: Storage<u64>,
        entries: Storage<Neighbor>,
    ) -> Result<KnnGraph, String> {
        if k == 0 {
            return Err("neighbourhood size k must be positive".into());
        }
        let Some((&first, rest)) = offsets.split_first() else {
            return Err("offsets must hold at least the leading 0".into());
        };
        if first != 0 {
            return Err("offsets must start at 0".into());
        }
        let num_users = rest.len();
        let total = entries.len() as u64;
        let mut at = 0u64;
        for (u, &end) in rest.iter().enumerate() {
            if end < at {
                return Err(format!("offsets decrease at user {u}"));
            }
            if end > total {
                return Err(format!("offsets of user {u} run past {total} entries"));
            }
            let list = &entries[at as usize..end as usize];
            if list.len() > k {
                return Err(format!(
                    "user {u} stores {} entries over the bound k = {k}",
                    list.len()
                ));
            }
            for (i, n) in list.iter().enumerate() {
                if n.user as usize >= num_users {
                    return Err(format!("user {u} references neighbour {} out of range", n.user));
                }
                if n.user as usize == u {
                    return Err(format!("user {u} lists a self-loop"));
                }
                if n.sim.is_nan() {
                    return Err(format!("neighbour {} of user {u} has a NaN similarity", n.user));
                }
                if list[..i].iter().any(|b| b.user == n.user) {
                    return Err(format!("user {} appears twice in user {u}'s list", n.user));
                }
                if i > 0 {
                    // Heap invariant (min at root, `worse_than` order):
                    // child not worse than parent.
                    let parent = list[(i - 1) / 2];
                    let worse = (n.sim, parent.user) < (parent.sim, n.user);
                    if worse {
                        return Err(format!("user {u}'s entries are not in heap order"));
                    }
                }
            }
            at = end;
        }
        if at != total {
            return Err(format!("offsets cover {at} of {total} entries"));
        }
        Ok(KnnGraph { repr: Repr::Csr { offsets, entries }, k })
    }

    /// True when the graph borrows shared (e.g. memory-mapped) storage —
    /// the structural predicate zero-copy tests assert on.
    pub fn is_shared(&self) -> bool {
        match &self.repr {
            Repr::Lists(_) => false,
            Repr::Csr { offsets, entries } => offsets.is_shared() || entries.is_shared(),
        }
    }

    /// Promotes a CSR-backed graph to owned per-user lists (no-op for an
    /// already-owned graph) — the copy-on-write step in front of every
    /// mutating method.
    fn make_owned(&mut self) -> &mut Vec<NeighborList> {
        if let Repr::Csr { .. } = self.repr {
            let lists: Vec<NeighborList> = self.iter().map(|(_, view)| view.to_list()).collect();
            self.repr = Repr::Lists(lists);
        }
        match &mut self.repr {
            Repr::Lists(lists) => lists,
            Repr::Csr { .. } => unreachable!("promoted above"),
        }
    }

    /// The neighbourhood bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        match &self.repr {
            Repr::Lists(lists) => lists.len(),
            Repr::Csr { offsets, .. } => offsets.len() - 1,
        }
    }

    /// A borrowed view of `user`'s neighbour list (heap order).
    #[inline]
    pub fn neighbors(&self, user: UserId) -> Neighbors<'_> {
        match &self.repr {
            Repr::Lists(lists) => lists[user as usize].as_view(),
            Repr::Csr { offsets, entries } => {
                let u = user as usize;
                Neighbors::new(&entries[offsets[u] as usize..offsets[u + 1] as usize], self.k)
            }
        }
    }

    /// Mutable access to the neighbour list of `user` (copy-on-write for
    /// a CSR-backed graph).
    #[inline]
    pub fn neighbors_mut(&mut self, user: UserId) -> &mut NeighborList {
        &mut self.make_owned()[user as usize]
    }

    /// Offers the directed edge `user → neighbor`; returns `true` on change.
    #[inline]
    pub fn insert(&mut self, user: UserId, neighbor: UserId, sim: f32) -> bool {
        debug_assert_ne!(user, neighbor, "self-loops are not KNN edges");
        self.neighbors_mut(user).insert(neighbor, sim)
    }

    /// Total number of directed edges currently stored (≤ `k·n`).
    pub fn num_edges(&self) -> usize {
        match &self.repr {
            Repr::Lists(lists) => lists.iter().map(NeighborList::len).sum(),
            Repr::Csr { entries, .. } => entries.len(),
        }
    }

    /// Average of the *stored* similarities over `k·n` slots — Eq. (1) with
    /// missing edges contributing 0. For the paper's quality ratio the
    /// similarities are recomputed exactly; see [`crate::metrics`].
    pub fn avg_stored_similarity(&self) -> f64 {
        let n = self.num_users();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = self.iter().map(|(_, view)| view.sim_sum()).sum();
        total / (self.k as f64 * n as f64)
    }

    /// Initializes every user with `k` distinct random non-self neighbours,
    /// scoring each edge with `sim` — the "initial random k-degree graph"
    /// every greedy competitor starts from (§I).
    ///
    /// The `sim` closure is the instrumented oracle, so the initial
    /// similarity computations count toward the algorithm's cost, as in the
    /// paper's implementation.
    pub fn random_init<F: FnMut(UserId, UserId) -> f32>(
        n: usize,
        k: usize,
        seed: u64,
        mut sim: F,
    ) -> Self {
        let mut graph = KnnGraph::new(n, k);
        if n <= 1 {
            return graph;
        }
        let lists = graph.make_owned();
        let mut rng = SmallRng::seed_from_u64(seed);
        let degree = k.min(n - 1);
        for u in 0..n as u32 {
            while lists[u as usize].len() < degree {
                let v = rng.random_range(0..n as u32);
                if v != u && !lists[u as usize].contains(v) {
                    let s = sim(u, v);
                    lists[u as usize].insert(v, s);
                }
            }
        }
        graph
    }

    /// Merges another graph into this one user-by-user (Algorithm 3 over
    /// whole graphs); returns the number of list updates.
    pub fn merge(&mut self, other: &KnnGraph) -> usize {
        assert_eq!(self.num_users(), other.num_users(), "graphs must cover the same users");
        let lists = self.make_owned();
        other.iter().map(|(u, theirs)| lists[u as usize].merge_entries(theirs.as_slice())).sum()
    }

    /// Reverse adjacency: for every user, who points *to* them. NNDescent
    /// explores both directions of the neighbour relation.
    pub fn reverse(&self) -> Vec<Vec<UserId>> {
        let mut rev: Vec<Vec<UserId>> = vec![Vec::new(); self.num_users()];
        for (u, view) in self.iter() {
            for n in view.iter() {
                rev[n.user as usize].push(u);
            }
        }
        rev
    }

    /// Iterates `(user, view)` in user order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, Neighbors<'_>)> + '_ {
        (0..self.num_users() as UserId).map(move |u| (u, self.neighbors(u)))
    }

    /// Appends a new user with an empty neighbourhood; returns her id.
    /// Supports online growth (see `cnc-query::DynamicIndex`).
    pub fn add_user(&mut self) -> UserId {
        let k = self.k;
        let lists = self.make_owned();
        lists.push(NeighborList::new(k));
        (lists.len() - 1) as UserId
    }

    /// The best (most similar) neighbour of `user`, if any.
    pub fn best_neighbor(&self, user: UserId) -> Option<Neighbor> {
        self.neighbors(user)
            .iter()
            .copied()
            .max_by(|a, b| a.sim.partial_cmp(&b.sim).unwrap().then(b.user.cmp(&a.user)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = KnnGraph::new(5, 3);
        assert_eq!(g.num_users(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_stored_similarity(), 0.0);
    }

    #[test]
    fn insert_and_query() {
        let mut g = KnnGraph::new(3, 2);
        assert!(g.insert(0, 1, 0.5));
        assert!(g.insert(0, 2, 0.7));
        assert!(!g.insert(0, 1, 0.5));
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.best_neighbor(0).unwrap().user, 2);
    }

    #[test]
    fn random_init_gives_k_distinct_non_self_neighbors() {
        let g = KnnGraph::random_init(50, 5, 7, |_, _| 0.0);
        for (u, list) in g.iter() {
            assert_eq!(list.len(), 5);
            assert!(!list.contains(u), "self loop at {u}");
            let mut ids: Vec<u32> = list.iter().map(|n| n.user).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "duplicate neighbours at {u}");
        }
    }

    #[test]
    fn random_init_caps_degree_for_tiny_populations() {
        let g = KnnGraph::random_init(3, 10, 1, |_, _| 0.0);
        for (_, list) in g.iter() {
            assert_eq!(list.len(), 2);
        }
    }

    #[test]
    fn random_init_counts_similarity_calls() {
        let mut calls = 0u32;
        let _ = KnnGraph::random_init(20, 4, 3, |_, _| {
            calls += 1;
            0.0
        });
        assert!(calls >= 80, "each retained edge needs one similarity call");
    }

    #[test]
    fn random_init_is_deterministic() {
        let a = KnnGraph::random_init(30, 4, 11, |u, v| (u + v) as f32);
        let b = KnnGraph::random_init(30, 4, 11, |u, v| (u + v) as f32);
        for u in 0..30u32 {
            assert_eq!(a.neighbors(u).sorted(), b.neighbors(u).sorted());
        }
    }

    #[test]
    fn merge_unions_neighborhoods() {
        let mut a = KnnGraph::new(2, 2);
        a.insert(0, 1, 0.3);
        let mut b = KnnGraph::new(2, 2);
        b.insert(0, 1, 0.3);
        b.insert(1, 0, 0.9);
        let updates = a.merge(&b);
        assert_eq!(updates, 1);
        assert_eq!(a.num_edges(), 2);
    }

    #[test]
    fn reverse_adjacency_inverts_edges() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(0, 1, 0.5);
        g.insert(2, 1, 0.4);
        g.insert(1, 0, 0.5);
        let rev = g.reverse();
        assert_eq!(rev[1], vec![0, 2]);
        assert_eq!(rev[0], vec![1]);
        assert!(rev[2].is_empty());
    }

    #[test]
    fn avg_stored_similarity_divides_by_k_times_n() {
        let mut g = KnnGraph::new(2, 2);
        g.insert(0, 1, 1.0);
        // One edge of sim 1.0 over k·n = 4 slots.
        assert!((g.avg_stored_similarity() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same users")]
    fn merging_mismatched_graphs_panics() {
        let mut a = KnnGraph::new(2, 2);
        let b = KnnGraph::new(3, 2);
        a.merge(&b);
    }

    /// Flattens a graph into the CSR parts `from_csr_storage` consumes.
    fn to_csr(g: &KnnGraph) -> (Vec<u64>, Vec<Neighbor>) {
        let mut offsets = vec![0u64];
        let mut entries = Vec::new();
        for (_, view) in g.iter() {
            entries.extend(view.iter().copied());
            offsets.push(entries.len() as u64);
        }
        (offsets, entries)
    }

    fn sample_graph() -> KnnGraph {
        KnnGraph::random_init(40, 4, 21, |u, v| ((u * 31 + v) % 97) as f32 / 97.0)
    }

    #[test]
    fn csr_round_trip_is_bit_identical() {
        let g = sample_graph();
        let (offsets, entries) = to_csr(&g);
        let csr = KnnGraph::from_csr_storage(g.k(), offsets.into(), entries.into()).unwrap();
        assert_eq!(csr.num_users(), g.num_users());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert!(!csr.is_shared(), "owned vectors are not shared storage");
        for (u, view) in g.iter() {
            // Identical heap order, not merely identical sorted content.
            assert_eq!(
                view.iter().collect::<Vec<_>>(),
                csr.neighbors(u).iter().collect::<Vec<_>>()
            );
            assert_eq!(view.sorted(), csr.neighbors(u).sorted());
        }
    }

    #[test]
    fn csr_mutation_promotes_to_owned_lists() {
        let g = sample_graph();
        let (offsets, entries) = to_csr(&g);
        let mut csr = KnnGraph::from_csr_storage(g.k(), offsets.into(), entries.into()).unwrap();
        let added = csr.add_user();
        assert_eq!(added as usize, g.num_users());
        csr.insert(added, 0, 0.5);
        assert!(csr.neighbors(added).contains(0));
        // The promoted lists still match the original graph.
        for (u, view) in g.iter() {
            assert_eq!(view.sorted(), csr.neighbors(u).sorted());
        }
    }

    #[test]
    fn csr_validation_rejects_corrupt_parts() {
        let g = sample_graph();
        let (offsets, entries) = to_csr(&g);
        let n = |user, sim| Neighbor { user, sim };
        let check = |k: usize, offs: Vec<u64>, ents: Vec<Neighbor>, what: &str| {
            assert!(KnnGraph::from_csr_storage(k, offs.into(), ents.into()).is_err(), "{what}");
        };
        check(0, offsets.clone(), entries.clone(), "k = 0");
        check(4, vec![], entries.clone(), "empty offsets");
        check(4, vec![1, 2], entries.clone(), "nonzero first offset");
        {
            let mut bad = offsets.clone();
            bad[1] = bad[2] + 1;
            check(4, bad, entries.clone(), "decreasing offsets");
        }
        {
            let mut bad = offsets.clone();
            *bad.last_mut().unwrap() -= 1;
            check(4, bad, entries.clone(), "offsets not covering entries");
        }
        check(2, offsets.clone(), entries.clone(), "list over the bound");
        {
            let mut bad = entries.clone();
            bad[0].user = g.num_users() as u32;
            check(4, offsets.clone(), bad, "neighbour out of range");
        }
        {
            let mut bad = entries.clone();
            bad[0].user = 0; // user 0's own list starts at entry 0
            check(4, offsets.clone(), bad, "self-loop");
        }
        {
            let mut bad = entries.clone();
            bad[0].sim = f32::NAN;
            check(4, offsets.clone(), bad, "NaN similarity");
        }
        check(4, vec![0, 2], vec![n(1, 0.9), n(1, 0.1)], "duplicate neighbour");
        check(4, vec![0, 2], vec![n(1, 0.9), n(2, 0.1)], "heap order violated");
    }
}
