//! Bounded k-neighbour lists.
//!
//! Every user's neighbourhood is "a heap bounded to size k" (Algorithm 3).
//! [`NeighborList`] is that heap: a flat array in min-at-root order, so the
//! *worst* retained neighbour is always at index 0 and a candidate can be
//! rejected with one comparison. Duplicate detection is a linear scan —
//! `k ≤ 64` in all experiments (30 in the paper), where scanning a cache-
//! resident array beats any hash set (ablated in `benches/neighbour_list`).

use cnc_dataset::UserId;

/// One directed KNN edge: a neighbour and its similarity to the owner.
///
/// `#[repr(C)]` pins the layout to `(user: u32, sim: f32)` — 8 bytes,
/// align 4 — so the zero-copy snapshot path can reinterpret a mapped run
/// of little-endian `(id, sim-bits)` pairs as `[Neighbor]` directly.
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The neighbour's user id.
    pub user: UserId,
    /// Similarity between the list owner and `user`.
    pub sim: f32,
}

impl Neighbor {
    /// Total order used by the heap: `a.worse_than(b)` iff `a` should be
    /// evicted before `b`. Lower similarity is worse; ties break on the
    /// *higher* user id, making every list content deterministic.
    #[inline]
    fn worse_than(&self, other: &Neighbor) -> bool {
        (self.sim, other.user) < (other.sim, self.user)
    }
}

/// A borrowed, read-only view of one user's neighbourhood — what
/// [`crate::KnnGraph::neighbors`] hands out whether the graph owns its
/// lists or borrows a flat CSR from a mapped snapshot. `Copy`, so views
/// pass by value; entries appear in the list's heap (iteration) order.
#[derive(Clone, Copy, Debug)]
pub struct Neighbors<'a> {
    entries: &'a [Neighbor],
    k: usize,
}

impl<'a> Neighbors<'a> {
    /// Wraps a heap-ordered entry run under bound `k`.
    #[inline]
    pub(crate) fn new(entries: &'a [Neighbor], k: usize) -> Self {
        Neighbors { entries, k }
    }

    /// The bound `k`.
    #[inline]
    pub fn k(self) -> usize {
        self.k
    }

    /// Current number of neighbours (≤ `k`).
    #[inline]
    pub fn len(self) -> usize {
        self.entries.len()
    }

    /// True if no neighbour is retained.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.entries.is_empty()
    }

    /// True if `user` is in the neighbourhood.
    #[inline]
    pub fn contains(self, user: UserId) -> bool {
        self.entries.iter().any(|n| n.user == user)
    }

    /// The entries in heap (unsorted) order — identical to
    /// [`NeighborList::iter`] over the same list.
    #[inline]
    pub fn iter(self) -> std::slice::Iter<'a, Neighbor> {
        self.entries.iter()
    }

    /// The raw heap-ordered entry slice.
    #[inline]
    pub fn as_slice(self) -> &'a [Neighbor] {
        self.entries
    }

    /// The neighbours sorted by decreasing similarity (best first), under
    /// the same deterministic tie rule as [`NeighborList::sorted`].
    pub fn sorted(self) -> Vec<Neighbor> {
        let mut v = self.entries.to_vec();
        v.sort_unstable_by(|a, b| {
            b.sim.partial_cmp(&a.sim).unwrap().then_with(|| a.user.cmp(&b.user))
        });
        v
    }

    /// Sum of retained similarities.
    pub fn sim_sum(self) -> f64 {
        self.entries.iter().map(|n| n.sim as f64).sum()
    }

    /// An owned [`NeighborList`] with the identical heap layout (the
    /// mutating escape hatch for callers that need their own copy).
    pub fn to_list(self) -> NeighborList {
        NeighborList { entries: self.entries.to_vec(), k: self.k }
    }
}

impl<'a> IntoIterator for Neighbors<'a> {
    type Item = &'a Neighbor;
    type IntoIter = std::slice::Iter<'a, Neighbor>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A neighbourhood bounded to `k` entries, keeping the `k` best
/// (similarity, user) pairs ever inserted.
#[derive(Clone, Debug)]
pub struct NeighborList {
    entries: Vec<Neighbor>,
    k: usize,
}

impl NeighborList {
    /// Creates an empty list with capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "neighbourhood size k must be positive");
        NeighborList { entries: Vec::with_capacity(k), k }
    }

    /// The bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of neighbours (≤ `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no neighbour has been retained yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the list holds `k` neighbours.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// Similarity of the worst retained neighbour, or `-∞` while not full
    /// (any candidate is accepted until the list fills up).
    #[inline]
    pub fn worst_sim(&self) -> f32 {
        if self.is_full() {
            self.entries[0].sim
        } else {
            f32::NEG_INFINITY
        }
    }

    /// True if `user` is already in the list.
    #[inline]
    pub fn contains(&self, user: UserId) -> bool {
        self.entries.iter().any(|n| n.user == user)
    }

    /// Offers a candidate neighbour. Returns `true` iff the list changed
    /// (the candidate was added, or it replaced the worst entry, or an
    /// existing entry's similarity improved).
    ///
    /// The greedy algorithms use the return value as their "update" counter
    /// for the `δ·k·|U|` termination rule.
    pub fn insert(&mut self, user: UserId, sim: f32) -> bool {
        // Dedup first: the same pair can be offered from several clusters
        // (C² merge) or several iterations (greedy algorithms).
        if let Some(pos) = self.entries.iter().position(|n| n.user == user) {
            if sim > self.entries[pos].sim {
                // Similarity can only be refined upward (different backends
                // never mix inside one run, but merges must be idempotent).
                self.entries[pos].sim = sim;
                let pos = self.sift_up(pos);
                self.sift_down(pos);
                return true;
            }
            return false;
        }
        let candidate = Neighbor { user, sim };
        if !self.is_full() {
            self.entries.push(candidate);
            self.sift_up(self.entries.len() - 1);
            true
        } else if self.entries[0].worse_than(&candidate) {
            self.entries[0] = candidate;
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// Reassembles a list from entries previously read off [`NeighborList::iter`]
    /// (heap order), restoring the **identical** in-memory layout — the
    /// `cnc-serve` snapshot loader's inverse of the writer. The entries
    /// come from an untrusted file, so every invariant is checked instead
    /// of asserted: the bound, similarity finiteness (the heap's total
    /// order unwraps `partial_cmp`), user distinctness, and the heap
    /// invariant itself.
    pub fn from_heap_order(k: usize, entries: Vec<Neighbor>) -> Result<NeighborList, String> {
        if k == 0 {
            return Err("neighbourhood size k must be positive".into());
        }
        if entries.len() > k {
            return Err(format!("{} entries exceed the bound k = {k}", entries.len()));
        }
        if let Some(bad) = entries.iter().find(|n| n.sim.is_nan()) {
            return Err(format!("neighbour {} has a NaN similarity", bad.user));
        }
        for (i, a) in entries.iter().enumerate() {
            if entries[..i].iter().any(|b| b.user == a.user) {
                return Err(format!("user {} appears twice in one list", a.user));
            }
        }
        let list = NeighborList { entries, k };
        if !list.check_heap_invariant() {
            return Err("entries are not in heap order".into());
        }
        Ok(list)
    }

    /// Merges `other` into `self` (Algorithm 3's per-user step), keeping the
    /// `k` best of the union.
    pub fn merge(&mut self, other: &NeighborList) -> usize {
        self.merge_entries(&other.entries)
    }

    /// [`NeighborList::merge`] over a raw entry slice (the borrowed-view
    /// form a CSR-backed graph hands out).
    pub fn merge_entries(&mut self, entries: &[Neighbor]) -> usize {
        entries.iter().filter(|n| self.insert(n.user, n.sim)).count()
    }

    /// Iterates over the retained neighbours in heap (unsorted) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Neighbor> {
        self.entries.iter()
    }

    /// A borrowed [`Neighbors`] view of this list (heap order preserved).
    #[inline]
    pub fn as_view(&self) -> Neighbors<'_> {
        Neighbors::new(&self.entries, self.k)
    }

    /// The neighbours sorted by decreasing similarity (best first).
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut v = self.entries.clone();
        v.sort_unstable_by(|a, b| {
            b.sim.partial_cmp(&a.sim).unwrap().then_with(|| a.user.cmp(&b.user))
        });
        v
    }

    /// Sum of retained similarities (the numerator of Eq. (1) for one user).
    pub fn sim_sum(&self) -> f64 {
        self.entries.iter().map(|n| n.sim as f64).sum()
    }

    // --- binary-heap plumbing (min at root, `worse_than` order) ---

    fn sift_up(&mut self, mut pos: usize) -> usize {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.entries[pos].worse_than(&self.entries[parent]) {
                self.entries.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
        pos
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.entries.len() {
                break;
            }
            let right = left + 1;
            let mut worst = left;
            if right < self.entries.len() && self.entries[right].worse_than(&self.entries[left]) {
                worst = right;
            }
            if self.entries[worst].worse_than(&self.entries[pos]) {
                self.entries.swap(pos, worst);
                pos = worst;
            } else {
                break;
            }
        }
    }

    /// Heap-order invariant check for tests and debug assertions.
    #[doc(hidden)]
    pub fn check_heap_invariant(&self) -> bool {
        (1..self.entries.len()).all(|i| {
            let parent = (i - 1) / 2;
            !self.entries[i].worse_than(&self.entries[parent])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut list = NeighborList::new(3);
        for (user, sim) in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.3)] {
            list.insert(user, sim);
        }
        let kept: Vec<u32> = list.sorted().iter().map(|n| n.user).collect();
        assert_eq!(kept, vec![2, 4, 3]);
    }

    #[test]
    fn insert_returns_change_flag() {
        let mut list = NeighborList::new(2);
        assert!(list.insert(1, 0.5));
        assert!(list.insert(2, 0.6));
        assert!(!list.insert(3, 0.1), "worse than the worst must be rejected");
        assert!(list.insert(4, 0.9), "better candidate must evict");
        assert!(!list.contains(1));
    }

    #[test]
    fn duplicates_are_not_double_counted() {
        let mut list = NeighborList::new(3);
        assert!(list.insert(7, 0.4));
        assert!(!list.insert(7, 0.4), "same pair re-offered must be a no-op");
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn duplicate_with_better_sim_updates_in_place() {
        let mut list = NeighborList::new(3);
        list.insert(7, 0.4);
        assert!(list.insert(7, 0.8));
        assert_eq!(list.len(), 1);
        assert_eq!(list.sorted()[0].sim, 0.8);
    }

    #[test]
    fn duplicate_with_worse_sim_is_ignored() {
        let mut list = NeighborList::new(3);
        list.insert(7, 0.8);
        assert!(!list.insert(7, 0.2));
        assert_eq!(list.sorted()[0].sim, 0.8);
    }

    #[test]
    fn worst_sim_is_neg_infinity_until_full() {
        let mut list = NeighborList::new(2);
        assert_eq!(list.worst_sim(), f32::NEG_INFINITY);
        list.insert(1, 0.5);
        assert_eq!(list.worst_sim(), f32::NEG_INFINITY);
        list.insert(2, 0.3);
        assert_eq!(list.worst_sim(), 0.3);
    }

    #[test]
    fn ties_break_deterministically_on_user_id() {
        // Three candidates with equal similarity for k = 2: the two lowest
        // ids must be retained, whatever the insertion order.
        let orders = [[1u32, 2, 3], [3, 2, 1], [2, 3, 1], [2, 1, 3], [3, 1, 2], [1, 3, 2]];
        for order in orders {
            let mut list = NeighborList::new(2);
            for u in order {
                list.insert(u, 0.5);
            }
            let kept: Vec<u32> = list.sorted().iter().map(|n| n.user).collect();
            assert_eq!(kept, vec![1, 2], "order {order:?} broke the tie rule");
        }
    }

    #[test]
    fn merge_keeps_top_k_of_union() {
        let mut a = NeighborList::new(2);
        a.insert(1, 0.2);
        a.insert(2, 0.4);
        let mut b = NeighborList::new(2);
        b.insert(3, 0.9);
        b.insert(1, 0.2);
        let updates = a.merge(&b);
        assert_eq!(updates, 1);
        let kept: Vec<u32> = a.sorted().iter().map(|n| n.user).collect();
        assert_eq!(kept, vec![3, 2]);
    }

    #[test]
    fn sim_sum_matches_entries() {
        let mut list = NeighborList::new(4);
        list.insert(1, 0.25);
        list.insert(2, 0.5);
        assert!((list.sim_sum() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        NeighborList::new(0);
    }

    #[test]
    fn from_heap_order_restores_the_exact_layout() {
        let mut list = NeighborList::new(4);
        for (user, sim) in [(1, 0.4), (9, 0.9), (3, 0.1), (7, 0.7), (2, 0.5)] {
            list.insert(user, sim);
        }
        let entries: Vec<Neighbor> = list.iter().copied().collect();
        let back = NeighborList::from_heap_order(4, entries).unwrap();
        // Bit-exact: same heap order, not merely the same sorted content.
        assert_eq!(
            back.iter().copied().collect::<Vec<_>>(),
            list.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(back.k(), 4);
    }

    #[test]
    fn from_heap_order_rejects_invalid_entries() {
        let n = |user, sim| Neighbor { user, sim };
        assert!(NeighborList::from_heap_order(0, vec![]).is_err(), "k = 0");
        assert!(
            NeighborList::from_heap_order(1, vec![n(1, 0.5), n(2, 0.9)]).is_err(),
            "over the bound"
        );
        assert!(NeighborList::from_heap_order(3, vec![n(1, f32::NAN)]).is_err(), "NaN similarity");
        assert!(
            NeighborList::from_heap_order(3, vec![n(1, 0.2), n(1, 0.3)]).is_err(),
            "duplicate user"
        );
        assert!(
            NeighborList::from_heap_order(3, vec![n(1, 0.9), n(2, 0.1)]).is_err(),
            "heap order violated (root must be the worst)"
        );
        assert!(NeighborList::from_heap_order(3, vec![]).unwrap().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The list must always contain exactly the top-k of everything
        /// offered (under the deterministic tie rule).
        #[test]
        fn list_is_topk_of_inserted_multiset(
            inserts in proptest::collection::vec((0u32..50, 0u32..100), 1..200),
            k in 1usize..10,
        ) {
            let mut list = NeighborList::new(k);
            // Deduplicate by user keeping max sim — the reference model.
            let mut best: std::collections::BTreeMap<u32, u32> = Default::default();
            for &(user, sim_raw) in &inserts {
                let sim = sim_raw as f32 / 100.0;
                list.insert(user, sim);
                let e = best.entry(user).or_insert(sim_raw);
                *e = (*e).max(sim_raw);
            }
            prop_assert!(list.check_heap_invariant());
            let mut expect: Vec<(f32, u32)> = best.into_iter()
                .map(|(user, sim_raw)| (sim_raw as f32 / 100.0, user))
                .collect();
            // Best first: sim desc, user asc.
            expect.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            expect.truncate(k);
            let got: Vec<(f32, u32)> = list.sorted().iter().map(|n| (n.sim, n.user)).collect();
            prop_assert_eq!(got, expect);
        }

        /// Merging is idempotent: merging a list into itself changes nothing.
        #[test]
        fn merge_is_idempotent(
            inserts in proptest::collection::vec((0u32..30, 0u32..100), 0..50),
        ) {
            let mut list = NeighborList::new(5);
            for (user, sim_raw) in inserts {
                list.insert(user, sim_raw as f32 / 100.0);
            }
            let snapshot = list.sorted();
            let copy = list.clone();
            let updates = list.merge(&copy);
            prop_assert_eq!(updates, 0);
            let sorted = list.sorted();
            prop_assert_eq!(sorted, snapshot);
        }

        /// The heap invariant survives arbitrary insertion sequences.
        #[test]
        fn heap_invariant_always_holds(
            inserts in proptest::collection::vec((0u32..100, -50i32..50), 0..300),
            k in 1usize..32,
        ) {
            let mut list = NeighborList::new(k);
            for (user, sim) in inserts {
                list.insert(user, sim as f32 / 10.0);
                prop_assert!(list.check_heap_invariant());
                prop_assert!(list.len() <= k);
            }
        }
    }
}
