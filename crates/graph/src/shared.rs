//! Concurrently writable KNN graph (striped per-user locks).
//!
//! C²'s clusters are processed "in isolation … without any synchronization"
//! between KNN computations; synchronization only happens when partial
//! results are merged into each user's global neighbourhood (Algorithm 3).
//! [`SharedKnnGraph`] supports exactly that access pattern: every user's
//! bounded list sits behind its own `parking_lot::Mutex`, so merges of
//! different users never contend and merges of the same user from two
//! clusters serialize briefly. A plain [`KnnGraph`] is recovered at the end
//! with [`SharedKnnGraph::into_graph`].

use crate::knn_graph::KnnGraph;
use crate::neighbors::NeighborList;
use cnc_dataset::UserId;
use parking_lot::Mutex;

/// A KNN graph whose per-user lists can be updated from many threads.
pub struct SharedKnnGraph {
    lists: Vec<Mutex<NeighborList>>,
    k: usize,
}

impl SharedKnnGraph {
    /// Creates an empty shared graph over `n` users with bound `k`.
    pub fn new(n: usize, k: usize) -> Self {
        SharedKnnGraph { lists: (0..n).map(|_| Mutex::new(NeighborList::new(k))).collect(), k }
    }

    /// Wraps an existing graph for concurrent updates.
    pub fn from_graph(graph: KnnGraph) -> Self {
        let k = graph.k();
        let n = graph.num_users();
        let mut lists = Vec::with_capacity(n);
        for u in 0..n as u32 {
            lists.push(Mutex::new(graph.neighbors(u).to_list()));
        }
        SharedKnnGraph { lists, k }
    }

    /// The neighbourhood bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.lists.len()
    }

    /// Offers the directed edge `user → neighbor`; returns `true` on change.
    #[inline]
    pub fn insert(&self, user: UserId, neighbor: UserId, sim: f32) -> bool {
        debug_assert_ne!(user, neighbor, "self-loops are not KNN edges");
        self.lists[user as usize].lock().insert(neighbor, sim)
    }

    /// Merges a whole partial neighbourhood into `user`'s list under one
    /// lock acquisition (Algorithm 3's inner loop); returns update count.
    pub fn merge_into(&self, user: UserId, partial: &NeighborList) -> usize {
        self.lists[user as usize].lock().merge(partial)
    }

    /// Clones `user`'s current list (used to snapshot between greedy
    /// iterations).
    pub fn snapshot_user(&self, user: UserId) -> NeighborList {
        self.lists[user as usize].lock().clone()
    }

    /// Snapshots the neighbour ids of every user (cheap read phase of the
    /// greedy algorithms).
    pub fn snapshot_ids(&self) -> Vec<Vec<UserId>> {
        self.lists.iter().map(|l| l.lock().iter().map(|n| n.user).collect()).collect()
    }

    /// Unwraps into a plain [`KnnGraph`].
    pub fn into_graph(self) -> KnnGraph {
        let mut graph = KnnGraph::new(self.lists.len(), self.k);
        for (u, lock) in self.lists.into_iter().enumerate() {
            *graph.neighbors_mut(u as UserId) = lock.into_inner();
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_inserts_keep_top_k() {
        let shared = SharedKnnGraph::new(1, 4);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let v = 1 + t * 100 + i;
                        shared.insert(0, v, v as f32 / 1000.0);
                    }
                });
            }
        });
        let graph = shared.into_graph();
        let best: Vec<u32> = graph.neighbors(0).sorted().iter().map(|n| n.user).collect();
        // The four highest inserted ids have the four highest sims.
        assert_eq!(best, vec![400, 399, 398, 397]);
    }

    #[test]
    fn round_trip_through_from_graph() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(0, 1, 0.5);
        g.insert(2, 0, 0.25);
        let shared = SharedKnnGraph::from_graph(g.clone());
        let back = shared.into_graph();
        for u in 0..3u32 {
            assert_eq!(back.neighbors(u).sorted(), g.neighbors(u).sorted());
        }
    }

    #[test]
    fn merge_into_counts_updates() {
        let shared = SharedKnnGraph::new(2, 2);
        let mut partial = NeighborList::new(2);
        partial.insert(1, 0.9);
        assert_eq!(shared.merge_into(0, &partial), 1);
        assert_eq!(shared.merge_into(0, &partial), 0, "second merge is idempotent");
    }

    #[test]
    fn snapshot_ids_reflects_inserts() {
        let shared = SharedKnnGraph::new(2, 2);
        shared.insert(0, 1, 0.4);
        let ids = shared.snapshot_ids();
        assert_eq!(ids[0], vec![1]);
        assert!(ids[1].is_empty());
    }
}
