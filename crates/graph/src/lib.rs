//! KNN-graph substrate: bounded neighbour lists, the graph container, and
//! the paper's quality metrics.
//!
//! A KNN graph connects each user `u` to `knn(u)`, the `k` most similar
//! users (§II-A). Every algorithm in the workspace — Brute Force, Hyrec,
//! NNDescent, LSH and Cluster-and-Conquer — produces a [`KnnGraph`]; the
//! approximation quality is measured by the average-similarity ratio of
//! Eq. (1)–(2), implemented in [`metrics`].

pub mod batch;
pub mod metrics;
pub mod neighbors;
pub mod shared;

mod knn_graph;

pub use batch::pairwise_into;
pub use knn_graph::KnnGraph;
pub use metrics::{avg_exact_similarity, quality};
pub use neighbors::{Neighbor, NeighborList, Neighbors};
pub use shared::SharedKnnGraph;
