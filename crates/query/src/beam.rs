//! Beam-search configuration and the visited-set scratch machinery.

/// Parameters of a greedy beam search over the KNN graph.
#[derive(Clone, Copy, Debug)]
pub struct BeamSearchConfig {
    /// Beam width (candidates kept under consideration). Larger = better
    /// recall, more similarity computations. Must be ≥ the query `k`.
    pub beam_width: usize,
    /// Number of random entry points seeding the search (escapes isolated
    /// graph regions; the graph is not guaranteed connected).
    pub entry_points: usize,
    /// Hard cap on similarity computations per query (0 = unlimited);
    /// protects latency SLOs on adversarial queries.
    pub max_comparisons: usize,
}

impl Default for BeamSearchConfig {
    fn default() -> Self {
        BeamSearchConfig { beam_width: 32, entry_points: 4, max_comparisons: 0 }
    }
}

impl BeamSearchConfig {
    /// Validates the parameters against a query `k`.
    pub fn validate(&self, k: usize) -> Result<(), String> {
        if self.beam_width == 0 {
            return Err("beam_width must be positive".into());
        }
        if self.beam_width < k {
            return Err(format!("beam_width {} must be ≥ k {k}", self.beam_width));
        }
        if self.entry_points == 0 {
            return Err("entry_points must be positive".into());
        }
        Ok(())
    }
}

/// An epoch-stamped visited set: clearing between queries is O(1) (bump the
/// epoch) instead of O(n) (zero the array) — queries are latency-sensitive.
#[derive(Clone, Debug)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Creates a set over `n` users.
    pub fn new(n: usize) -> Self {
        VisitedSet { stamps: vec![0; n], epoch: 0 }
    }

    /// Grows the set to cover `n` users; existing marks are preserved and
    /// the new slots read as unvisited (slot 0 is never a live epoch — the
    /// first [`VisitedSet::clear`] bumps it to 1). Lets one searcher
    /// outlive epoch swaps to larger graphs in `cnc-serve`.
    pub fn grow(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
    }

    /// Starts a new query: invalidates all marks in O(1).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Once every 2^32 queries the epoch wraps: hard reset.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `user`; returns `true` if it was not yet visited this query.
    #[inline]
    pub fn insert(&mut self, user: u32) -> bool {
        let slot = &mut self.stamps[user as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True if `user` was marked during the current query.
    #[inline]
    pub fn contains(&self, user: u32) -> bool {
        self.stamps[user as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_for_small_k() {
        BeamSearchConfig::default().validate(10).unwrap();
    }

    #[test]
    fn beam_narrower_than_k_is_rejected() {
        let config = BeamSearchConfig { beam_width: 5, ..Default::default() };
        assert!(config.validate(10).is_err());
    }

    #[test]
    fn zero_entry_points_rejected() {
        let config = BeamSearchConfig { entry_points: 0, ..Default::default() };
        assert!(config.validate(1).is_err());
    }

    #[test]
    fn visited_set_tracks_membership_per_epoch() {
        let mut set = VisitedSet::new(10);
        set.clear();
        assert!(set.insert(3));
        assert!(!set.insert(3), "second insert must report already-visited");
        assert!(set.contains(3));
        assert!(!set.contains(4));
        set.clear();
        assert!(!set.contains(3), "clear must invalidate previous marks");
        assert!(set.insert(3));
    }

    #[test]
    fn grow_preserves_marks_and_adds_unvisited_slots() {
        let mut set = VisitedSet::new(2);
        set.clear();
        set.insert(1);
        set.grow(5);
        assert!(set.contains(1), "existing marks must survive the grow");
        assert!(!set.contains(4), "new slots must start unvisited");
        assert!(set.insert(4));
        set.grow(3); // shrinking requests are no-ops
        assert!(set.contains(4));
    }

    #[test]
    fn visited_set_survives_epoch_wraparound() {
        let mut set = VisitedSet::new(4);
        // Force the wrap by setting the epoch near the limit.
        set.epoch = u32::MAX - 1;
        set.clear(); // → u32::MAX
        set.insert(1);
        set.clear(); // wraps → hard reset to epoch 1
        assert!(!set.contains(1));
        assert!(set.insert(1));
    }
}
