//! The query index: greedy beam search for out-of-sample KNN queries.

use crate::beam::{BeamSearchConfig, VisitedSet};
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::{KnnGraph, Neighbor, NeighborList};
use cnc_similarity::Jaccard;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate in the expansion frontier, max-ordered by similarity
/// (ties on the smaller user id, for determinism).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Candidate {
    sim: f32,
    user: UserId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Jaccard similarities are never NaN.
        self.sim.partial_cmp(&other.sim).unwrap().then_with(|| other.user.cmp(&self.user))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The answer to one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The (approximate) k nearest users, best first.
    pub neighbors: Vec<Neighbor>,
    /// Similarity computations spent on this query.
    pub comparisons: usize,
}

/// Reusable per-thread scratch state (visited marks survive across queries
/// as epochs, so repeated queries allocate nothing).
pub struct Searcher {
    visited: VisitedSet,
}

/// An immutable KNN-query index over a dataset and its KNN graph.
pub struct QueryIndex<'a> {
    dataset: &'a Dataset,
    graph: &'a KnnGraph,
}

impl<'a> QueryIndex<'a> {
    /// Binds a dataset and a graph built on it (by C² or any baseline).
    ///
    /// # Panics
    /// Panics if the graph and dataset disagree on the user count.
    pub fn new(dataset: &'a Dataset, graph: &'a KnnGraph) -> Self {
        assert_eq!(
            dataset.num_users(),
            graph.num_users(),
            "index requires the graph built on this dataset"
        );
        QueryIndex { dataset, graph }
    }

    /// Allocates reusable scratch for this index.
    pub fn searcher(&self) -> Searcher {
        Searcher { visited: VisitedSet::new(self.dataset.num_users()) }
    }

    /// Convenience one-shot search (allocates scratch internally).
    pub fn search(
        &self,
        query: &[ItemId],
        k: usize,
        config: &BeamSearchConfig,
        seed: u64,
    ) -> QueryResult {
        let mut searcher = self.searcher();
        self.search_with(&mut searcher, query, k, config, seed)
    }

    /// Beam search: returns the approximate k most similar users to the
    /// (sorted) `query` profile.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this `k` (see
    /// [`BeamSearchConfig::validate`]) or the query profile is unsorted.
    pub fn search_with(
        &self,
        searcher: &mut Searcher,
        query: &[ItemId],
        k: usize,
        config: &BeamSearchConfig,
        seed: u64,
    ) -> QueryResult {
        if let Err(msg) = config.validate(k) {
            panic!("invalid beam search config: {msg}");
        }
        debug_assert!(query.windows(2).all(|w| w[0] < w[1]), "query profile must be sorted");
        let n = self.dataset.num_users();
        let mut comparisons = 0usize;
        if n == 0 {
            return QueryResult { neighbors: Vec::new(), comparisons };
        }

        let visited = &mut searcher.visited;
        visited.clear();
        // `beam` keeps the best `beam_width` users seen so far; `frontier`
        // orders the not-yet-expanded ones by similarity.
        let mut beam = NeighborList::new(config.beam_width);
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();

        let mut rng = SmallRng::seed_from_u64(seed);
        let entries = config.entry_points.min(n);
        while frontier.len() < entries {
            let user = rng.random_range(0..n as u32);
            if visited.insert(user) {
                let sim = Jaccard::similarity(query, self.dataset.profile(user)) as f32;
                comparisons += 1;
                beam.insert(user, sim);
                frontier.push(Candidate { sim, user });
            }
        }

        while let Some(best) = frontier.pop() {
            // Greedy termination: the best unexpanded candidate cannot
            // improve a full beam.
            if beam.is_full() && best.sim < beam.worst_sim() {
                break;
            }
            for edge in self.graph.neighbors(best.user).iter() {
                if !visited.insert(edge.user) {
                    continue;
                }
                if config.max_comparisons > 0 && comparisons >= config.max_comparisons {
                    frontier.clear();
                    break;
                }
                let sim = Jaccard::similarity(query, self.dataset.profile(edge.user)) as f32;
                comparisons += 1;
                if beam.insert(edge.user, sim) {
                    frontier.push(Candidate { sim, user: edge.user });
                }
            }
        }

        let mut neighbors = beam.sorted();
        neighbors.truncate(k);
        QueryResult { neighbors, comparisons }
    }

    /// Exact reference answer by scanning every user (for recall checks).
    pub fn exact_search(&self, query: &[ItemId], k: usize) -> QueryResult {
        let mut list = NeighborList::new(k.max(1));
        for (u, profile) in self.dataset.iter() {
            list.insert(u, Jaccard::similarity(query, profile) as f32);
        }
        QueryResult { neighbors: list.sorted(), comparisons: self.dataset.num_users() }
    }

    /// Recall of an approximate answer against the exact one
    /// (|approx ∩ exact| / |exact|).
    pub fn recall(approx: &QueryResult, exact: &QueryResult) -> f64 {
        if exact.neighbors.is_empty() {
            return 1.0;
        }
        let exact_ids: Vec<UserId> = exact.neighbors.iter().map(|n| n.user).collect();
        let hit = approx.neighbors.iter().filter(|n| exact_ids.contains(&n.user)).count();
        hit as f64 / exact_ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_baselines::{BruteForce, BuildContext, KnnAlgorithm};
    use cnc_dataset::SyntheticConfig;
    use cnc_similarity::{SimilarityBackend, SimilarityData};

    fn setup() -> (Dataset, KnnGraph) {
        let mut cfg = SyntheticConfig::small(808);
        cfg.num_users = 500;
        cfg.num_items = 400;
        cfg.communities = 10;
        cfg.mean_profile = 25.0;
        cfg.min_profile = 10;
        let ds = cfg.generate();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 12, threads: 0, seed: 1 };
        let graph = BruteForce.build(&ctx);
        (ds, graph)
    }

    #[test]
    fn beam_search_reaches_high_recall_at_a_fraction_of_the_cost() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let config = BeamSearchConfig { beam_width: 48, entry_points: 8, max_comparisons: 0 };
        let mut total_recall = 0.0;
        let mut total_comparisons = 0usize;
        let queries = 20;
        for q in 0..queries {
            // Use existing users' profiles as out-of-sample queries.
            let query: Vec<u32> = ds.profile(q * 17).to_vec();
            let approx = index.search(&query, 10, &config, q as u64);
            let exact = index.exact_search(&query, 10);
            total_recall += QueryIndex::recall(&approx, &exact);
            total_comparisons += approx.comparisons;
        }
        let recall = total_recall / queries as f64;
        let avg_cost = total_comparisons / queries as usize;
        assert!(recall > 0.7, "beam search recall {recall:.3} too low");
        assert!(avg_cost < ds.num_users() / 2, "avg {avg_cost} comparisons ≥ half a linear scan");
    }

    #[test]
    fn exact_search_returns_true_top_k() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(0).to_vec();
        let exact = index.exact_search(&query, 5);
        // The query IS user 0's profile, so user 0 is its own best match.
        assert_eq!(exact.neighbors[0].user, 0);
        assert_eq!(exact.neighbors[0].sim, 1.0);
        assert_eq!(exact.comparisons, ds.num_users());
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(42).to_vec();
        let config = BeamSearchConfig::default();
        let a = index.search(&query, 8, &config, 9);
        let b = index.search(&query, 8, &config, 9);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.comparisons, b.comparisons);
    }

    #[test]
    fn max_comparisons_caps_the_work() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(3).to_vec();
        let config = BeamSearchConfig { beam_width: 32, entry_points: 4, max_comparisons: 50 };
        let result = index.search(&query, 10, &config, 5);
        assert!(result.comparisons <= 50 + 4, "cap exceeded: {}", result.comparisons);
        assert!(!result.neighbors.is_empty());
    }

    #[test]
    fn searcher_scratch_is_reusable() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let mut searcher = index.searcher();
        let config = BeamSearchConfig::default();
        let q1: Vec<u32> = ds.profile(1).to_vec();
        let q2: Vec<u32> = ds.profile(2).to_vec();
        let a = index.search_with(&mut searcher, &q1, 5, &config, 1);
        let b = index.search_with(&mut searcher, &q2, 5, &config, 1);
        // Both answers must match fresh-scratch searches (epoch isolation).
        assert_eq!(a.neighbors, index.search(&q1, 5, &config, 1).neighbors);
        assert_eq!(b.neighbors, index.search(&q2, 5, &config, 1).neighbors);
    }

    #[test]
    fn empty_dataset_returns_empty_answer() {
        let ds = Dataset::from_profiles(vec![], 0);
        let graph = KnnGraph::new(0, 3);
        let index = QueryIndex::new(&ds, &graph);
        let result = index.search(&[1, 2], 3, &BeamSearchConfig::default(), 0);
        assert!(result.neighbors.is_empty());
    }

    #[test]
    fn recall_of_identical_answers_is_one() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(7).to_vec();
        let exact = index.exact_search(&query, 5);
        assert_eq!(QueryIndex::recall(&exact, &exact), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid beam search config")]
    fn invalid_config_panics() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let config = BeamSearchConfig { beam_width: 2, ..Default::default() };
        index.search(&[1], 10, &config, 0);
    }
}
