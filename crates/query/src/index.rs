//! The query index: greedy beam search for out-of-sample KNN queries.
//!
//! Beam expansion is **batched**: each expanded node's unvisited
//! neighbours are scored through one
//! [`cnc_similarity::kernel::one_vs_many`] call against a monomorphized
//! query kernel — exact Jaccard over the dataset's profiles by default
//! ([`QueryIndex::new`]), or fixed-width GoldFinger fingerprints
//! ([`QueryIndex::with_goldfinger`], the serving path) with the query
//! fingerprinted once per search. Both modes return results and
//! comparison counts identical to a per-candidate scalar loop (locked by
//! the equivalence tests below).

use crate::beam::BeamSearchConfig;
use crate::search::{batched_beam_search, batched_multi_beam_search, BeamSolve, MultiBeamSolve};
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::{KnnGraph, Neighbor, NeighborList};
use cnc_similarity::kernel::{
    solve_multi_query_words, solve_query_words, RawMultiQueryKernel, RawQueryKernel,
    MAX_SWEEP_QUERIES,
};
use cnc_similarity::{GoldFinger, Jaccard};

/// One query of a cross-query batch (see [`QueryIndex::search_batch`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchQuery<'q> {
    /// The sorted, deduplicated query profile.
    pub profile: &'q [ItemId],
    /// How many neighbours to return.
    pub k: usize,
    /// The entry-point seed — the same seed a single-query
    /// [`QueryIndex::search`] would be given.
    pub seed: u64,
}

/// The answer to one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The (approximate) k nearest users, best first.
    pub neighbors: Vec<Neighbor>,
    /// Similarity computations spent on this query.
    pub comparisons: usize,
}

/// Reusable per-thread scratch state (visited marks survive across queries
/// as epochs and the candidate batch keeps its allocation, so repeated
/// queries allocate almost nothing). A searcher may outlive the index it
/// was created from: the visited set grows on demand, so `cnc-serve` can
/// keep one searcher per client across epoch swaps to larger graphs.
pub struct Searcher {
    pub(crate) visited: crate::beam::VisitedSet,
    pub(crate) batch: Vec<UserId>,
}

/// An immutable KNN-query index over a dataset and its KNN graph.
pub struct QueryIndex<'a> {
    dataset: &'a Dataset,
    graph: &'a KnnGraph,
    goldfinger: Option<&'a GoldFinger>,
}

impl<'a> QueryIndex<'a> {
    /// Binds a dataset and a graph built on it (by C² or any baseline);
    /// queries are scored with exact Jaccard over the raw profiles.
    ///
    /// # Panics
    /// Panics if the graph and dataset disagree on the user count.
    pub fn new(dataset: &'a Dataset, graph: &'a KnnGraph) -> Self {
        assert_eq!(
            dataset.num_users(),
            graph.num_users(),
            "index requires the graph built on this dataset"
        );
        QueryIndex { dataset, graph, goldfinger: None }
    }

    /// Binds a dataset, its graph, and a GoldFinger fingerprint set;
    /// queries are scored with the fingerprint estimator through the
    /// fixed-width kernels — the configuration `cnc-serve` serves from
    /// (the graph was built on the same fingerprints, so query scores are
    /// consistent with the stored edge similarities).
    ///
    /// # Panics
    /// Panics if the graph, dataset and fingerprints disagree on the user
    /// count.
    pub fn with_goldfinger(
        dataset: &'a Dataset,
        graph: &'a KnnGraph,
        goldfinger: &'a GoldFinger,
    ) -> Self {
        assert_eq!(
            dataset.num_users(),
            graph.num_users(),
            "index requires the graph built on this dataset"
        );
        assert_eq!(
            goldfinger.num_users(),
            dataset.num_users(),
            "fingerprints must cover the dataset"
        );
        QueryIndex { dataset, graph, goldfinger: Some(goldfinger) }
    }

    /// True if queries are scored on fingerprints rather than raw
    /// profiles.
    pub fn is_fingerprinted(&self) -> bool {
        self.goldfinger.is_some()
    }

    /// Allocates reusable scratch for this index.
    pub fn searcher(&self) -> Searcher {
        Searcher {
            visited: crate::beam::VisitedSet::new(self.dataset.num_users()),
            batch: Vec::new(),
        }
    }

    /// Convenience one-shot search (allocates scratch internally).
    pub fn search(
        &self,
        query: &[ItemId],
        k: usize,
        config: &BeamSearchConfig,
        seed: u64,
    ) -> QueryResult {
        let mut searcher = self.searcher();
        self.search_with(&mut searcher, query, k, config, seed)
    }

    /// Beam search: returns the approximate k most similar users to the
    /// (sorted) `query` profile.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this `k` (see
    /// [`BeamSearchConfig::validate`]) or the query profile is unsorted.
    pub fn search_with(
        &self,
        searcher: &mut Searcher,
        query: &[ItemId],
        k: usize,
        config: &BeamSearchConfig,
        seed: u64,
    ) -> QueryResult {
        if let Err(msg) = config.validate(k) {
            panic!("invalid beam search config: {msg}");
        }
        debug_assert!(query.windows(2).all(|w| w[0] < w[1]), "query profile must be sorted");
        let (beam, comparisons) = match self.goldfinger {
            None => batched_beam_search(
                &RawQueryKernel::new(self.dataset, query),
                self.graph,
                &mut searcher.visited,
                &mut searcher.batch,
                config,
                seed,
            ),
            Some(gf) => {
                let qwords = gf.fingerprint_profile(query);
                solve_query_words(
                    gf.words(),
                    gf.words_per_user(),
                    &qwords,
                    BeamSolve {
                        graph: self.graph,
                        visited: &mut searcher.visited,
                        batch: &mut searcher.batch,
                        config,
                        seed,
                    },
                )
            }
        };
        let mut neighbors = beam.sorted();
        neighbors.truncate(k);
        QueryResult { neighbors, comparisons }
    }

    /// Cross-query batched search: answers every query in `queries`,
    /// per-query **bit-identical** (neighbours *and* comparison counts)
    /// to calling [`QueryIndex::search`] with the same profile, `k` and
    /// seed — but queries that expand the same graph node in the same
    /// lockstep round share one sweep over that node's neighbour list,
    /// so concurrent queries amortize the candidate-row gather instead
    /// of re-reading the rows once each. Batches wider than the 64-query
    /// interest mask are processed in chunks.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for any query's `k` or a
    /// profile is unsorted.
    pub fn search_batch(
        &self,
        queries: &[BatchQuery],
        config: &BeamSearchConfig,
    ) -> Vec<QueryResult> {
        let mut results = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(MAX_SWEEP_QUERIES.max(1)) {
            for q in chunk {
                if let Err(msg) = config.validate(q.k) {
                    panic!("invalid beam search config: {msg}");
                }
                debug_assert!(
                    q.profile.windows(2).all(|w| w[0] < w[1]),
                    "query profile must be sorted"
                );
            }
            let seeds: Vec<u64> = chunk.iter().map(|q| q.seed).collect();
            let beams = match self.goldfinger {
                None => {
                    let profiles: Vec<&[ItemId]> = chunk.iter().map(|q| q.profile).collect();
                    batched_multi_beam_search(
                        &RawMultiQueryKernel::new(self.dataset, &profiles),
                        chunk.len(),
                        self.graph,
                        config,
                        &seeds,
                    )
                }
                Some(gf) => {
                    let mut block = Vec::with_capacity(chunk.len() * gf.words_per_user());
                    for q in chunk {
                        block.extend_from_slice(&gf.fingerprint_profile(q.profile));
                    }
                    solve_multi_query_words(
                        gf.words(),
                        gf.words_per_user(),
                        &block,
                        MultiBeamSolve {
                            graph: self.graph,
                            num_queries: chunk.len(),
                            config,
                            seeds: &seeds,
                        },
                    )
                }
            };
            for (q, (beam, comparisons)) in chunk.iter().zip(beams) {
                let mut neighbors = beam.sorted();
                neighbors.truncate(q.k);
                results.push(QueryResult { neighbors, comparisons });
            }
        }
        results
    }

    /// Exact reference answer by scanning every user with raw Jaccard
    /// (for recall checks; independent of the scoring mode).
    pub fn exact_search(&self, query: &[ItemId], k: usize) -> QueryResult {
        let mut list = NeighborList::new(k.max(1));
        for (u, profile) in self.dataset.iter() {
            list.insert(u, Jaccard::similarity(query, profile) as f32);
        }
        QueryResult { neighbors: list.sorted(), comparisons: self.dataset.num_users() }
    }

    /// Recall of an approximate answer against the exact one
    /// (|approx ∩ exact| / |exact|).
    pub fn recall(approx: &QueryResult, exact: &QueryResult) -> f64 {
        if exact.neighbors.is_empty() {
            return 1.0;
        }
        let exact_ids: Vec<UserId> = exact.neighbors.iter().map(|n| n.user).collect();
        let hit = approx.neighbors.iter().filter(|n| exact_ids.contains(&n.user)).count();
        hit as f64 / exact_ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::VisitedSet;
    use cnc_baselines::{BruteForce, BuildContext, KnnAlgorithm};
    use cnc_dataset::SyntheticConfig;
    use cnc_similarity::{SimilarityBackend, SimilarityData};
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn setup() -> (Dataset, KnnGraph) {
        let mut cfg = SyntheticConfig::small(808);
        cfg.num_users = 500;
        cfg.num_items = 400;
        cfg.communities = 10;
        cfg.mean_profile = 25.0;
        cfg.min_profile = 10;
        let ds = cfg.generate();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 12, threads: 0, seed: 1 };
        let graph = BruteForce.build(&ctx);
        (ds, graph)
    }

    /// The seed implementation's per-candidate scalar loop, kept verbatim
    /// as the reference the batched path must reproduce exactly —
    /// neighbours *and* comparison counts. `score` is the per-pair
    /// oracle: raw Jaccard or the GoldFinger estimate.
    fn scalar_reference<F: Fn(UserId) -> f32>(
        graph: &KnnGraph,
        n: usize,
        k: usize,
        config: &BeamSearchConfig,
        seed: u64,
        score: F,
    ) -> QueryResult {
        let mut comparisons = 0usize;
        if n == 0 {
            return QueryResult { neighbors: Vec::new(), comparisons };
        }
        let mut visited = VisitedSet::new(n);
        visited.clear();
        let mut beam = NeighborList::new(config.beam_width);
        let mut frontier: std::collections::BinaryHeap<crate::search::Candidate> =
            std::collections::BinaryHeap::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let entries = config.entry_points.min(n);
        while frontier.len() < entries {
            let user = rng.random_range(0..n as u32);
            if visited.insert(user) {
                let sim = score(user);
                comparisons += 1;
                beam.insert(user, sim);
                frontier.push(crate::search::Candidate { sim, user });
            }
        }
        while let Some(best) = frontier.pop() {
            if beam.is_full() && best.sim < beam.worst_sim() {
                break;
            }
            for edge in graph.neighbors(best.user).iter() {
                if !visited.insert(edge.user) {
                    continue;
                }
                if config.max_comparisons > 0 && comparisons >= config.max_comparisons {
                    frontier.clear();
                    break;
                }
                let sim = score(edge.user);
                comparisons += 1;
                if beam.insert(edge.user, sim) {
                    frontier.push(crate::search::Candidate { sim, user: edge.user });
                }
            }
        }
        let mut neighbors = beam.sorted();
        neighbors.truncate(k);
        QueryResult { neighbors, comparisons }
    }

    #[test]
    fn batched_raw_search_is_identical_to_the_scalar_path() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        for (q, max_comparisons) in [(0usize, 0usize), (17, 0), (42, 120), (99, 30), (7, 1)] {
            let query: Vec<u32> = ds.profile((q * 5 % 500) as u32).to_vec();
            let config = BeamSearchConfig { beam_width: 32, entry_points: 6, max_comparisons };
            let batched = index.search(&query, 10, &config, q as u64);
            let scalar = scalar_reference(&graph, ds.num_users(), 10, &config, q as u64, |u| {
                Jaccard::similarity(&query, ds.profile(u)) as f32
            });
            assert_eq!(
                batched.neighbors, scalar.neighbors,
                "results diverged (cap {max_comparisons})"
            );
            assert_eq!(
                batched.comparisons, scalar.comparisons,
                "comparison counts diverged (cap {max_comparisons})"
            );
        }
    }

    #[test]
    fn batched_goldfinger_search_is_identical_to_the_scalar_path() {
        let (ds, graph) = setup();
        // 192 bits exercises the dynamic-width fallback; 1024 the paper
        // default's fixed-width specialization.
        for bits in [192usize, 1024] {
            let gf = GoldFinger::build(&ds, bits, 31);
            let index = QueryIndex::with_goldfinger(&ds, &graph, &gf);
            assert!(index.is_fingerprinted());
            for (q, max_comparisons) in [(3usize, 0usize), (55, 90), (8, 1)] {
                let query: Vec<u32> = ds.profile((q * 11 % 500) as u32).to_vec();
                let qwords = gf.fingerprint_profile(&query);
                let config = BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons };
                let batched = index.search(&query, 8, &config, q as u64);
                let scalar = scalar_reference(&graph, ds.num_users(), 8, &config, q as u64, |u| {
                    // The estimator the kernels must match bit-for-bit.
                    let (mut inter, mut union) = (0u32, 0u32);
                    for (a, b) in qwords.iter().zip(gf.fingerprint(u)) {
                        inter += (a & b).count_ones();
                        union += (a | b).count_ones();
                    }
                    if union == 0 {
                        0.0
                    } else {
                        (inter as f64 / union as f64) as f32
                    }
                });
                assert_eq!(batched.neighbors, scalar.neighbors, "{bits} bits diverged");
                assert_eq!(batched.comparisons, scalar.comparisons, "{bits} bits counts diverged");
            }
        }
    }

    #[test]
    fn batched_cross_query_search_is_identical_to_single_queries() {
        let (ds, graph) = setup();
        for bits in [None, Some(1024usize), Some(192)] {
            let gf = bits.map(|b| GoldFinger::build(&ds, b, 31));
            let index = match &gf {
                None => QueryIndex::new(&ds, &graph),
                Some(gf) => QueryIndex::with_goldfinger(&ds, &graph, gf),
            };
            for max_comparisons in [0usize, 120, 1] {
                let config = BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons };
                let profiles: Vec<Vec<u32>> =
                    (0..9u32).map(|q| ds.profile(q * 37 % 500).to_vec()).collect();
                let queries: Vec<BatchQuery> = profiles
                    .iter()
                    .enumerate()
                    .map(|(q, p)| BatchQuery { profile: p, k: 8, seed: q as u64 * 7 })
                    .collect();
                let batched = index.search_batch(&queries, &config);
                assert_eq!(batched.len(), queries.len());
                for (q, query) in queries.iter().enumerate() {
                    let single = index.search(query.profile, query.k, &config, query.seed);
                    assert_eq!(
                        batched[q].neighbors, single.neighbors,
                        "{bits:?} bits, query {q}, cap {max_comparisons}"
                    );
                    assert_eq!(
                        batched[q].comparisons, single.comparisons,
                        "{bits:?} bits, query {q}, cap {max_comparisons}: counts diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_and_batch_of_one_work() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let config = BeamSearchConfig::default();
        assert!(index.search_batch(&[], &config).is_empty());
        let profile: Vec<u32> = ds.profile(11).to_vec();
        let one = index.search_batch(&[BatchQuery { profile: &profile, k: 5, seed: 3 }], &config);
        let single = index.search(&profile, 5, &config, 3);
        assert_eq!(one[0].neighbors, single.neighbors);
        assert_eq!(one[0].comparisons, single.comparisons);
    }

    #[test]
    fn beam_search_reaches_high_recall_at_a_fraction_of_the_cost() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let config = BeamSearchConfig { beam_width: 48, entry_points: 8, max_comparisons: 0 };
        let mut total_recall = 0.0;
        let mut total_comparisons = 0usize;
        let queries = 20;
        for q in 0..queries {
            // Use existing users' profiles as out-of-sample queries.
            let query: Vec<u32> = ds.profile(q * 17).to_vec();
            let approx = index.search(&query, 10, &config, q as u64);
            let exact = index.exact_search(&query, 10);
            total_recall += QueryIndex::recall(&approx, &exact);
            total_comparisons += approx.comparisons;
        }
        let recall = total_recall / queries as f64;
        let avg_cost = total_comparisons / queries as usize;
        assert!(recall > 0.7, "beam search recall {recall:.3} too low");
        assert!(avg_cost < ds.num_users() / 2, "avg {avg_cost} comparisons ≥ half a linear scan");
    }

    #[test]
    fn goldfinger_mode_still_recalls_most_of_the_exact_answer() {
        let (ds, graph) = setup();
        let gf = GoldFinger::build(&ds, 1024, 9);
        let index = QueryIndex::with_goldfinger(&ds, &graph, &gf);
        let config = BeamSearchConfig { beam_width: 48, entry_points: 8, max_comparisons: 0 };
        let mut total_recall = 0.0;
        let queries = 10;
        for q in 0..queries {
            let query: Vec<u32> = ds.profile(q * 31).to_vec();
            let approx = index.search(&query, 10, &config, q as u64);
            let exact = index.exact_search(&query, 10);
            total_recall += QueryIndex::recall(&approx, &exact);
        }
        let recall = total_recall / queries as f64;
        assert!(recall > 0.6, "fingerprinted recall {recall:.3} too low");
    }

    #[test]
    fn exact_search_returns_true_top_k() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(0).to_vec();
        let exact = index.exact_search(&query, 5);
        // The query IS user 0's profile, so user 0 is its own best match.
        assert_eq!(exact.neighbors[0].user, 0);
        assert_eq!(exact.neighbors[0].sim, 1.0);
        assert_eq!(exact.comparisons, ds.num_users());
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(42).to_vec();
        let config = BeamSearchConfig::default();
        let a = index.search(&query, 8, &config, 9);
        let b = index.search(&query, 8, &config, 9);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.comparisons, b.comparisons);
    }

    #[test]
    fn max_comparisons_caps_the_work() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(3).to_vec();
        let config = BeamSearchConfig { beam_width: 32, entry_points: 4, max_comparisons: 50 };
        let result = index.search(&query, 10, &config, 5);
        assert!(result.comparisons <= 50 + 4, "cap exceeded: {}", result.comparisons);
        assert!(!result.neighbors.is_empty());
    }

    #[test]
    fn searcher_scratch_is_reusable() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let mut searcher = index.searcher();
        let config = BeamSearchConfig::default();
        let q1: Vec<u32> = ds.profile(1).to_vec();
        let q2: Vec<u32> = ds.profile(2).to_vec();
        let a = index.search_with(&mut searcher, &q1, 5, &config, 1);
        let b = index.search_with(&mut searcher, &q2, 5, &config, 1);
        // Both answers must match fresh-scratch searches (epoch isolation).
        assert_eq!(a.neighbors, index.search(&q1, 5, &config, 1).neighbors);
        assert_eq!(b.neighbors, index.search(&q2, 5, &config, 1).neighbors);
    }

    #[test]
    fn searcher_survives_a_growing_index() {
        // A searcher created on a small index keeps working after the
        // "epoch" swaps to a bigger one (the cnc-serve session pattern).
        let (ds, graph) = setup();
        let small = Dataset::from_profiles(vec![vec![1, 2], vec![2, 3]], 400);
        let small_sim = SimilarityData::build(SimilarityBackend::Raw, &small);
        let small_ctx =
            BuildContext { dataset: &small, sim: &small_sim, k: 2, threads: 0, seed: 1 };
        let small_graph = BruteForce.build(&small_ctx);
        let mut searcher = QueryIndex::new(&small, &small_graph).searcher();
        let config = BeamSearchConfig::default();
        let _ = QueryIndex::new(&small, &small_graph).search_with(
            &mut searcher,
            &[1, 2],
            2,
            &config,
            3,
        );

        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(9).to_vec();
        let grown = index.search_with(&mut searcher, &query, 5, &config, 3);
        assert_eq!(grown.neighbors, index.search(&query, 5, &config, 3).neighbors);
    }

    #[test]
    fn empty_dataset_returns_empty_answer() {
        let ds = Dataset::from_profiles(vec![], 0);
        let graph = KnnGraph::new(0, 3);
        let index = QueryIndex::new(&ds, &graph);
        let result = index.search(&[1, 2], 3, &BeamSearchConfig::default(), 0);
        assert!(result.neighbors.is_empty());
    }

    #[test]
    fn recall_of_identical_answers_is_one() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let query: Vec<u32> = ds.profile(7).to_vec();
        let exact = index.exact_search(&query, 5);
        assert_eq!(QueryIndex::recall(&exact, &exact), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid beam search config")]
    fn invalid_config_panics() {
        let (ds, graph) = setup();
        let index = QueryIndex::new(&ds, &graph);
        let config = BeamSearchConfig { beam_width: 2, ..Default::default() };
        index.search(&[1], 10, &config, 0);
    }

    #[test]
    #[should_panic(expected = "fingerprints must cover the dataset")]
    fn mismatched_fingerprints_rejected() {
        let (ds, graph) = setup();
        let tiny = Dataset::from_profiles(vec![vec![1]], 0);
        let gf = GoldFinger::build(&tiny, 64, 1);
        QueryIndex::with_goldfinger(&ds, &graph, &gf);
    }
}
