//! KNN **query** layer over a constructed KNN graph.
//!
//! The paper (footnote 1) distinguishes building a complete KNN *graph*
//! from answering a sequence of KNN *queries*. In practice the two
//! compose: once C² has built the graph, it doubles as a navigable index
//! for out-of-sample queries (a new user's profile, a cold-start visitor)
//! via greedy **beam search** — the standard graph-based ANN technique the
//! KNN graph enables ("KNN graphs are the first step of more advanced
//! machine-learning techniques", §I).
//!
//! [`QueryIndex`] wraps a dataset + graph and answers
//! "which k users are most similar to this arbitrary profile?" by walking
//! neighbour links from seeded entry points, expanding the best unvisited
//! candidate until the beam stabilizes — touching a tiny fraction of the
//! users a brute-force scan would.

pub mod beam;
pub mod dynamic;
pub mod index;
mod search;

pub use beam::BeamSearchConfig;
pub use dynamic::DynamicIndex;
pub use index::{BatchQuery, QueryIndex, QueryResult, Searcher};
