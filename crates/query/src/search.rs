//! The batched beam-search core shared by [`crate::QueryIndex`] and
//! [`crate::DynamicIndex`].
//!
//! The seed implementation scored every frontier expansion with one scalar
//! `Jaccard::similarity` call per candidate (the ROADMAP PR-3 follow-up:
//! "`cnc-query` still calls scalar `Jaccard::similarity` per candidate").
//! This module rewrites the expansion around
//! [`cnc_similarity::kernel::one_vs_many`]: the unvisited neighbours of
//! the expanded node are gathered into one batch and scored through a
//! monomorphized query kernel — exact Jaccard over profiles, or a
//! fixed-width GoldFinger kernel with the query fingerprinted once per
//! search. Results and comparison counts are **identical** to the scalar
//! path (locked by the equivalence tests in `index.rs` and `dynamic.rs`):
//! the batch preserves the neighbour-list visit order, so every beam and
//! frontier mutation happens in the same sequence the scalar loop
//! produced.

use crate::beam::{BeamSearchConfig, VisitedSet};
use cnc_dataset::{ItemId, UserId};
use cnc_graph::{KnnGraph, NeighborList};
use cnc_similarity::kernel::{
    one_vs_many, shared_list_sweep, SimKernel, SimSolve, MAX_SWEEP_QUERIES,
};
use cnc_similarity::Jaccard;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// A candidate in the expansion frontier, max-ordered by similarity
/// (ties on the smaller user id, for determinism).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Candidate {
    pub sim: f32,
    pub user: UserId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Similarities are never NaN (raw Jaccard and the GoldFinger
        // estimator are both finite ratios).
        self.sim.partial_cmp(&other.sim).unwrap().then_with(|| other.user.cmp(&self.user))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One greedy beam search over `graph`, scoring through `kernel`.
///
/// The kernel's rows `0..len()-1` are the graph's users and row
/// `len()-1` is the query (the query-kernel convention of
/// `cnc_similarity::kernel`). Returns the beam and the number of
/// similarity computations spent.
///
/// Batching contract: every expansion gathers the expanded node's
/// unvisited neighbours in list order into `batch` and scores them with
/// one [`one_vs_many`] call. `config.max_comparisons` reproduces the
/// scalar semantics exactly — candidate `i` of an expansion is scored iff
/// `comparisons + i < max` — and ends the search whenever a gathered
/// candidate had to be dropped, as the scalar loop did by clearing the
/// frontier.
pub(crate) fn batched_beam_search<K: SimKernel>(
    kernel: &K,
    graph: &KnnGraph,
    visited: &mut VisitedSet,
    batch: &mut Vec<UserId>,
    config: &BeamSearchConfig,
    seed: u64,
) -> (NeighborList, usize) {
    let n = kernel.len() - 1;
    debug_assert_eq!(graph.num_users(), n, "graph must cover the kernel's user rows");
    let qrow = n as u32;
    let mut comparisons = 0usize;
    let mut beam = NeighborList::new(config.beam_width);
    if n == 0 {
        return (beam, comparisons);
    }

    visited.grow(n);
    visited.clear();
    let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();

    // Entry points: distinct random users, scored as one batch. The rng
    // draw sequence does not depend on scores, so drawing first and
    // scoring after is step-for-step the scalar sequence.
    let mut rng = SmallRng::seed_from_u64(seed);
    let entries = config.entry_points.min(n);
    batch.clear();
    while batch.len() < entries {
        let user = rng.random_range(0..n as u32);
        if visited.insert(user) {
            batch.push(user);
        }
    }
    one_vs_many(kernel, qrow, batch, |j, s| {
        beam.insert(j, s);
        frontier.push(Candidate { sim: s, user: j });
    });
    comparisons += batch.len();

    while let Some(best) = frontier.pop() {
        // Greedy termination: the best unexpanded candidate cannot
        // improve a full beam.
        if beam.is_full() && best.sim < beam.worst_sim() {
            break;
        }
        batch.clear();
        for edge in graph.neighbors(best.user).iter() {
            if visited.insert(edge.user) {
                batch.push(edge.user);
            }
        }
        let mut capped = false;
        if config.max_comparisons > 0 {
            let allowed = config.max_comparisons.saturating_sub(comparisons);
            if batch.len() > allowed {
                batch.truncate(allowed);
                capped = true;
            }
        }
        one_vs_many(kernel, qrow, batch, |j, s| {
            if beam.insert(j, s) {
                frontier.push(Candidate { sim: s, user: j });
            }
        });
        comparisons += batch.len();
        if capped {
            break;
        }
    }
    (beam, comparisons)
}

/// Per-query state of one lane of a cross-query batch. Lanes share no
/// state — only execution — so each lane's operation sequence is exactly
/// its single-query sequence and bit-identity to [`batched_beam_search`]
/// follows by construction (and is locked by `tests/slo.rs`).
struct QueryLane {
    visited: VisitedSet,
    batch: Vec<UserId>,
    frontier: BinaryHeap<Candidate>,
    beam: NeighborList,
    comparisons: usize,
    done: bool,
    capped: bool,
}

/// Cross-query batched beam search: runs up to [`MAX_SWEEP_QUERIES`]
/// independent greedy searches in lockstep so that queries expanding the
/// **same node** in the same round share one sweep over that node's
/// neighbour list ([`shared_list_sweep`]): the candidate rows are gathered
/// once and scored against every interested query row while cache-hot.
///
/// The kernel's rows `0..len()-Q` are the graph's users and row `n + q`
/// is query `q` (the multi-query kernel convention). `seeds[q]` drives
/// query `q`'s entry draws. Per query, the returned beam and comparison
/// count are bit-identical to [`batched_beam_search`] with the same seed:
/// each lane pops, gathers, truncates and scores in exactly the
/// single-query order; only execution across lanes is interleaved, and
/// the shared sweep computes exactly the union of the pairs the lanes
/// would have computed alone.
pub(crate) fn batched_multi_beam_search<K: SimKernel>(
    kernel: &K,
    num_queries: usize,
    graph: &KnnGraph,
    config: &BeamSearchConfig,
    seeds: &[u64],
) -> Vec<(NeighborList, usize)> {
    assert!(num_queries <= MAX_SWEEP_QUERIES, "at most {MAX_SWEEP_QUERIES} queries per batch");
    assert_eq!(seeds.len(), num_queries, "one seed per query");
    let n = kernel.len() - num_queries;
    debug_assert_eq!(graph.num_users(), n, "graph must cover the kernel's user rows");
    if n == 0 || num_queries == 0 {
        return (0..num_queries).map(|_| (NeighborList::new(config.beam_width), 0)).collect();
    }

    let mut lanes: Vec<QueryLane> = (0..num_queries)
        .map(|_| QueryLane {
            visited: VisitedSet::new(n),
            batch: Vec::new(),
            frontier: BinaryHeap::new(),
            beam: NeighborList::new(config.beam_width),
            comparisons: 0,
            done: false,
            capped: false,
        })
        .collect();

    // Entry phase: per-lane random draws and a per-lane scoring batch.
    // Entry sets are small and unrelated across lanes, so nothing is
    // shared here; the draw-then-score order matches the single path.
    for (q, lane) in lanes.iter_mut().enumerate() {
        lane.visited.clear();
        let mut rng = SmallRng::seed_from_u64(seeds[q]);
        let entries = config.entry_points.min(n);
        while lane.batch.len() < entries {
            let user = rng.random_range(0..n as u32);
            if lane.visited.insert(user) {
                lane.batch.push(user);
            }
        }
        let qrow = (n + q) as u32;
        let (beam, frontier) = (&mut lane.beam, &mut lane.frontier);
        one_vs_many(kernel, qrow, &lane.batch, |j, s| {
            beam.insert(j, s);
            frontier.push(Candidate { sim: s, user: j });
        });
        lane.comparisons += lane.batch.len();
    }

    // Lockstep rounds: each active lane pops its best frontier candidate
    // and either terminates (greedy condition / exhausted frontier) or
    // requests an expansion. Requests for the same node are grouped and
    // served by one shared sweep over that node's neighbour list.
    let mut groups: BTreeMap<UserId, Vec<usize>> = BTreeMap::new();
    let mut list: Vec<UserId> = Vec::new();
    let mut masks: Vec<u64> = Vec::new();
    let mut query_rows: Vec<u32> = Vec::new();
    loop {
        groups.clear();
        for (q, lane) in lanes.iter_mut().enumerate() {
            if lane.done {
                continue;
            }
            match lane.frontier.pop() {
                None => lane.done = true,
                Some(best) => {
                    if lane.beam.is_full() && best.sim < lane.beam.worst_sim() {
                        lane.done = true;
                        continue;
                    }
                    lane.batch.clear();
                    for edge in graph.neighbors(best.user).iter() {
                        if lane.visited.insert(edge.user) {
                            lane.batch.push(edge.user);
                        }
                    }
                    lane.capped = false;
                    if config.max_comparisons > 0 {
                        let allowed = config.max_comparisons.saturating_sub(lane.comparisons);
                        if lane.batch.len() > allowed {
                            lane.batch.truncate(allowed);
                            lane.capped = true;
                        }
                    }
                    groups.entry(best.user).or_default().push(q);
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        for (&node, members) in &groups {
            list.clear();
            masks.clear();
            for edge in graph.neighbors(node).iter() {
                list.push(edge.user);
                masks.push(0);
            }
            // Each lane's batch is (a truncated prefix of) the subsequence
            // of `list` that passed its visited filter, in list order, so
            // a single forward match recovers the positions.
            for (bit, &q) in members.iter().enumerate() {
                let batch = &lanes[q].batch;
                let mut ptr = 0usize;
                for (p, &u) in list.iter().enumerate() {
                    if ptr == batch.len() {
                        break;
                    }
                    if batch[ptr] == u {
                        masks[p] |= 1 << bit;
                        ptr += 1;
                    }
                }
                debug_assert_eq!(ptr, batch.len(), "batch must be a subsequence of the list");
            }
            query_rows.clear();
            query_rows.extend(members.iter().map(|&q| (n + q) as u32));
            shared_list_sweep(kernel, &query_rows, &list, &masks, |local, j, s| {
                let lane = &mut lanes[members[local]];
                if lane.beam.insert(j, s) {
                    lane.frontier.push(Candidate { sim: s, user: j });
                }
            });
            for &q in members {
                let lane = &mut lanes[q];
                lane.comparisons += lane.batch.len();
                if lane.capped {
                    lane.done = true;
                }
            }
        }
    }
    lanes.into_iter().map(|lane| (lane.beam, lane.comparisons)).collect()
}

/// The cross-query search as a [`SimSolve`] visitor, so
/// [`cnc_similarity::kernel::solve_multi_query_words`] can pick the
/// fixed-width GoldFinger specialization once per batch.
pub(crate) struct MultiBeamSolve<'a> {
    pub graph: &'a KnnGraph,
    pub num_queries: usize,
    pub config: &'a BeamSearchConfig,
    pub seeds: &'a [u64],
}

impl SimSolve for MultiBeamSolve<'_> {
    type Output = Vec<(NeighborList, usize)>;

    fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
        batched_multi_beam_search(kernel, self.num_queries, self.graph, self.config, self.seeds)
    }
}

/// The beam search as a [`SimSolve`] visitor, so
/// [`cnc_similarity::kernel::solve_query_words`] can pick the fixed-width
/// GoldFinger specialization once per query and monomorphize the whole
/// search against it.
pub(crate) struct BeamSolve<'a> {
    pub graph: &'a KnnGraph,
    pub visited: &'a mut VisitedSet,
    pub batch: &'a mut Vec<UserId>,
    pub config: &'a BeamSearchConfig,
    pub seed: u64,
}

impl SimSolve for BeamSolve<'_> {
    type Output = (NeighborList, usize);

    fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
        batched_beam_search(kernel, self.graph, self.visited, self.batch, self.config, self.seed)
    }
}

/// Exact-Jaccard query kernel over owned profile vectors — the
/// [`crate::DynamicIndex`] storage, which grows online and therefore has
/// no immutable CSR `Dataset` to hand to
/// [`cnc_similarity::kernel::RawQueryKernel`]. Same row convention: rows
/// `0..n` are the stored users, row `n` is the query.
pub(crate) struct ProfilesQueryKernel<'a> {
    profiles: &'a [Vec<ItemId>],
    query: &'a [ItemId],
}

impl<'a> ProfilesQueryKernel<'a> {
    pub fn new(profiles: &'a [Vec<ItemId>], query: &'a [ItemId]) -> Self {
        ProfilesQueryKernel { profiles, query }
    }

    #[inline]
    fn profile(&self, i: u32) -> &[ItemId] {
        if i as usize == self.profiles.len() {
            self.query
        } else {
            &self.profiles[i as usize]
        }
    }
}

impl SimKernel for ProfilesQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.profiles.len() + 1
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        Jaccard::similarity(self.profile(i), self.profile(j)) as f32
    }
}
