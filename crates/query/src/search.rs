//! The batched beam-search core shared by [`crate::QueryIndex`] and
//! [`crate::DynamicIndex`].
//!
//! The seed implementation scored every frontier expansion with one scalar
//! `Jaccard::similarity` call per candidate (the ROADMAP PR-3 follow-up:
//! "`cnc-query` still calls scalar `Jaccard::similarity` per candidate").
//! This module rewrites the expansion around
//! [`cnc_similarity::kernel::one_vs_many`]: the unvisited neighbours of
//! the expanded node are gathered into one batch and scored through a
//! monomorphized query kernel — exact Jaccard over profiles, or a
//! fixed-width GoldFinger kernel with the query fingerprinted once per
//! search. Results and comparison counts are **identical** to the scalar
//! path (locked by the equivalence tests in `index.rs` and `dynamic.rs`):
//! the batch preserves the neighbour-list visit order, so every beam and
//! frontier mutation happens in the same sequence the scalar loop
//! produced.

use crate::beam::{BeamSearchConfig, VisitedSet};
use cnc_dataset::{ItemId, UserId};
use cnc_graph::{KnnGraph, NeighborList};
use cnc_similarity::kernel::{one_vs_many, SimKernel, SimSolve};
use cnc_similarity::Jaccard;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate in the expansion frontier, max-ordered by similarity
/// (ties on the smaller user id, for determinism).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Candidate {
    pub sim: f32,
    pub user: UserId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Similarities are never NaN (raw Jaccard and the GoldFinger
        // estimator are both finite ratios).
        self.sim.partial_cmp(&other.sim).unwrap().then_with(|| other.user.cmp(&self.user))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One greedy beam search over `graph`, scoring through `kernel`.
///
/// The kernel's rows `0..len()-1` are the graph's users and row
/// `len()-1` is the query (the query-kernel convention of
/// `cnc_similarity::kernel`). Returns the beam and the number of
/// similarity computations spent.
///
/// Batching contract: every expansion gathers the expanded node's
/// unvisited neighbours in list order into `batch` and scores them with
/// one [`one_vs_many`] call. `config.max_comparisons` reproduces the
/// scalar semantics exactly — candidate `i` of an expansion is scored iff
/// `comparisons + i < max` — and ends the search whenever a gathered
/// candidate had to be dropped, as the scalar loop did by clearing the
/// frontier.
pub(crate) fn batched_beam_search<K: SimKernel>(
    kernel: &K,
    graph: &KnnGraph,
    visited: &mut VisitedSet,
    batch: &mut Vec<UserId>,
    config: &BeamSearchConfig,
    seed: u64,
) -> (NeighborList, usize) {
    let n = kernel.len() - 1;
    debug_assert_eq!(graph.num_users(), n, "graph must cover the kernel's user rows");
    let qrow = n as u32;
    let mut comparisons = 0usize;
    let mut beam = NeighborList::new(config.beam_width);
    if n == 0 {
        return (beam, comparisons);
    }

    visited.grow(n);
    visited.clear();
    let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();

    // Entry points: distinct random users, scored as one batch. The rng
    // draw sequence does not depend on scores, so drawing first and
    // scoring after is step-for-step the scalar sequence.
    let mut rng = SmallRng::seed_from_u64(seed);
    let entries = config.entry_points.min(n);
    batch.clear();
    while batch.len() < entries {
        let user = rng.random_range(0..n as u32);
        if visited.insert(user) {
            batch.push(user);
        }
    }
    one_vs_many(kernel, qrow, batch, |j, s| {
        beam.insert(j, s);
        frontier.push(Candidate { sim: s, user: j });
    });
    comparisons += batch.len();

    while let Some(best) = frontier.pop() {
        // Greedy termination: the best unexpanded candidate cannot
        // improve a full beam.
        if beam.is_full() && best.sim < beam.worst_sim() {
            break;
        }
        batch.clear();
        for edge in graph.neighbors(best.user).iter() {
            if visited.insert(edge.user) {
                batch.push(edge.user);
            }
        }
        let mut capped = false;
        if config.max_comparisons > 0 {
            let allowed = config.max_comparisons.saturating_sub(comparisons);
            if batch.len() > allowed {
                batch.truncate(allowed);
                capped = true;
            }
        }
        one_vs_many(kernel, qrow, batch, |j, s| {
            if beam.insert(j, s) {
                frontier.push(Candidate { sim: s, user: j });
            }
        });
        comparisons += batch.len();
        if capped {
            break;
        }
    }
    (beam, comparisons)
}

/// The beam search as a [`SimSolve`] visitor, so
/// [`cnc_similarity::kernel::solve_query_words`] can pick the fixed-width
/// GoldFinger specialization once per query and monomorphize the whole
/// search against it.
pub(crate) struct BeamSolve<'a> {
    pub graph: &'a KnnGraph,
    pub visited: &'a mut VisitedSet,
    pub batch: &'a mut Vec<UserId>,
    pub config: &'a BeamSearchConfig,
    pub seed: u64,
}

impl SimSolve for BeamSolve<'_> {
    type Output = (NeighborList, usize);

    fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
        batched_beam_search(kernel, self.graph, self.visited, self.batch, self.config, self.seed)
    }
}

/// Exact-Jaccard query kernel over owned profile vectors — the
/// [`crate::DynamicIndex`] storage, which grows online and therefore has
/// no immutable CSR `Dataset` to hand to
/// [`cnc_similarity::kernel::RawQueryKernel`]. Same row convention: rows
/// `0..n` are the stored users, row `n` is the query.
pub(crate) struct ProfilesQueryKernel<'a> {
    profiles: &'a [Vec<ItemId>],
    query: &'a [ItemId],
}

impl<'a> ProfilesQueryKernel<'a> {
    pub fn new(profiles: &'a [Vec<ItemId>], query: &'a [ItemId]) -> Self {
        ProfilesQueryKernel { profiles, query }
    }

    #[inline]
    fn profile(&self, i: u32) -> &[ItemId] {
        if i as usize == self.profiles.len() {
            self.query
        } else {
            &self.profiles[i as usize]
        }
    }
}

impl SimKernel for ProfilesQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.profiles.len() + 1
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        Jaccard::similarity(self.profile(i), self.profile(j)) as f32
    }
}
