//! Online maintenance: absorbing new users without rebuilding the graph.
//!
//! The paper's motivating scenario is freshness ("online news recommenders,
//! in which the use of fresh data is of utmost importance", §I): between two
//! full C² rebuilds, newly arrived users still need neighbourhoods *now*.
//! [`DynamicIndex`] owns the built graph and answers that need:
//!
//! * [`DynamicIndex::add_user`] beam-searches the current graph for the
//!   newcomer's approximate KNN, installs it, and offers the newcomer as a
//!   reverse neighbour to every user it visited — so existing
//!   neighbourhoods keep improving too;
//! * the beam expansion is batched through
//!   [`cnc_similarity::kernel::one_vs_many`] (see [`crate::search`]), over
//!   raw profiles or — in [`DynamicIndex::with_goldfinger`] mode — over a
//!   growable fingerprint set that absorbs each newcomer with
//!   [`GoldFinger::push_user`];
//! * the amortized cost per insertion is a few hundred similarities,
//!   versus `n` for a linear scan and a full rebuild for batch algorithms.
//!
//! A production deployment alternates: C² rebuild every epoch,
//! [`DynamicIndex`] absorbing the stream in between — exactly the writer
//! loop of `cnc-serve`'s `ServingEngine`, which snapshots this index's
//! state into the next published epoch.

use crate::beam::{BeamSearchConfig, VisitedSet};
use crate::search::{batched_beam_search, BeamSolve, ProfilesQueryKernel};
use cnc_dataset::{Dataset, DatasetBuilder, ItemId, UserId};
use cnc_graph::{KnnGraph, Neighbor};
use cnc_similarity::kernel::solve_query_words;
use cnc_similarity::GoldFinger;

/// A growable KNN index: a snapshot graph plus online insertions.
pub struct DynamicIndex {
    profiles: Vec<Vec<ItemId>>,
    graph: KnnGraph,
    config: BeamSearchConfig,
    base_users: usize,
    /// Item-universe floor carried from the source dataset, so
    /// [`DynamicIndex::to_dataset`] reproduces its `num_items` even when
    /// no stored profile references the last items.
    min_num_items: u32,
    /// Growable fingerprints mirroring `profiles` (fingerprint scoring
    /// mode); `None` scores with exact Jaccard on the raw profiles.
    fingerprints: Option<GoldFinger>,
}

impl DynamicIndex {
    /// Takes ownership of a built graph and copies the profiles it was
    /// built on; insertions are scored with exact Jaccard.
    ///
    /// # Panics
    /// Panics if the graph and dataset disagree on the user count, or the
    /// beam configuration is invalid for the graph's `k`.
    pub fn new(dataset: &Dataset, graph: KnnGraph, config: BeamSearchConfig) -> Self {
        Self::build(dataset, graph, config, None)
    }

    /// Like [`DynamicIndex::new`], but scores insertions on GoldFinger
    /// fingerprints (which must cover the dataset); each inserted user's
    /// fingerprint is appended, keeping the set aligned with the profiles.
    ///
    /// # Panics
    /// Panics additionally if the fingerprints don't cover the dataset.
    pub fn with_goldfinger(
        dataset: &Dataset,
        graph: KnnGraph,
        config: BeamSearchConfig,
        fingerprints: GoldFinger,
    ) -> Self {
        assert_eq!(
            fingerprints.num_users(),
            dataset.num_users(),
            "fingerprints must cover the dataset"
        );
        Self::build(dataset, graph, config, Some(fingerprints))
    }

    fn build(
        dataset: &Dataset,
        graph: KnnGraph,
        config: BeamSearchConfig,
        fingerprints: Option<GoldFinger>,
    ) -> Self {
        assert_eq!(dataset.num_users(), graph.num_users(), "graph/dataset user mismatch");
        if let Err(msg) = config.validate(graph.k()) {
            panic!("invalid beam search config: {msg}");
        }
        DynamicIndex {
            profiles: dataset.iter().map(|(_, p)| p.to_vec()).collect(),
            base_users: dataset.num_users(),
            min_num_items: dataset.num_items() as u32,
            graph,
            config,
            fingerprints,
        }
    }

    /// Current number of users (base + inserted).
    pub fn num_users(&self) -> usize {
        self.profiles.len()
    }

    /// Users inserted since the snapshot.
    pub fn inserted_users(&self) -> usize {
        self.profiles.len() - self.base_users
    }

    /// The ids of the users inserted since the snapshot (insertions only
    /// ever append, so the set is the contiguous tail of the id space).
    /// The serving layer passes these to the incremental rebuild so
    /// exactly the clusters touched by the stream are marked dirty.
    pub fn inserted_ids(&self) -> std::ops::Range<UserId> {
        self.base_users as UserId..self.profiles.len() as UserId
    }

    /// The profile of `user`.
    pub fn profile(&self, user: UserId) -> &[ItemId] {
        &self.profiles[user as usize]
    }

    /// The current neighbourhood of `user` (best first).
    pub fn knn(&self, user: UserId) -> Vec<Neighbor> {
        self.graph.neighbors(user).sorted()
    }

    /// The underlying graph (e.g. to hand to a recommender).
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// The growable fingerprint set, when scoring on fingerprints.
    pub fn fingerprints(&self) -> Option<&GoldFinger> {
        self.fingerprints.as_ref()
    }

    /// Materializes the current profiles (base + inserted) as an immutable
    /// CSR dataset — the input of the next epoch's full rebuild in the
    /// serve loop. Item ids keep the source dataset's universe floor.
    pub fn to_dataset(&self) -> Dataset {
        let mut builder = DatasetBuilder::with_capacity(self.profiles.len());
        for profile in &self.profiles {
            // Stored profiles are sorted and deduplicated on insertion.
            builder.push_sorted_profile(profile);
        }
        builder.build_with_min_items(self.min_num_items)
    }

    /// Inserts a new user with the given profile; returns her id and the
    /// number of similarity computations spent.
    ///
    /// The newcomer's KNN comes from a batched beam search over the
    /// current graph; every user *visited* by the search is also offered
    /// the newcomer as a candidate neighbour (the symmetric update that
    /// keeps the graph fresh for existing users).
    ///
    /// `config.max_comparisons` bounds the placement search exactly like
    /// a query (a change from the original insertion loop, which ignored
    /// the cap) — insert latency needs the same SLO protection queries
    /// get, and the semantics are locked by the capped equivalence test
    /// below.
    pub fn add_user(&mut self, mut profile: Vec<ItemId>, seed: u64) -> (UserId, usize) {
        profile.sort_unstable();
        profile.dedup();
        let new_id = self.profiles.len() as UserId;

        // Beam search against current members (the newcomer is not yet in
        // the graph, so the search space is exactly the existing users).
        let mut visited = VisitedSet::new(self.profiles.len());
        let mut batch = Vec::new();
        let (beam, comparisons) = match &self.fingerprints {
            None => batched_beam_search(
                &ProfilesQueryKernel::new(&self.profiles, &profile),
                &self.graph,
                &mut visited,
                &mut batch,
                &self.config,
                seed,
            ),
            Some(gf) => {
                let qwords = gf.fingerprint_profile(&profile);
                solve_query_words(
                    gf.words(),
                    gf.words_per_user(),
                    &qwords,
                    BeamSolve {
                        graph: &self.graph,
                        visited: &mut visited,
                        batch: &mut batch,
                        config: &self.config,
                        seed,
                    },
                )
            }
        };

        // Install the newcomer.
        if let Some(gf) = &mut self.fingerprints {
            gf.push_user(&profile);
        }
        self.profiles.push(profile);
        self.graph.add_user();
        for nb in beam.sorted() {
            self.graph.insert(new_id, nb.user, nb.sim);
            // Symmetric update: the newcomer may be a better neighbour for
            // users the search touched.
            self.graph.insert(nb.user, new_id, nb.sim);
        }
        (new_id, comparisons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_baselines::{BruteForce, BuildContext, KnnAlgorithm};
    use cnc_dataset::SyntheticConfig;
    use cnc_graph::NeighborList;
    use cnc_similarity::{Jaccard, SimilarityBackend, SimilarityData};
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BinaryHeap;

    fn base() -> (Dataset, KnnGraph) {
        let mut cfg = SyntheticConfig::small(909);
        cfg.num_users = 400;
        cfg.num_items = 300;
        cfg.communities = 8;
        cfg.mean_profile = 20.0;
        cfg.min_profile = 8;
        let ds = cfg.generate();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 10, threads: 0, seed: 2 };
        (ds.clone(), BruteForce.build(&ctx))
    }

    fn config() -> BeamSearchConfig {
        BeamSearchConfig { beam_width: 32, entry_points: 6, max_comparisons: 0 }
    }

    /// The seed implementation's scalar insertion loop, kept as the
    /// reference the batched [`DynamicIndex::add_user`] must reproduce —
    /// the installed id, the comparison count, and the final graph.
    fn scalar_add_user(
        profiles: &[Vec<ItemId>],
        graph: &mut KnnGraph,
        config: &BeamSearchConfig,
        mut profile: Vec<ItemId>,
        seed: u64,
    ) -> (UserId, usize) {
        profile.sort_unstable();
        profile.dedup();
        let new_id = profiles.len() as UserId;
        let n = profiles.len();
        let mut comparisons = 0usize;
        let mut beam = NeighborList::new(config.beam_width);
        if n > 0 {
            let mut visited = VisitedSet::new(n);
            visited.clear();
            let mut frontier: BinaryHeap<crate::search::Candidate> = BinaryHeap::new();
            let mut rng = SmallRng::seed_from_u64(seed);
            let entries = config.entry_points.min(n);
            while frontier.len() < entries {
                let user = rng.random_range(0..n as u32);
                if visited.insert(user) {
                    let sim = Jaccard::similarity(&profile, &profiles[user as usize]) as f32;
                    comparisons += 1;
                    beam.insert(user, sim);
                    frontier.push(crate::search::Candidate { sim, user });
                }
            }
            while let Some(best) = frontier.pop() {
                if beam.is_full() && best.sim < beam.worst_sim() {
                    break;
                }
                for edge in graph.neighbors(best.user).iter() {
                    if !visited.insert(edge.user) {
                        continue;
                    }
                    // The cap semantics add_user now shares with queries.
                    if config.max_comparisons > 0 && comparisons >= config.max_comparisons {
                        frontier.clear();
                        break;
                    }
                    let sim = Jaccard::similarity(&profile, &profiles[edge.user as usize]) as f32;
                    comparisons += 1;
                    if beam.insert(edge.user, sim) {
                        frontier.push(crate::search::Candidate { sim, user: edge.user });
                    }
                }
            }
        }
        graph.add_user();
        for nb in beam.sorted() {
            graph.insert(new_id, nb.user, nb.sim);
            graph.insert(nb.user, new_id, nb.sim);
        }
        (new_id, comparisons)
    }

    #[test]
    fn batched_insertion_is_identical_to_the_scalar_path() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph.clone(), config());
        let mut ref_profiles: Vec<Vec<ItemId>> = ds.iter().map(|(_, p)| p.to_vec()).collect();
        let mut ref_graph = graph;
        for i in 0..30u32 {
            let mut profile = ds.profile((i * 13) % 400).to_vec();
            profile.push(295 + i % 5);
            let got = index.add_user(profile.clone(), i as u64);
            let expect = scalar_add_user(
                &ref_profiles,
                &mut ref_graph,
                &config(),
                profile.clone(),
                i as u64,
            );
            assert_eq!(got, expect, "insertion {i} diverged");
            profile.sort_unstable();
            profile.dedup();
            ref_profiles.push(profile);
        }
        for u in 0..index.num_users() as u32 {
            assert_eq!(index.knn(u), ref_graph.neighbors(u).sorted(), "user {u} lists diverged");
        }
    }

    #[test]
    fn capped_insertions_match_the_capped_scalar_reference() {
        // max_comparisons now bounds insert placement like a query (a
        // deliberate change from the seed loop, which ignored the cap on
        // inserts); the batched path must match a capped scalar loop in
        // results, counts and the final graph.
        let (ds, graph) = base();
        let capped = BeamSearchConfig { max_comparisons: 40, ..config() };
        let mut index = DynamicIndex::new(&ds, graph.clone(), capped);
        let mut ref_profiles: Vec<Vec<ItemId>> = ds.iter().map(|(_, p)| p.to_vec()).collect();
        let mut ref_graph = graph;
        for i in 0..15u32 {
            let profile = ds.profile((i * 19) % 400).to_vec();
            let got = index.add_user(profile.clone(), i as u64);
            let expect =
                scalar_add_user(&ref_profiles, &mut ref_graph, &capped, profile.clone(), i as u64);
            assert_eq!(got, expect, "capped insertion {i} diverged");
            assert!(got.1 <= 40 + capped.entry_points, "cap ignored: {} comparisons", got.1);
            ref_profiles.push(profile);
        }
        for u in 0..index.num_users() as u32 {
            assert_eq!(index.knn(u), ref_graph.neighbors(u).sorted(), "user {u} lists diverged");
        }
    }

    #[test]
    fn goldfinger_insertions_track_the_growable_fingerprints() {
        let (ds, graph) = base();
        let gf = GoldFinger::build(&ds, 1024, 17);
        let mut index = DynamicIndex::with_goldfinger(&ds, graph, config(), gf);
        let mut perfect = 0;
        for i in 0..10u32 {
            let twin = ds.profile(i * 3).to_vec();
            let (id, comparisons) = index.add_user(twin.clone(), i as u64);
            assert!(comparisons > 0);
            // The grown set's last row must equal a fresh fingerprint of
            // the (sorted, deduplicated) inserted profile.
            let gf = index.fingerprints().unwrap();
            assert_eq!(gf.num_users(), index.num_users());
            assert_eq!(gf.fingerprint(id), gf.fingerprint_profile(&twin));
            // A twin scores 1.0 against its donor on fingerprints; greedy
            // beam search misses a donor on unlucky seeds (it does on the
            // raw path too), so require a solid majority rather than all.
            perfect += usize::from(index.knn(id)[0].sim == 1.0);
        }
        assert!(perfect >= 7, "only {perfect}/10 twins navigated to their donors");
    }

    #[test]
    fn to_dataset_round_trips_profiles_and_item_universe() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        assert_eq!(index.to_dataset(), ds, "no insertions: identical dataset");
        index.add_user(vec![5, 1, 5, 2], 1);
        let grown = index.to_dataset();
        assert_eq!(grown.num_users(), ds.num_users() + 1);
        assert_eq!(grown.num_items(), ds.num_items(), "item universe floor preserved");
        assert_eq!(grown.profile(ds.num_users() as u32), &[1, 2, 5]);
    }

    #[test]
    fn inserted_user_gets_meaningful_neighbors() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        // Insert a twin of user 0.
        let twin = ds.profile(0).to_vec();
        let (id, comparisons) = index.add_user(twin, 5);
        assert_eq!(id as usize, ds.num_users());
        assert!(comparisons < ds.num_users(), "insertion cost {comparisons} ≥ linear scan");
        let knn = index.knn(id);
        assert!(!knn.is_empty());
        assert_eq!(knn[0].user, 0, "the twin's best neighbour must be user 0");
        assert_eq!(knn[0].sim, 1.0);
    }

    #[test]
    fn symmetric_update_reaches_existing_users() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let twin = ds.profile(7).to_vec();
        let (id, _) = index.add_user(twin, 9);
        // User 7 now has a similarity-1.0 neighbour available: the twin.
        let knn7 = index.knn(7);
        assert!(
            knn7.iter().any(|n| n.user == id && n.sim == 1.0),
            "user 7 did not receive the newcomer as a neighbour: {knn7:?}"
        );
    }

    #[test]
    fn many_insertions_keep_costs_sublinear() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let mut total = 0usize;
        for i in 0..50u32 {
            let donor = (i * 7) % 400;
            let mut profile = ds.profile(donor).to_vec();
            profile.push(290 + i % 10); // slight perturbation
            let (_, c) = index.add_user(profile, i as u64);
            total += c;
        }
        assert_eq!(index.inserted_users(), 50);
        assert_eq!(index.num_users(), 450);
        let avg = total / 50;
        assert!(avg < 300, "avg insertion cost {avg} too close to a full scan");
    }

    #[test]
    fn inserted_ids_cover_exactly_the_absorbed_tail() {
        let (ds, graph) = base();
        let n = ds.num_users() as u32;
        let mut index = DynamicIndex::new(&ds, graph, config());
        assert!(index.inserted_ids().is_empty());
        index.add_user(vec![1, 2], 1);
        index.add_user(vec![2, 3], 2);
        assert_eq!(index.inserted_ids(), n..n + 2);
        assert_eq!(index.inserted_ids().len(), index.inserted_users());
    }

    #[test]
    fn insertion_into_empty_index_works() {
        let ds = Dataset::from_profiles(vec![], 0);
        let graph = KnnGraph::new(0, 5);
        let mut index = DynamicIndex::new(&ds, graph, config());
        let (first, c0) = index.add_user(vec![1, 2, 3], 1);
        assert_eq!(first, 0);
        assert_eq!(c0, 0);
        assert!(index.knn(first).is_empty(), "first user has nobody to connect to");
        let (second, _) = index.add_user(vec![1, 2, 3, 4], 2);
        assert_eq!(index.knn(second)[0].user, first);
        assert!(index.knn(first).iter().any(|n| n.user == second));
    }

    #[test]
    fn duplicate_items_in_new_profile_are_deduplicated() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let (id, _) = index.add_user(vec![5, 5, 3, 3, 1], 1);
        assert_eq!(index.profile(id), &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "invalid beam search config")]
    fn invalid_config_rejected() {
        let (ds, graph) = base();
        let bad = BeamSearchConfig { beam_width: 1, ..config() };
        DynamicIndex::new(&ds, graph, bad);
    }

    #[test]
    #[should_panic(expected = "fingerprints must cover the dataset")]
    fn mismatched_fingerprints_rejected() {
        let (ds, graph) = base();
        let tiny = Dataset::from_profiles(vec![vec![1]], 0);
        let gf = GoldFinger::build(&tiny, 64, 1);
        DynamicIndex::with_goldfinger(&ds, graph, config(), gf);
    }
}
