//! Online maintenance: absorbing new users without rebuilding the graph.
//!
//! The paper's motivating scenario is freshness ("online news recommenders,
//! in which the use of fresh data is of utmost importance", §I): between two
//! full C² rebuilds, newly arrived users still need neighbourhoods *now*.
//! [`DynamicIndex`] owns the built graph and answers that need:
//!
//! * [`DynamicIndex::add_user`] beam-searches the current graph for the
//!   newcomer's approximate KNN, installs it, and offers the newcomer as a
//!   reverse neighbour to every user it visited — so existing
//!   neighbourhoods keep improving too;
//! * the amortized cost per insertion is a few hundred similarities,
//!   versus `n` for a linear scan and a full rebuild for batch algorithms.
//!
//! A production deployment would alternate: C² rebuild every epoch,
//! [`DynamicIndex`] absorbing the stream in between.

use crate::beam::{BeamSearchConfig, VisitedSet};
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::{KnnGraph, Neighbor, NeighborList};
use cnc_similarity::Jaccard;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq)]
struct Candidate {
    sim: f32,
    user: UserId,
}

impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim.partial_cmp(&other.sim).unwrap().then_with(|| other.user.cmp(&self.user))
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A growable KNN index: a snapshot graph plus online insertions.
pub struct DynamicIndex {
    profiles: Vec<Vec<ItemId>>,
    graph: KnnGraph,
    config: BeamSearchConfig,
    base_users: usize,
}

impl DynamicIndex {
    /// Takes ownership of a built graph and copies the profiles it was
    /// built on.
    ///
    /// # Panics
    /// Panics if the graph and dataset disagree on the user count, or the
    /// beam configuration is invalid for the graph's `k`.
    pub fn new(dataset: &Dataset, graph: KnnGraph, config: BeamSearchConfig) -> Self {
        assert_eq!(dataset.num_users(), graph.num_users(), "graph/dataset user mismatch");
        if let Err(msg) = config.validate(graph.k()) {
            panic!("invalid beam search config: {msg}");
        }
        DynamicIndex {
            profiles: dataset.iter().map(|(_, p)| p.to_vec()).collect(),
            base_users: dataset.num_users(),
            graph,
            config,
        }
    }

    /// Current number of users (base + inserted).
    pub fn num_users(&self) -> usize {
        self.profiles.len()
    }

    /// Users inserted since the snapshot.
    pub fn inserted_users(&self) -> usize {
        self.profiles.len() - self.base_users
    }

    /// The profile of `user`.
    pub fn profile(&self, user: UserId) -> &[ItemId] {
        &self.profiles[user as usize]
    }

    /// The current neighbourhood of `user` (best first).
    pub fn knn(&self, user: UserId) -> Vec<Neighbor> {
        self.graph.neighbors(user).sorted()
    }

    /// The underlying graph (e.g. to hand to a recommender).
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// Inserts a new user with the given profile; returns her id and the
    /// number of similarity computations spent.
    ///
    /// The newcomer's KNN comes from a beam search over the current graph;
    /// every user *visited* by the search is also offered the newcomer as a
    /// candidate neighbour (the symmetric update that keeps the graph fresh
    /// for existing users).
    pub fn add_user(&mut self, mut profile: Vec<ItemId>, seed: u64) -> (UserId, usize) {
        profile.sort_unstable();
        profile.dedup();
        let new_id = self.profiles.len() as UserId;

        // Beam search against current members (the newcomer is not yet in
        // the graph, so the search space is exactly the existing users).
        let n = self.profiles.len();
        let mut comparisons = 0usize;
        let mut beam = NeighborList::new(self.config.beam_width);
        if n > 0 {
            let mut visited = VisitedSet::new(n);
            visited.clear();
            let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
            let mut rng = SmallRng::seed_from_u64(seed);
            let entries = self.config.entry_points.min(n);
            while frontier.len() < entries {
                let user = rng.random_range(0..n as u32);
                if visited.insert(user) {
                    let sim = Jaccard::similarity(&profile, &self.profiles[user as usize]) as f32;
                    comparisons += 1;
                    beam.insert(user, sim);
                    frontier.push(Candidate { sim, user });
                }
            }
            while let Some(best) = frontier.pop() {
                if beam.is_full() && best.sim < beam.worst_sim() {
                    break;
                }
                for edge in self.graph.neighbors(best.user).iter() {
                    if !visited.insert(edge.user) {
                        continue;
                    }
                    let sim =
                        Jaccard::similarity(&profile, &self.profiles[edge.user as usize]) as f32;
                    comparisons += 1;
                    if beam.insert(edge.user, sim) {
                        frontier.push(Candidate { sim, user: edge.user });
                    }
                }
            }
        }

        // Install the newcomer.
        self.profiles.push(profile);
        self.graph.add_user();
        for nb in beam.sorted() {
            self.graph.insert(new_id, nb.user, nb.sim);
            // Symmetric update: the newcomer may be a better neighbour for
            // users the search touched.
            self.graph.insert(nb.user, new_id, nb.sim);
        }
        (new_id, comparisons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_baselines::{BruteForce, BuildContext, KnnAlgorithm};
    use cnc_dataset::SyntheticConfig;
    use cnc_similarity::{SimilarityBackend, SimilarityData};

    fn base() -> (Dataset, KnnGraph) {
        let mut cfg = SyntheticConfig::small(909);
        cfg.num_users = 400;
        cfg.num_items = 300;
        cfg.communities = 8;
        cfg.mean_profile = 20.0;
        cfg.min_profile = 8;
        let ds = cfg.generate();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 10, threads: 0, seed: 2 };
        (ds.clone(), BruteForce.build(&ctx))
    }

    fn config() -> BeamSearchConfig {
        BeamSearchConfig { beam_width: 32, entry_points: 6, max_comparisons: 0 }
    }

    #[test]
    fn inserted_user_gets_meaningful_neighbors() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        // Insert a twin of user 0.
        let twin = ds.profile(0).to_vec();
        let (id, comparisons) = index.add_user(twin, 5);
        assert_eq!(id as usize, ds.num_users());
        assert!(comparisons < ds.num_users(), "insertion cost {comparisons} ≥ linear scan");
        let knn = index.knn(id);
        assert!(!knn.is_empty());
        assert_eq!(knn[0].user, 0, "the twin's best neighbour must be user 0");
        assert_eq!(knn[0].sim, 1.0);
    }

    #[test]
    fn symmetric_update_reaches_existing_users() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let twin = ds.profile(7).to_vec();
        let (id, _) = index.add_user(twin, 9);
        // User 7 now has a similarity-1.0 neighbour available: the twin.
        let knn7 = index.knn(7);
        assert!(
            knn7.iter().any(|n| n.user == id && n.sim == 1.0),
            "user 7 did not receive the newcomer as a neighbour: {knn7:?}"
        );
    }

    #[test]
    fn many_insertions_keep_costs_sublinear() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let mut total = 0usize;
        for i in 0..50u32 {
            let donor = (i * 7) % 400;
            let mut profile = ds.profile(donor).to_vec();
            profile.push(290 + i % 10); // slight perturbation
            let (_, c) = index.add_user(profile, i as u64);
            total += c;
        }
        assert_eq!(index.inserted_users(), 50);
        assert_eq!(index.num_users(), 450);
        let avg = total / 50;
        assert!(avg < 300, "avg insertion cost {avg} too close to a full scan");
    }

    #[test]
    fn insertion_into_empty_index_works() {
        let ds = Dataset::from_profiles(vec![], 0);
        let graph = KnnGraph::new(0, 5);
        let mut index = DynamicIndex::new(&ds, graph, config());
        let (first, c0) = index.add_user(vec![1, 2, 3], 1);
        assert_eq!(first, 0);
        assert_eq!(c0, 0);
        assert!(index.knn(first).is_empty(), "first user has nobody to connect to");
        let (second, _) = index.add_user(vec![1, 2, 3, 4], 2);
        assert_eq!(index.knn(second)[0].user, first);
        assert!(index.knn(first).iter().any(|n| n.user == second));
    }

    #[test]
    fn duplicate_items_in_new_profile_are_deduplicated() {
        let (ds, graph) = base();
        let mut index = DynamicIndex::new(&ds, graph, config());
        let (id, _) = index.add_user(vec![5, 5, 3, 3, 1], 1);
        assert_eq!(index.profile(id), &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "invalid beam search config")]
    fn invalid_config_rejected() {
        let (ds, graph) = base();
        let bad = BeamSearchConfig { beam_width: 1, ..config() };
        DynamicIndex::new(&ds, graph, bad);
    }
}
