//! Offline stand-in for `serde_derive`, written against the compiler's
//! own `proc_macro` token model (no `syn`/`quote` — neither is available
//! offline, and the supported input shape doesn't need a full parser).
//!
//! Supported input: a (possibly `pub`) **struct with named fields** whose
//! types implement the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits. Attributes on the struct and its fields are skipped (doc
//! comments included); generics, tuple structs and enums are rejected
//! with a compile error naming the limitation.
//!
//! The generated impls speak the stand-in's `Value` model:
//! `Serialize::to_value` builds an object with one entry per field in
//! declaration order; `Deserialize::from_value` looks each field up by
//! name (unknown keys ignored, missing ones a typed error).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a flat named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Serialize)
}

/// Derives `serde::Deserialize` for a flat named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Deserialize)
}

enum Impl {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Impl) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            // Surface parse failures as a compile error at the derive
            // site instead of an opaque proc-macro panic.
            return format!("compile_error!({message:?});").parse().expect("literal error");
        }
    };
    let body = match which {
        Impl::Serialize => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {entries}\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Impl::Deserialize => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get({f:?})\
                         .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated impl parses")
}

/// Extracts `(struct name, field names in declaration order)` from the
/// derive input, or a human-readable reason it is unsupported.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected a struct name".into()),
                }
                break;
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                return Err("the offline serde stand-in cannot derive for enums".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or("expected a struct item")?;
    // Next significant token must be the { ... } field block; `<` means
    // generics, `(` a tuple struct — both unsupported.
    let fields_group = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(
                    "the offline serde stand-in needs named fields, not a tuple struct".into()
                );
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("the offline serde stand-in cannot derive for generic structs".into());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("the offline serde stand-in cannot derive for unit structs".into());
            }
            Some(_) => continue,
            None => return Err("expected a braced field block".into()),
        }
    };

    // Within the braces: `[attrs] [pub[(..)]] name : type ,` repeated.
    // Only the names matter; types are skipped up to the next top-level
    // comma (tracking `<…>` depth so generic arguments don't split a
    // field early).
    let mut fields = Vec::new();
    let mut inner = fields_group.stream().into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let field_name = loop {
            match inner.next() {
                None => return Ok((name, fields)),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    inner.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = inner.peek() {
                        inner.next();
                    }
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in field list")),
            }
        };
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field_name}`")),
        }
        fields.push(field_name);
        // Skip the type.
        let mut angle_depth = 0usize;
        loop {
            match inner.next() {
                None => return Ok((name, fields)),
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}
