//! Test configuration and the deterministic case RNG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — lighter than real proptest's 256, chosen to keep the
    /// whole workspace's property suites inside tier-1 test budgets.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving strategy generation, seeded from the test name so every
/// run of a given test explores the same sequence of inputs.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
