//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges and tuples;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from real proptest: failures are plain panics (no shrinking,
//! no persisted failure seeds), and the case RNG is seeded from the test
//! name, so every run explores the same deterministic sequence of inputs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0u32..10, v in proptest::collection::vec(0u32..5, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must be used directly inside a `proptest!` body (expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u32..10, 0u32..10), d in doubled()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(d % 2, 0);
        }

        #[test]
        fn collections_respect_size_bounds(
            v in crate::collection::vec(0u32..50, 1..20),
            s in crate::collection::btree_set(0u32..1000, 1..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(!s.is_empty() && s.len() < 30);
            prop_assert!(v.iter().all(|&x| x < 50));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }
}
