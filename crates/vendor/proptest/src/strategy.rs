//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u32, u64, usize, i32, i64);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
