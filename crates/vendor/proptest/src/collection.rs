//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::collections::BTreeSet;
use std::ops::Range;

/// Generates `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element` values with a size drawn from `size`.
///
/// Like real proptest, the target size is best-effort: when the element
/// domain is too small to reach it, a smaller set is produced.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.random_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so tiny element
        // domains terminate with a smaller-than-target set.
        let max_attempts = 10 * target + 16;
        let mut attempts = 0;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
