//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! exactly the API surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — the core generator trait;
//! * [`RngExt`] — `random::<T>()` and `random_range(lo..hi)`;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Determinism matters more than statistical strength here (every caller
//! seeds explicitly), but SplitMix64 passes the workspace's statistical
//! tests (Zipf frequencies, uniformity of alias-table sampling) comfortably.

pub mod rngs {
    pub use crate::small::SmallRng;
}
pub mod seq;
mod small;

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the domain).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// Samples uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Standard-distribution sampling (the `random::<T>()` entry point).
pub trait Standard {
    /// Draws one value from `rng`.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (the `random_range` entry point).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `0..span` (`span > 0`) with negligible modulo bias
/// (span ≪ 2⁶⁴ everywhere in this workspace).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    rng.next_u64() % span
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn random_f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds_and_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01, "bucket count {c}");
        }
    }

    #[test]
    fn random_range_works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.random_range(5..6u32)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(draw(&mut rng), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        rng.random_range(3..3u32);
    }
}
