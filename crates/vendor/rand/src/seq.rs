//! Slice helpers (`shuffle`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements staying in place is ~impossible");
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(11));
        b.shuffle(&mut SmallRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
