//! SplitMix64 — the `SmallRng` stand-in.

use crate::{Rng, SeedableRng};

/// A small, fast, seedable PRNG (SplitMix64; Steele, Lea & Flood 2014).
///
/// Period 2⁶⁴, equidistributed over 64-bit outputs, and strong enough for
/// every statistical check in this workspace. Not cryptographic.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
