//! Offline stand-in for `serde` (crates.io is unreachable in this build
//! environment; see ROADMAP "Constraints").
//!
//! The real serde is a zero-cost serialization *framework*; this stand-in
//! is deliberately much smaller: a self-describing [`Value`] tree, a JSON
//! reader/writer for it ([`json`]), and `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` (re-exported from the companion `serde_derive`
//! proc-macro crate) for **flat named-field structs** of primitives,
//! strings, options and sequences — exactly the shape of the public
//! types that lost their derives when the offline build dropped serde
//! (`DatasetStats`, `SyntheticConfig`).
//!
//! Guarantees kept from the real thing:
//! - derive → `to_string` → `from_str` → value round-trips losslessly for
//!   supported field types (floats via Rust's shortest round-trip
//!   formatting);
//! - unknown JSON fields are ignored, missing ones are typed errors —
//!   never a panic.
//!
//! Not implemented (fail to compile rather than misbehave): enums,
//! tuple/unit structs, generics, borrowed data, custom attributes.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing parsed value — the interchange point between the
/// derived impls and the [`json`] text layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order (duplicate keys keep the last).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a field up in an object (`None` for absent keys and
    /// non-objects alike).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().rev().find(|(name, _)| name == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Typed (de)serialization error: a message plus nothing else — the
/// stand-in never panics on malformed input.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// The standard "missing field" error the derive emits.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// The standard "wrong type" error the primitive impls emit.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error::custom(format!("invalid type: expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] model (the derive generates one
/// `to_value` call per field).
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::invalid_type(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 { Value::UInt(wide as u64) } else { Value::Int(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return Err(Error::invalid_type(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Deserialize::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// JSON text layer: [`Value`] ↔ text, plus the `to_string`/`from_str`
/// convenience pair matching `serde_json`'s entry points.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes `value` to compact JSON.
    pub fn to_string<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Parses JSON text into a `T` (typed error on malformed input or
    /// shape mismatch; trailing non-whitespace is rejected).
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parses JSON text into the generic [`Value`] tree.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing input at byte {pos}")));
        }
        Ok(value)
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) if f.is_finite() => {
                // Rust's Display for f64 is shortest-round-trip; ensure a
                // decimal point so the token re-parses as a float.
                let text = format!("{f}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            // JSON has no NaN/∞; mirror serde_json's `null`.
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (name, field)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, name);
                    out.push(':');
                    write_value(out, field);
                }
                out.push('}');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
        if bytes[*pos..].starts_with(token.as_bytes()) {
            *pos += token.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{token}` at byte {pos}", pos = *pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let name = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((name, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::custom(format!("expected string at byte {pos}", pos = *pos)));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("surrogate \\u escape"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error::custom(format!("{e}: {text}")))
        } else if let Some(negative) = text.strip_prefix('-') {
            negative
                .parse::<u64>()
                .ok()
                .and_then(|n| i64::try_from(n).ok().map(|n| Value::Int(-n)))
                .ok_or_else(|| Error::custom(format!("integer out of range: {text}")))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|e| Error::custom(format!("{e}: {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_json_text() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(json::to_string(&-7i32), "-7");
        assert_eq!(json::from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&String::from("a\"b\n")), "\"a\\\"b\\n\"");
        assert_eq!(json::from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(json::to_string(&Option::<u32>::None), "null");
        assert_eq!(json::from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn floats_use_shortest_round_trip_formatting() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 25.0, f64::MAX, -0.0] {
            let text = json::to_string(&f);
            assert_eq!(json::from_str::<f64>(&text).unwrap().to_bits(), f.to_bits(), "{text}");
        }
        // Integral floats keep a decimal point so they re-parse as floats.
        assert_eq!(json::to_string(&25.0f64), "25.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
    }

    #[test]
    fn malformed_input_is_a_typed_error_never_a_panic() {
        for bad in ["", "{", "[1,", "\"open", "nul", "{\"a\" 1}", "12x", "[1] garbage", "-"] {
            assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Shape mismatches too.
        assert!(json::from_str::<u64>("\"nope\"").is_err());
        assert!(json::from_str::<u64>("-3").is_err());
        assert!(json::from_str::<u8>("300").is_err());
    }

    #[test]
    fn objects_ignore_unknown_and_duplicate_keys_keep_the_last() {
        let v = json::parse("{\"a\": 1, \"a\": 2, \"b\": 3}").unwrap();
        assert_eq!(v.get("a"), Some(&Value::UInt(2)));
        assert_eq!(v.get("missing"), None);
    }
}
