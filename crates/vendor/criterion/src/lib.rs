//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of criterion's API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — backed by a deliberately simple measurement loop:
//! a short warm-up, then timed batches until ~100 ms has elapsed, reporting
//! the median batch time per iteration. No statistics, plots or baselines;
//! the point is that `cargo bench` runs and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(100);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_owned() }
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's throughput (accepted, not currently reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted for API parity; the stand-in sizes
    /// its sampling from the fixed time budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API parity).
    pub fn measurement_time(&mut self, _budget: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label()), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label()), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: Some(name.into()), parameter: parameter.to_string() }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: None, parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        match &self.name {
            Some(name) => format!("{name}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: None, parameter: name.to_owned() }
    }
}

/// Units processed per iteration (accepted for API parity).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    // Warm-up: learn a batch size that keeps one measurement ≥ ~1 ms,
    // bounded by the cumulative time spent warming up.
    let mut iters = 1u64;
    let mut warmup_spent = Duration::ZERO;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        warmup_spent += b.elapsed;
        if b.elapsed >= Duration::from_millis(1) || warmup_spent > WARMUP {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measurement: repeat batches until the budget is spent, keep medians.
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < MEASURE || samples.len() < 3 {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        if samples.len() >= 64 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{label:<50} time: [{}]", format_time(median));
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declares a benchmark group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
