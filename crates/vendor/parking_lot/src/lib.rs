//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: a [`Mutex`]
//! whose `lock()` never returns a poison error. Implemented as a thin
//! wrapper over `std::sync::Mutex` that ignores poisoning (matching
//! parking_lot's semantics of not having poisoning at all).

use std::fmt;

/// A mutual-exclusion primitive with parking_lot's panic-transparent API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a
    /// panicked previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
