//! Seeded family of fast 64-bit hash functions.
//!
//! The paper computes its FastRandomHash values "using Jenkins' hash
//! function" [31]. Any fast avalanche hash with uniform output works — the
//! theory (Theorems 1 and 2) only assumes the generative hash behaves like a
//! uniform random function. We use the SplitMix64 finalizer (Stafford's
//! Mix13 constants), which passes avalanche tests, is three multiplications
//! and three shifts per value, and is trivially seedable: each seed selects
//! an (approximately) independent function from the family. The substitution
//! is documented in DESIGN.md and validated empirically by the `theory`
//! reproduction binary.

/// One member of the seeded hash family.
///
/// Two `SeededHash` values with the same seed are identical functions; with
/// different seeds they behave as independent uniform functions for the
/// purposes of the FastRandomHash analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Creates the hash function identified by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SeededHash { seed }
    }

    /// The seed that identifies this function.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hashes a 64-bit value to a uniform 64-bit value.
    #[inline(always)]
    pub fn hash_u64(&self, x: u64) -> u64 {
        // SplitMix64 finalizer over the seed-perturbed input. The golden
        // ratio increment decorrelates nearby seeds.
        let mut z = x ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a 32-bit value (item ids are `u32` throughout the workspace).
    #[inline(always)]
    pub fn hash_u32(&self, x: u32) -> u64 {
        self.hash_u64(x as u64)
    }

    /// Hashes into the discrete range `1..=b` — the generative hash
    /// `h : I → ⟦1, b⟧` of the paper (§II-D). Uses the high-bits
    /// multiply-shift reduction to avoid modulo bias.
    #[inline(always)]
    pub fn hash_range(&self, x: u32, b: u32) -> u32 {
        debug_assert!(b >= 1);
        let h = self.hash_u32(x);
        // Map a uniform u64 to 0..b via 128-bit multiply, then shift to 1..=b.
        (((h as u128 * b as u128) >> 64) as u32) + 1
    }

    /// Derives the i-th function of a family rooted at this seed.
    ///
    /// Used to build the `t` generative hash functions of C² and the
    /// MinHash/LSH function banks from a single experiment seed.
    #[inline]
    pub fn derive(&self, index: u64) -> SeededHash {
        // Re-mix so derived seeds don't form an arithmetic progression.
        SeededHash::new(SeededHash::new(self.seed).hash_u64(index ^ 0xA076_1D64_78BD_642F))
    }
}

/// Builds `t` independent hash functions from one root seed.
pub fn family(root_seed: u64, t: usize) -> Vec<SeededHash> {
    let root = SeededHash::new(root_seed);
    (0..t as u64).map(|i| root.derive(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_function() {
        let a = SeededHash::new(7);
        let b = SeededHash::new(7);
        for x in 0..100u32 {
            assert_eq!(a.hash_u32(x), b.hash_u32(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SeededHash::new(1);
        let b = SeededHash::new(2);
        let collisions = (0..1000u32).filter(|&x| a.hash_u32(x) == b.hash_u32(x)).count();
        assert_eq!(collisions, 0, "64-bit outputs of distinct seeds should not collide");
    }

    #[test]
    fn hash_range_is_within_bounds() {
        let h = SeededHash::new(3);
        for b in [1u32, 2, 3, 7, 4096] {
            for x in 0..500u32 {
                let v = h.hash_range(x, b);
                assert!((1..=b).contains(&v), "h({x}) = {v} outside 1..={b}");
            }
        }
    }

    #[test]
    fn hash_range_is_roughly_uniform() {
        let h = SeededHash::new(11);
        let b = 16u32;
        let n = 64_000u32;
        let mut counts = vec![0usize; b as usize + 1];
        for x in 0..n {
            counts[h.hash_range(x, b) as usize] += 1;
        }
        let expected = n as f64 / b as f64;
        for (bucket, &count) in counts.iter().enumerate().skip(1) {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "bucket {bucket} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn avalanche_single_bit_flip_changes_half_the_output() {
        let h = SeededHash::new(13);
        let mut total_flipped = 0u32;
        let trials = 256;
        for x in 0..trials {
            let base = h.hash_u64(x);
            let flipped = h.hash_u64(x ^ 1);
            total_flipped += (base ^ flipped).count_ones();
        }
        let avg = total_flipped as f64 / trials as f64;
        assert!((avg - 32.0).abs() < 3.0, "avalanche average {avg} bits, expected ~32");
    }

    #[test]
    fn family_members_are_distinct() {
        let fam = family(99, 16);
        for i in 0..fam.len() {
            for j in (i + 1)..fam.len() {
                assert_ne!(fam[i].seed(), fam[j].seed());
            }
        }
    }

    #[test]
    fn family_is_deterministic() {
        assert_eq!(family(5, 8), family(5, 8));
    }

    #[test]
    fn range_one_maps_everything_to_one() {
        let h = SeededHash::new(17);
        for x in 0..100 {
            assert_eq!(h.hash_range(x, 1), 1);
        }
    }
}
