//! GoldFinger compact fingerprints (paper §II-F, Table V).
//!
//! GoldFinger [19], [40] summarizes each user's profile into a short bit
//! vector (a *Single Hash Fingerprint*): bit `h(i) mod B` is set for every
//! item `i ∈ P_u`. The Jaccard similarity of two profiles is then estimated
//! from the fingerprints alone:
//!
//! `Ĵ(u, v) = popcount(F_u ∧ F_v) / popcount(F_u ∨ F_v)`
//!
//! which replaces a sorted-slice merge over potentially hundreds of items by
//! a handful of word-wise AND/OR/popcount operations. The paper uses
//! 1024-bit fingerprints for all algorithms in its main experiments and
//! ablates the choice in Table V.

use crate::hash::SeededHash;
use cnc_dataset::{Dataset, ItemId, Storage, UserId};

/// Per-dataset GoldFinger fingerprints (one `bits`-wide vector per user).
///
/// The word array lives behind [`Storage`], so a fingerprint set either
/// owns its words (every build path) or borrows them straight out of a
/// mapped snapshot (`cnc-serve` zero-copy adoption); the rare mutating
/// path ([`GoldFinger::push_user`]) promotes to an owned copy first.
#[derive(Clone, Debug)]
pub struct GoldFinger {
    words: Storage<u64>,
    words_per_user: usize,
    bits: usize,
    seed: u64,
    num_users: usize,
}

impl GoldFinger {
    /// Paper default fingerprint width (bits).
    pub const DEFAULT_BITS: usize = 1024;

    /// Builds fingerprints for every user of `dataset`.
    ///
    /// `bits` must be a positive multiple of 64 (the paper explores 64 to
    /// 8096; we round the odd 8096 up to the 64-multiple 8128 if requested).
    ///
    /// # Panics
    /// Panics if `bits` is zero or not a multiple of 64.
    pub fn build(dataset: &Dataset, bits: usize, seed: u64) -> Self {
        Self::build_parallel(dataset, bits, seed, 1)
    }

    /// Builds fingerprints on `threads` workers (0 = all available cores).
    ///
    /// Each user's fingerprint depends only on that user's profile, so the
    /// user range is split into contiguous chunks and every worker fills a
    /// disjoint slice of the word array — the result is bit-identical to
    /// the serial [`GoldFinger::build`] whatever the thread count.
    ///
    /// # Panics
    /// Panics if `bits` is zero or not a multiple of 64.
    pub fn build_parallel(dataset: &Dataset, bits: usize, seed: u64, threads: usize) -> Self {
        assert!(bits > 0 && bits.is_multiple_of(64), "bits must be a positive multiple of 64");
        let words_per_user = bits / 64;
        let hash = SeededHash::new(seed);
        let n = dataset.num_users();
        let mut words = vec![0u64; n * words_per_user];
        let threads = cnc_threadpool::effective_threads(threads);
        if threads <= 1 || n < 2 * threads {
            for (u, profile) in dataset.iter() {
                let base = u as usize * words_per_user;
                Self::fill_user(&mut words[base..base + words_per_user], profile, hash, bits);
            }
        } else {
            // A few chunks per worker so a skewed profile-length
            // distribution cannot serialize the build on one straggler.
            let chunk_users = n.div_ceil(threads * 4).max(1);
            let jobs: Vec<(u64, (usize, &mut [u64]))> = words
                .chunks_mut(chunk_users * words_per_user)
                .enumerate()
                .map(|(chunk, slice)| (0, (chunk, slice)))
                .collect();
            cnc_threadpool::PriorityPool::run(threads, jobs, |(chunk, slice)| {
                let first = chunk * chunk_users;
                for (offset, rows) in slice.chunks_mut(words_per_user).enumerate() {
                    Self::fill_user(rows, dataset.profile((first + offset) as UserId), hash, bits);
                }
            });
        }
        GoldFinger { words: words.into(), words_per_user, bits, seed, num_users: n }
    }

    /// Sets the fingerprint bits of one user's profile into its word row.
    #[inline]
    fn fill_user(row: &mut [u64], profile: &[ItemId], hash: SeededHash, bits: usize) {
        for &item in profile {
            let bit = Self::bit_of(hash, item, bits);
            row[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    #[inline(always)]
    fn bit_of(hash: SeededHash, item: ItemId, bits: usize) -> usize {
        // bits is a power-of-two multiple of 64 in practice, but keep the
        // general multiply-shift reduction so any multiple of 64 works.
        ((hash.hash_u32(item) as u128 * bits as u128) >> 64) as usize
    }

    /// Fingerprint width in bits.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of users fingerprinted.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Words per fingerprint (`bits / 64`).
    #[inline]
    pub fn words_per_user(&self) -> usize {
        self.words_per_user
    }

    /// The hash seed the fingerprints were built with (lets consumers of a
    /// shared build check it matches their configured backend).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full word array: user `u`'s fingerprint occupies words
    /// `u·words_per_user .. (u+1)·words_per_user`. This is the contiguous
    /// layout the [`crate::kernel`] layer builds its tiles and fixed-width
    /// kernels over.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The raw fingerprint words of `user`.
    #[inline]
    pub fn fingerprint(&self, user: UserId) -> &[u64] {
        let base = user as usize * self.words_per_user;
        &self.words[base..base + self.words_per_user]
    }

    /// The fingerprint an arbitrary profile would get under this set's
    /// width and seed — out-of-sample queries become scoreable rows
    /// without joining the dataset (`cnc-query`'s batched beam search).
    ///
    /// Bit-identical to the row [`GoldFinger::build`] would produce for
    /// the same profile.
    pub fn fingerprint_profile(&self, profile: &[ItemId]) -> Vec<u64> {
        let mut row = vec![0u64; self.words_per_user];
        Self::fill_user(&mut row, profile, SeededHash::new(self.seed), self.bits);
        row
    }

    /// Appends one user's fingerprint (online growth — the streaming-insert
    /// side of `cnc-query::DynamicIndex`); returns the new user's id.
    /// Copy-on-write: a fingerprint set borrowed from a mapped snapshot
    /// is promoted to an owned copy on the first push.
    pub fn push_user(&mut self, profile: &[ItemId]) -> UserId {
        let words = self.words.to_mut();
        let base = words.len();
        words.resize(base + self.words_per_user, 0);
        Self::fill_user(&mut words[base..], profile, SeededHash::new(self.seed), self.bits);
        self.num_users += 1;
        (self.num_users - 1) as UserId
    }

    /// Reassembles a fingerprint set from its persisted parts (the
    /// `cnc-serve` snapshot loader). The inverse of reading
    /// [`GoldFinger::words`], [`GoldFinger::bits`] and
    /// [`GoldFinger::seed`]; rejects inconsistent dimensions instead of
    /// panicking, since the parts come from an untrusted file.
    pub fn from_parts(words: Vec<u64>, bits: usize, seed: u64) -> Result<GoldFinger, String> {
        Self::from_storage(words.into(), bits, seed)
    }

    /// [`GoldFinger::from_parts`] over [`Storage`]-backed words — the
    /// entry point mmap adoption uses to borrow the word array straight
    /// from a mapped snapshot. Validated identically.
    pub fn from_storage(words: Storage<u64>, bits: usize, seed: u64) -> Result<GoldFinger, String> {
        if bits == 0 || !bits.is_multiple_of(64) {
            return Err(format!("fingerprint width {bits} is not a positive multiple of 64"));
        }
        let words_per_user = bits / 64;
        if !words.len().is_multiple_of(words_per_user) {
            return Err(format!(
                "{} fingerprint words do not divide into {words_per_user}-word rows",
                words.len()
            ));
        }
        let num_users = words.len() / words_per_user;
        Ok(GoldFinger { words, words_per_user, bits, seed, num_users })
    }

    /// True when the word array borrows shared (e.g. memory-mapped)
    /// storage — the structural predicate zero-copy tests assert on.
    pub fn is_shared(&self) -> bool {
        self.words.is_shared()
    }

    /// Estimated Jaccard similarity of two users, in `[0, 1]`.
    ///
    /// Exact when no two distinct items of the union hash to the same bit;
    /// otherwise collisions bias the estimate (the effect Table V measures
    /// as a small quality delta).
    #[inline]
    pub fn estimate(&self, u: UserId, v: UserId) -> f64 {
        let fu = self.fingerprint(u);
        let fv = self.fingerprint(v);
        let (mut inter, mut union) = (0u32, 0u32);
        for (a, b) in fu.iter().zip(fv.iter()) {
            inter += (a & b).count_ones();
            union += (a | b).count_ones();
        }
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Number of set bits in `user`'s fingerprint (≤ `|P_u|`).
    pub fn popcount(&self, user: UserId) -> u32 {
        self.fingerprint(user).iter().map(|w| w.count_ones()).sum()
    }

    /// Memory footprint of all fingerprints, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::Jaccard;
    use cnc_dataset::SyntheticConfig;

    fn tiny(profiles: Vec<Vec<u32>>) -> Dataset {
        Dataset::from_profiles(profiles, 0)
    }

    #[test]
    fn identical_profiles_estimate_one() {
        let ds = tiny(vec![vec![1, 2, 3], vec![1, 2, 3]]);
        let gf = GoldFinger::build(&ds, 256, 1);
        assert_eq!(gf.estimate(0, 1), 1.0);
    }

    #[test]
    fn disjoint_profiles_estimate_near_zero() {
        let ds = tiny(vec![vec![1, 2, 3], vec![100, 200, 300]]);
        let gf = GoldFinger::build(&ds, 1024, 2);
        // With 6 items in 1024 bits, collisions are overwhelmingly unlikely.
        assert_eq!(gf.estimate(0, 1), 0.0);
    }

    #[test]
    fn estimate_is_exact_without_collisions() {
        let ds = tiny(vec![vec![1, 2, 3, 4], vec![3, 4, 5, 6]]);
        let gf = GoldFinger::build(&ds, 4096, 3);
        let exact = Jaccard::similarity(ds.profile(0), ds.profile(1));
        // 6 distinct items in 4096 bits: no collision w.h.p. for this seed.
        assert!((gf.estimate(0, 1) - exact).abs() < 1e-12);
    }

    #[test]
    fn empty_profiles_estimate_zero() {
        let ds = tiny(vec![vec![], vec![]]);
        let gf = GoldFinger::build(&ds, 64, 4);
        assert_eq!(gf.estimate(0, 1), 0.0);
        assert_eq!(gf.popcount(0), 0);
    }

    #[test]
    fn popcount_bounded_by_profile_size() {
        let ds = SyntheticConfig::small(31).generate();
        let gf = GoldFinger::build(&ds, 1024, 5);
        for u in ds.users().take(100) {
            assert!(gf.popcount(u) as usize <= ds.profile_len(u));
        }
    }

    #[test]
    fn wider_fingerprints_are_more_accurate() {
        let ds = SyntheticConfig::small(37).generate();
        let narrow = GoldFinger::build(&ds, 64, 6);
        let wide = GoldFinger::build(&ds, 8192, 6);
        let (mut err_narrow, mut err_wide, mut n) = (0.0f64, 0.0f64, 0);
        for u in (0..100u32).step_by(3) {
            for v in (1..100u32).step_by(7) {
                let exact = Jaccard::similarity(ds.profile(u), ds.profile(v));
                err_narrow += (narrow.estimate(u, v) - exact).abs();
                err_wide += (wide.estimate(u, v) - exact).abs();
                n += 1;
            }
        }
        assert!(
            err_wide / n as f64 <= err_narrow / n as f64,
            "8192-bit error {} should not exceed 64-bit error {}",
            err_wide / n as f64,
            err_narrow / n as f64
        );
    }

    #[test]
    fn size_bytes_matches_width() {
        let ds = tiny(vec![vec![1], vec![2], vec![3]]);
        let gf = GoldFinger::build(&ds, 1024, 7);
        assert_eq!(gf.size_bytes(), 3 * 1024 / 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_word_width_panics() {
        let ds = tiny(vec![vec![1]]);
        GoldFinger::build(&ds, 100, 8);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let ds = SyntheticConfig::small(53).generate();
        let serial = GoldFinger::build(&ds, 1024, 9);
        for threads in [0, 2, 3, 7] {
            let parallel = GoldFinger::build_parallel(&ds, 1024, 9, threads);
            assert_eq!(serial.words(), parallel.words(), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_build_handles_tiny_datasets() {
        for profiles in [vec![], vec![vec![1, 2]], vec![vec![1], vec![2], vec![3]]] {
            let ds = tiny(profiles);
            let serial = GoldFinger::build(&ds, 128, 3);
            let parallel = GoldFinger::build_parallel(&ds, 128, 3, 4);
            assert_eq!(serial.words(), parallel.words());
        }
    }

    #[test]
    fn fingerprint_profile_matches_built_rows() {
        let ds = SyntheticConfig::small(61).generate();
        let gf = GoldFinger::build(&ds, 1024, 11);
        for u in ds.users().take(40) {
            assert_eq!(gf.fingerprint_profile(ds.profile(u)), gf.fingerprint(u), "user {u}");
        }
    }

    #[test]
    fn push_user_grows_the_set_bit_identically() {
        let profiles =
            vec![vec![1u32, 2, 3], vec![4, 5], vec![1, 9, 20, 31], vec![], vec![7, 8, 9]];
        let full = GoldFinger::build(&Dataset::from_profiles(profiles.clone(), 0), 256, 5);
        let mut grown =
            GoldFinger::build(&Dataset::from_profiles(profiles[..2].to_vec(), 0), 256, 5);
        for (expect_id, profile) in profiles.iter().enumerate().skip(2) {
            assert_eq!(grown.push_user(profile) as usize, expect_id);
        }
        assert_eq!(grown.num_users(), full.num_users());
        assert_eq!(grown.words(), full.words());
    }

    #[test]
    fn from_parts_round_trips_and_rejects_garbage() {
        let ds = SyntheticConfig::small(67).generate();
        let gf = GoldFinger::build(&ds, 512, 13);
        let back = GoldFinger::from_parts(gf.words().to_vec(), gf.bits(), gf.seed()).unwrap();
        assert_eq!(back.words(), gf.words());
        assert_eq!(back.num_users(), gf.num_users());
        assert_eq!(back.words_per_user(), gf.words_per_user());
        assert_eq!((back.bits(), back.seed()), (gf.bits(), gf.seed()));
        assert!(GoldFinger::from_parts(vec![0; 8], 0, 1).is_err(), "zero width");
        assert!(GoldFinger::from_parts(vec![0; 8], 100, 1).is_err(), "non-word width");
        assert!(GoldFinger::from_parts(vec![0; 7], 128, 1).is_err(), "ragged rows");
    }

    #[test]
    fn words_layout_matches_fingerprints() {
        let ds = SyntheticConfig::small(59).generate();
        let gf = GoldFinger::build(&ds, 256, 4);
        let w = gf.words_per_user();
        assert_eq!(w, 4);
        for u in ds.users().take(50) {
            assert_eq!(&gf.words()[u as usize * w..(u as usize + 1) * w], gf.fingerprint(u));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::jaccard::Jaccard;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn estimate_in_unit_interval(
            a in proptest::collection::btree_set(0u32..200, 0..30),
            b in proptest::collection::btree_set(0u32..200, 0..30),
            seed in 0u64..50,
        ) {
            let ds = Dataset::from_profiles(
                vec![a.into_iter().collect(), b.into_iter().collect()], 0);
            let gf = GoldFinger::build(&ds, 256, seed);
            let e = gf.estimate(0, 1);
            prop_assert!((0.0..=1.0).contains(&e));
        }

        #[test]
        fn estimate_symmetric(
            a in proptest::collection::btree_set(0u32..200, 0..30),
            b in proptest::collection::btree_set(0u32..200, 0..30),
        ) {
            let ds = Dataset::from_profiles(
                vec![a.into_iter().collect(), b.into_iter().collect()], 0);
            let gf = GoldFinger::build(&ds, 128, 9);
            prop_assert_eq!(gf.estimate(0, 1), gf.estimate(1, 0));
        }

        #[test]
        fn estimate_exact_when_fingerprint_is_injective(
            a in proptest::collection::btree_set(0u32..100, 1..20),
            b in proptest::collection::btree_set(0u32..100, 1..20),
        ) {
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let ds = Dataset::from_profiles(vec![av.clone(), bv.clone()], 0);
            let gf = GoldFinger::build(&ds, 8192, 10);
            // Check injectivity of the hash on the union; if it holds, the
            // estimate must equal the exact Jaccard.
            let hash = SeededHash::new(10);
            let mut bits: Vec<usize> = av.iter().chain(bv.iter())
                .map(|&i| GoldFinger::bit_of(hash, i, 8192)).collect();
            bits.sort_unstable();
            bits.dedup();
            let mut union: Vec<u32> = av.iter().chain(bv.iter()).copied().collect();
            union.sort_unstable();
            union.dedup();
            prop_assume!(bits.len() == union.len());
            let exact = Jaccard::similarity(&av, &bv);
            prop_assert!((gf.estimate(0, 1) - exact).abs() < 1e-12);
        }
    }
}
