//! Set cosine similarity.
//!
//! The paper's framework accepts "any similarity function over sets that is
//! positively correlated with the number of common items … such as cosine or
//! the Jaccard similarity" (§II-A); the evaluation uses Jaccard. We provide
//! the binary-vector cosine as well so downstream users (and the tests that
//! check the fsim requirements) can swap metrics:
//! `cos(P_u, P_v) = |P_u ∩ P_v| / √(|P_u| · |P_v|)`.

use crate::jaccard::Jaccard;
use cnc_dataset::ItemId;

/// Namespace struct for the set-cosine functions.
pub struct Cosine;

impl Cosine {
    /// Cosine similarity of two strictly increasing slices, in `[0, 1]`.
    #[inline]
    pub fn similarity(a: &[ItemId], b: &[ItemId]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = Jaccard::intersection(a, b) as f64;
        inter / ((a.len() as f64) * (b.len() as f64)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_cosine_one() {
        let a = [2, 4, 6];
        assert!((Cosine::similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_cosine_zero() {
        assert_eq!(Cosine::similarity(&[1], &[2]), 0.0);
    }

    #[test]
    fn empty_sets_are_zero() {
        assert_eq!(Cosine::similarity(&[], &[]), 0.0);
        assert_eq!(Cosine::similarity(&[1], &[]), 0.0);
    }

    #[test]
    fn known_value() {
        // |∩| = 1, sizes 2 and 2 → 1/2.
        assert!((Cosine::similarity(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_dominates_jaccard() {
        // For non-empty sets, cosine ≥ Jaccard (AM–GM on the denominator).
        let a = [1, 2, 3, 8];
        let b = [2, 3, 9];
        assert!(Cosine::similarity(&a, &b) >= Jaccard::similarity(&a, &b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set() -> impl Strategy<Value = Vec<ItemId>> {
        proptest::collection::btree_set(0u32..300, 0..40)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn cosine_in_unit_interval(a in sorted_set(), b in sorted_set()) {
            let s = Cosine::similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn cosine_is_symmetric(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(Cosine::similarity(&a, &b), Cosine::similarity(&b, &a));
        }

        #[test]
        fn fsim_requirements_positive_correlation_with_overlap(
            base in sorted_set(), extra in 300u32..400
        ) {
            // Adding a shared item never decreases cosine similarity
            // (the paper's fsim requirement, §II-A).
            prop_assume!(!base.is_empty());
            let b: Vec<u32> = base.iter().copied().chain([extra]).collect();
            let before = Cosine::similarity(&base, &base);
            let after = Cosine::similarity(&b, &b);
            prop_assert!(after >= before - 1e-12);
        }
    }
}
