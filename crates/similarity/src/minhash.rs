//! MinHash: min-wise hashing over the item universe.
//!
//! Classic MinHash [17] applies a (pseudo-)random permutation `π` of the
//! item universe and keeps `min_{i ∈ P_u} π(i)`. Two users agree on this
//! minimum with probability exactly their Jaccard similarity. The paper uses
//! MinHash in two roles, both reproduced here:
//!
//! * the **LSH baseline** (§IV-B3): each of `t` MinHash functions buckets
//!   users by their min value — one potential bucket per item, which is what
//!   fragments sparse, high-dimensional datasets;
//! * the **C²/MinHash ablation** (Table IV): C² with its FastRandomHash
//!   replaced by MinHash (t × m clusters, no recursive splitting).
//!
//! The "permutation" is realized as a seeded 64-bit hash (standard practice;
//! collisions in 64 bits are negligible at these scales).

use crate::hash::SeededHash;
use cnc_dataset::ItemId;

/// One MinHash function (a seeded stand-in for a min-wise independent
/// permutation of the item universe).
#[derive(Clone, Copy, Debug)]
pub struct MinHasher {
    hash: SeededHash,
}

impl MinHasher {
    /// Creates the MinHash function identified by `seed`.
    pub fn new(seed: u64) -> Self {
        MinHasher { hash: SeededHash::new(seed) }
    }

    /// Builds a bank of `t` independent MinHash functions.
    pub fn family(root_seed: u64, t: usize) -> Vec<MinHasher> {
        crate::hash::family(root_seed, t).into_iter().map(|hash| MinHasher { hash }).collect()
    }

    /// The min-wise value of a profile: `min_{i ∈ P} π(i)`, or `None` for an
    /// empty profile.
    #[inline]
    pub fn min_value(&self, profile: &[ItemId]) -> Option<u64> {
        profile.iter().map(|&i| self.hash.hash_u32(i)).min()
    }

    /// The *bucket* of a profile under this function: the item achieving the
    /// minimum. Using the argmin item (rather than the 64-bit hash) matches
    /// the paper's description of MinHash creating "one cluster per item".
    #[inline]
    pub fn bucket(&self, profile: &[ItemId]) -> Option<ItemId> {
        profile.iter().copied().min_by_key(|&i| self.hash.hash_u32(i))
    }
}

/// A MinHash signature: one min value per function, enabling Jaccard
/// estimation as the fraction of agreeing coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashSignature(pub Vec<u64>);

impl MinHashSignature {
    /// Computes the signature of `profile` under the function bank.
    pub fn compute(bank: &[MinHasher], profile: &[ItemId]) -> Self {
        MinHashSignature(bank.iter().map(|h| h.min_value(profile).unwrap_or(u64::MAX)).collect())
    }

    /// Estimated Jaccard similarity: fraction of equal coordinates.
    pub fn estimate(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "signatures must have equal length");
        if self.0.is_empty() {
            return 0.0;
        }
        let equal = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        equal as f64 / self.0.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::Jaccard;

    #[test]
    fn empty_profile_has_no_bucket() {
        let mh = MinHasher::new(1);
        assert_eq!(mh.bucket(&[]), None);
        assert_eq!(mh.min_value(&[]), None);
    }

    #[test]
    fn bucket_is_an_element_of_the_profile() {
        let mh = MinHasher::new(2);
        let profile = [3, 17, 99, 1000];
        let b = mh.bucket(&profile).unwrap();
        assert!(profile.contains(&b));
    }

    #[test]
    fn identical_profiles_share_buckets() {
        let mh = MinHasher::new(3);
        let p = [5, 6, 7];
        assert_eq!(mh.bucket(&p), mh.bucket(&p));
    }

    #[test]
    fn bucket_is_stable_under_reordering_of_equal_sets() {
        // Profiles are sorted in the dataset, but bucket() must not depend
        // on position — it is keyed on hashed values.
        let mh = MinHasher::new(4);
        assert_eq!(mh.bucket(&[1, 2, 3]), mh.bucket(&[1, 2, 3]));
    }

    #[test]
    fn collision_probability_tracks_jaccard() {
        // The defining MinHash property: P[min agree] = J(a, b).
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (20..60).collect(); // J = 20/60 = 1/3
        let j = Jaccard::similarity(&a, &b);
        let trials = 4000;
        let agreements = (0..trials)
            .filter(|&s| {
                let mh = MinHasher::new(s);
                mh.min_value(&a) == mh.min_value(&b)
            })
            .count();
        let p = agreements as f64 / trials as f64;
        assert!((p - j).abs() < 0.03, "agreement rate {p:.3} vs Jaccard {j:.3}");
    }

    #[test]
    fn signature_estimate_tracks_jaccard() {
        let bank = MinHasher::family(7, 512);
        let a: Vec<u32> = (0..30).collect();
        let b: Vec<u32> = (10..40).collect(); // J = 20/40 = 0.5
        let sa = MinHashSignature::compute(&bank, &a);
        let sb = MinHashSignature::compute(&bank, &b);
        let est = sa.estimate(&sb);
        assert!((est - 0.5).abs() < 0.08, "estimate {est} too far from 0.5");
    }

    #[test]
    fn signature_self_similarity_is_one() {
        let bank = MinHasher::family(8, 16);
        let s = MinHashSignature::compute(&bank, &[1, 2, 3]);
        assert_eq!(s.estimate(&s), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_signature_lengths_panic() {
        MinHashSignature(vec![1]).estimate(&MinHashSignature(vec![1, 2]));
    }
}
