//! Similarity substrate for the Cluster-and-Conquer reproduction.
//!
//! The cost model of the paper is the **number of similarity computations**:
//! every KNN-graph algorithm it studies (Brute Force, Hyrec, NNDescent, LSH,
//! C²) differs only in *which pairs* it compares. This crate provides:
//!
//! * [`jaccard`] / [`cosine`] — exact set similarities over sorted profiles;
//! * [`hash`] — a seeded family of fast 64-bit avalanche hash functions
//!   (SplitMix64 finalizer), the stand-in for the paper's Jenkins hash;
//! * [`goldfinger`] — the GoldFinger compact fingerprint (Guerraoui et al.,
//!   ICDE'19/WWW'20): a `B`-bit single-hash fingerprint per user, with a
//!   popcount-based Jaccard estimator. The paper runs *all* competitors on
//!   1024-bit GoldFinger fingerprints (§IV-C); Table V ablates it;
//! * [`minhash`] — MinHash buckets and signatures, used by the LSH baseline
//!   and the C²/MinHash ablation (Table IV);
//! * [`backend`] — [`SimilarityData`], the instrumented similarity oracle
//!   every algorithm consumes: it dispatches to raw Jaccard or GoldFinger
//!   and counts comparisons with a relaxed atomic;
//! * [`kernel`] — the batched hot path: monomorphized [`SimKernel`]s
//!   (fixed fingerprint widths, contiguous [`ClusterTile`]s) dispatched
//!   once per cluster via [`SimilarityData::solve_cluster`], with
//!   comparison accounting batched into one flush.

pub mod backend;
pub mod bbit;
pub mod bloom;
pub mod cosine;
pub mod goldfinger;
pub mod hash;
pub mod jaccard;
pub mod kernel;
pub mod minhash;

pub use backend::{SimilarityBackend, SimilarityData};
pub use goldfinger::GoldFinger;
pub use hash::SeededHash;
pub use jaccard::Jaccard;
pub use kernel::{ClusterTile, SimKernel, SimSolve};
pub use minhash::MinHasher;
