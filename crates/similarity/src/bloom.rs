//! Bloom-filter profile summaries (Bloom'70 [37]; used for KNN similarity
//! by Gorai et al. [1] and BLIP [38] in the paper's related work).
//!
//! A Bloom filter generalizes GoldFinger's single-hash fingerprint to `h`
//! hash functions per item. With `h = 1` it degenerates to GoldFinger's SHF
//! exactly; with more functions the filter answers membership more
//! accurately but the intersection-based Jaccard estimate degrades faster
//! under saturation — the trade-off that made the GoldFinger authors pick
//! `h = 1`. Provided as an extension estimator with an inclusion–exclusion
//! Jaccard approximation.

use crate::hash::SeededHash;
use cnc_dataset::ItemId;

/// A Bloom filter over item ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    bits: usize,
    hashes: u32,
    root: SeededHash,
}

impl BloomFilter {
    /// Creates an empty filter of `bits` (multiple of 64) with `hashes`
    /// hash functions derived from `seed`.
    ///
    /// # Panics
    /// Panics if `bits` is zero or not a multiple of 64, or `hashes == 0`.
    pub fn new(bits: usize, hashes: u32, seed: u64) -> Self {
        assert!(bits > 0 && bits.is_multiple_of(64), "bits must be a positive multiple of 64");
        assert!(hashes > 0, "at least one hash function is required");
        BloomFilter { words: vec![0u64; bits / 64], bits, hashes, root: SeededHash::new(seed) }
    }

    /// Builds a filter containing every item of `profile`.
    pub fn from_profile(profile: &[ItemId], bits: usize, hashes: u32, seed: u64) -> Self {
        let mut filter = BloomFilter::new(bits, hashes, seed);
        for &item in profile {
            filter.insert(item);
        }
        filter
    }

    #[inline]
    fn probe(&self, item: ItemId, probe_index: u32) -> usize {
        // Kirsch–Mitzenmacher double hashing: h1 + i·h2 over the bit range.
        let h = self.root.hash_u64(item as u64);
        let h1 = h as u32 as u64;
        let h2 = (h >> 32) | 1; // odd step
        ((h1.wrapping_add(probe_index as u64 * h2)) % self.bits as u64) as usize
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: ItemId) {
        for i in 0..self.hashes {
            let bit = self.probe(item, i);
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Membership query (no false negatives; false-positive rate grows with
    /// saturation).
    pub fn contains(&self, item: ItemId) -> bool {
        (0..self.hashes).all(|i| {
            let bit = self.probe(item, i);
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Filter width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Estimates the cardinality of the represented set from the fill rate:
    /// `n̂ = −(m/h)·ln(1 − X/m)` where `X` is the popcount.
    pub fn estimate_cardinality(&self) -> f64 {
        let m = self.bits as f64;
        let x = self.popcount() as f64;
        if x >= m {
            return f64::INFINITY;
        }
        -(m / self.hashes as f64) * (1.0 - x / m).ln()
    }

    /// Estimates the Jaccard similarity of two profiles from their filters
    /// via estimated cardinalities of each set and of the union
    /// (the union filter is the bitwise OR):
    /// `Ĵ = (n̂_a + n̂_b − n̂_∪) / n̂_∪`, clamped to `[0, 1]`.
    pub fn estimate_jaccard(&self, other: &BloomFilter) -> f64 {
        assert_eq!(self.bits, other.bits, "filters must have equal width");
        assert_eq!(self.hashes, other.hashes, "filters must use the same h");
        let union = BloomFilter {
            words: self.words.iter().zip(other.words.iter()).map(|(a, b)| a | b).collect(),
            bits: self.bits,
            hashes: self.hashes,
            root: self.root,
        };
        let na = self.estimate_cardinality();
        let nb = other.estimate_cardinality();
        let nu = union.estimate_cardinality();
        if !nu.is_finite() || nu <= 0.0 {
            return 0.0;
        }
        ((na + nb - nu) / nu).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::Jaccard;

    fn build(profile: &[u32]) -> BloomFilter {
        BloomFilter::from_profile(profile, 1024, 3, 5)
    }

    #[test]
    fn no_false_negatives() {
        let profile: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let filter = build(&profile);
        for &item in &profile {
            assert!(filter.contains(item), "false negative for {item}");
        }
    }

    #[test]
    fn low_false_positive_rate_when_unsaturated() {
        let profile: Vec<u32> = (0..50).collect();
        let filter = build(&profile);
        let fps = (1000u32..3000).filter(|&i| filter.contains(i)).count();
        // 50 items × 3 hashes in 1024 bits → fp rate ≈ (150/1024)^3 ≈ 0.3%.
        assert!(fps < 40, "{fps} false positives out of 2000 probes");
    }

    #[test]
    fn cardinality_estimate_is_accurate() {
        let profile: Vec<u32> = (0..80).collect();
        let filter = build(&profile);
        let est = filter.estimate_cardinality();
        assert!((est - 80.0).abs() < 8.0, "cardinality estimate {est:.1} vs 80");
    }

    #[test]
    fn jaccard_estimate_tracks_exact() {
        let a: Vec<u32> = (0..60).collect();
        let b: Vec<u32> = (30..90).collect(); // J = 30/90 = 1/3
        let fa = build(&a);
        let fb = build(&b);
        let est = fa.estimate_jaccard(&fb);
        let j = Jaccard::similarity(&a, &b);
        assert!((est - j).abs() < 0.08, "estimate {est:.3} vs J={j:.3}");
    }

    #[test]
    fn identical_profiles_estimate_one() {
        let a: Vec<u32> = (0..40).collect();
        let fa = build(&a);
        assert!((fa.estimate_jaccard(&fa) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_estimate_near_zero() {
        let fa = build(&(0..40).collect::<Vec<u32>>());
        let fb = build(&(5000..5040).collect::<Vec<u32>>());
        assert!(fa.estimate_jaccard(&fb) < 0.08);
    }

    #[test]
    fn h1_bloom_matches_goldfinger_fill_behaviour() {
        // With one hash function a Bloom filter is a single-hash
        // fingerprint; popcount must be bounded by the profile size.
        let profile: Vec<u32> = (0..30).collect();
        let filter = BloomFilter::from_profile(&profile, 1024, 1, 7);
        assert!(filter.popcount() <= 30);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_width_panics() {
        BloomFilter::new(100, 2, 1);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let a = BloomFilter::from_profile(&[1], 64, 2, 1);
        let b = BloomFilter::from_profile(&[1], 128, 2, 1);
        a.estimate_jaccard(&b);
    }
}
