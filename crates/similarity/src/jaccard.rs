//! Exact Jaccard similarity over sorted profiles.
//!
//! `J(P_u, P_v) = |P_u ∩ P_v| / |P_u ∪ P_v|` — the similarity function used
//! throughout the paper (§II-A). Profiles are strictly increasing slices
//! (the [`cnc_dataset::Dataset`] invariant), so the intersection is a linear
//! merge with no hashing and no allocation.

use cnc_dataset::ItemId;

/// Namespace struct for the exact Jaccard functions.
///
/// All methods are associated functions so call sites read
/// `Jaccard::similarity(a, b)`.
pub struct Jaccard;

/// Size ratio beyond which the galloping intersection beats the linear
/// merge: galloping costs `O(|small| · log |large|)`, the merge
/// `O(|small| + |large|)`, so the switch pays once the larger side is a
/// multiple of the smaller (the `RawKernel` hot path hits this whenever a
/// heavy user meets light ones — the merge-bound Raw row of the kernels
/// bench).
const GALLOP_CUTOFF: usize = 8;

impl Jaccard {
    /// Size of the intersection of two strictly increasing slices.
    ///
    /// Balanced inputs take the branch-light linear merge; skewed inputs
    /// (one side more than [`GALLOP_CUTOFF`]× the other) gallop the
    /// smaller side through the larger one — exponential probe then
    /// binary search, resuming where the previous item landed. The count
    /// is exact either way, so every similarity stays bit-identical to
    /// the merge path (locked by the proptests below).
    #[inline]
    pub fn intersection(a: &[ItemId], b: &[ItemId]) -> usize {
        if a.len() * GALLOP_CUTOFF < b.len() {
            Self::intersection_gallop(a, b)
        } else if b.len() * GALLOP_CUTOFF < a.len() {
            Self::intersection_gallop(b, a)
        } else {
            Self::intersection_merge(a, b)
        }
    }

    /// The linear-merge intersection (the seed implementation) — kept
    /// public as the reference the galloping path is property-tested
    /// against.
    #[inline]
    pub fn intersection_merge(a: &[ItemId], b: &[ItemId]) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            count += usize::from(x == y);
            // Branch-light merge: advance the smaller side (both on equal).
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
        count
    }

    /// Galloping (exponential + binary search) intersection for skewed
    /// sizes: for each item of `small` in order, the first candidate
    /// position in `large` is found by doubling steps from where the last
    /// item landed, then pinned down by binary search within the
    /// overshot window.
    fn intersection_gallop(small: &[ItemId], large: &[ItemId]) -> usize {
        let mut count = 0usize;
        let mut base = 0usize;
        for &x in small {
            if base >= large.len() {
                break;
            }
            // Exponential probe: after it, the first element ≥ x lies in
            // `large[base + step/2 .. base + step]` (or past the end).
            let mut step = 1usize;
            while base + step < large.len() && large[base + step] < x {
                step <<= 1;
            }
            let lo = base + step / 2;
            let hi = (base + step + 1).min(large.len());
            let at = lo + large[lo..hi].partition_point(|&y| y < x);
            if at < large.len() && large[at] == x {
                count += 1;
                base = at + 1;
            } else {
                base = at;
            }
        }
        count
    }

    /// Size of the union, `|a| + |b| - |a ∩ b|`.
    #[inline]
    pub fn union(a: &[ItemId], b: &[ItemId]) -> usize {
        a.len() + b.len() - Self::intersection(a, b)
    }

    /// Exact Jaccard similarity in `[0, 1]`. Two empty sets have similarity 0
    /// (the convention the paper's datasets make unreachable via the
    /// 20-rating filter, but which keeps the function total).
    #[inline]
    pub fn similarity(a: &[ItemId], b: &[ItemId]) -> f64 {
        let inter = Self::intersection(a, b);
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        let a = [1, 5, 9, 12];
        assert_eq!(Jaccard::similarity(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(Jaccard::similarity(&[1, 3], &[2, 4]), 0.0);
    }

    #[test]
    fn paper_example_section_2a() {
        // P_u = {i1, i2, i3}, P_v = {i3, i4, i5}: J = 1/5.
        let pu = [1, 2, 3];
        let pv = [3, 4, 5];
        assert!((Jaccard::similarity(&pu, &pv) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(Jaccard::similarity(&[], &[]), 0.0);
        assert_eq!(Jaccard::similarity(&[1], &[]), 0.0);
        assert_eq!(Jaccard::intersection(&[], &[1, 2]), 0);
    }

    #[test]
    fn intersection_counts_common_elements() {
        assert_eq!(Jaccard::intersection(&[1, 2, 3, 7, 9], &[2, 3, 4, 9]), 3);
    }

    #[test]
    fn union_matches_inclusion_exclusion() {
        let a = [1, 2, 3];
        let b = [3, 4];
        assert_eq!(Jaccard::union(&a, &b), 4);
    }

    #[test]
    fn subset_similarity() {
        let a = [1, 2, 3, 4];
        let b = [2, 3];
        assert!((Jaccard::similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry_on_random_like_inputs() {
        let a = [0, 4, 8, 15, 16, 23, 42];
        let b = [4, 15, 21, 42, 99];
        assert_eq!(Jaccard::similarity(&a, &b), Jaccard::similarity(&b, &a));
    }

    #[test]
    fn galloping_kicks_in_on_skewed_sizes_and_stays_exact() {
        // 3 items vs 100: well past the cutoff on either side.
        let small = [7u32, 40, 77];
        let large: Vec<u32> = (0..100).collect();
        assert_eq!(Jaccard::intersection(&small, &large), 3);
        assert_eq!(Jaccard::intersection(&large, &small), 3);
        assert_eq!(Jaccard::intersection_merge(&small, &large), 3);
        // Disjoint skewed sets, matches at both ends, empty small side.
        let high: Vec<u32> = (1_000..1_100).collect();
        assert_eq!(Jaccard::intersection(&small, &high), 0);
        assert_eq!(Jaccard::intersection(&[0, 99], &large), 2);
        assert_eq!(Jaccard::intersection(&[], &large), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set() -> impl Strategy<Value = Vec<ItemId>> {
        proptest::collection::btree_set(0u32..500, 0..60)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn similarity_is_in_unit_interval(a in sorted_set(), b in sorted_set()) {
            let s = Jaccard::similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn similarity_is_symmetric(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(Jaccard::similarity(&a, &b), Jaccard::similarity(&b, &a));
        }

        #[test]
        fn intersection_matches_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            prop_assert_eq!(Jaccard::intersection(&a, &b), naive);
        }

        /// The galloping dispatch is bit-identical to the linear merge on
        /// deliberately skewed inputs (small set vs a large one), in both
        /// argument orders — the seed semantics the RawKernel hot path
        /// must keep.
        #[test]
        fn galloping_matches_linear_merge_on_skewed_sets(
            small in proptest::collection::btree_set(0u32..4_000, 0..12)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            large in proptest::collection::btree_set(0u32..4_000, 150..400)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        ) {
            let merge = Jaccard::intersection_merge(&small, &large);
            prop_assert_eq!(Jaccard::intersection(&small, &large), merge);
            prop_assert_eq!(Jaccard::intersection(&large, &small), merge);
            // The similarities built on top stay bit-identical too.
            prop_assert_eq!(
                Jaccard::similarity(&small, &large).to_bits(),
                Jaccard::similarity(&large, &small).to_bits()
            );
        }

        #[test]
        fn self_similarity_is_one_for_nonempty(a in sorted_set()) {
            prop_assume!(!a.is_empty());
            prop_assert_eq!(Jaccard::similarity(&a, &a), 1.0);
        }

        #[test]
        fn union_plus_intersection_equals_size_sum(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(
                Jaccard::union(&a, &b) + Jaccard::intersection(&a, &b),
                a.len() + b.len()
            );
        }
    }
}
