//! Exact Jaccard similarity over sorted profiles.
//!
//! `J(P_u, P_v) = |P_u ∩ P_v| / |P_u ∪ P_v|` — the similarity function used
//! throughout the paper (§II-A). Profiles are strictly increasing slices
//! (the [`cnc_dataset::Dataset`] invariant), so the intersection is a linear
//! merge with no hashing and no allocation.

use cnc_dataset::ItemId;

/// Namespace struct for the exact Jaccard functions.
///
/// All methods are associated functions so call sites read
/// `Jaccard::similarity(a, b)`.
pub struct Jaccard;

impl Jaccard {
    /// Size of the intersection of two strictly increasing slices.
    #[inline]
    pub fn intersection(a: &[ItemId], b: &[ItemId]) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            count += usize::from(x == y);
            // Branch-light merge: advance the smaller side (both on equal).
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
        count
    }

    /// Size of the union, `|a| + |b| - |a ∩ b|`.
    #[inline]
    pub fn union(a: &[ItemId], b: &[ItemId]) -> usize {
        a.len() + b.len() - Self::intersection(a, b)
    }

    /// Exact Jaccard similarity in `[0, 1]`. Two empty sets have similarity 0
    /// (the convention the paper's datasets make unreachable via the
    /// 20-rating filter, but which keeps the function total).
    #[inline]
    pub fn similarity(a: &[ItemId], b: &[ItemId]) -> f64 {
        let inter = Self::intersection(a, b);
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        let a = [1, 5, 9, 12];
        assert_eq!(Jaccard::similarity(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(Jaccard::similarity(&[1, 3], &[2, 4]), 0.0);
    }

    #[test]
    fn paper_example_section_2a() {
        // P_u = {i1, i2, i3}, P_v = {i3, i4, i5}: J = 1/5.
        let pu = [1, 2, 3];
        let pv = [3, 4, 5];
        assert!((Jaccard::similarity(&pu, &pv) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(Jaccard::similarity(&[], &[]), 0.0);
        assert_eq!(Jaccard::similarity(&[1], &[]), 0.0);
        assert_eq!(Jaccard::intersection(&[], &[1, 2]), 0);
    }

    #[test]
    fn intersection_counts_common_elements() {
        assert_eq!(Jaccard::intersection(&[1, 2, 3, 7, 9], &[2, 3, 4, 9]), 3);
    }

    #[test]
    fn union_matches_inclusion_exclusion() {
        let a = [1, 2, 3];
        let b = [3, 4];
        assert_eq!(Jaccard::union(&a, &b), 4);
    }

    #[test]
    fn subset_similarity() {
        let a = [1, 2, 3, 4];
        let b = [2, 3];
        assert!((Jaccard::similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry_on_random_like_inputs() {
        let a = [0, 4, 8, 15, 16, 23, 42];
        let b = [4, 15, 21, 42, 99];
        assert_eq!(Jaccard::similarity(&a, &b), Jaccard::similarity(&b, &a));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set() -> impl Strategy<Value = Vec<ItemId>> {
        proptest::collection::btree_set(0u32..500, 0..60)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn similarity_is_in_unit_interval(a in sorted_set(), b in sorted_set()) {
            let s = Jaccard::similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn similarity_is_symmetric(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(Jaccard::similarity(&a, &b), Jaccard::similarity(&b, &a));
        }

        #[test]
        fn intersection_matches_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            prop_assert_eq!(Jaccard::intersection(&a, &b), naive);
        }

        #[test]
        fn self_similarity_is_one_for_nonempty(a in sorted_set()) {
            prop_assume!(!a.is_empty());
            prop_assert_eq!(Jaccard::similarity(&a, &a), 1.0);
        }

        #[test]
        fn union_plus_intersection_equals_size_sum(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(
                Jaccard::union(&a, &b) + Jaccard::intersection(&a, &b),
                a.len() + b.len()
            );
        }
    }
}
