//! The instrumented similarity oracle consumed by every KNN algorithm.
//!
//! [`SimilarityData`] binds a dataset to a similarity implementation (exact
//! Jaccard on raw profiles, or the GoldFinger estimator — §II-F) and counts
//! every comparison. The comparison count is the paper's primary cost
//! metric and drives the Brute-Force-vs-Hyrec switch inside C²'s local
//! solver.
//!
//! Two call shapes coexist:
//!
//! * [`SimilarityData::sim`] — the scalar path: one enum dispatch and one
//!   relaxed `fetch_add` per pair. Convenient, and kept for cold paths and
//!   as the reference the kernels must match bit-for-bit.
//! * [`SimilarityData::solve_cluster`] / [`SimilarityData::solve_global`] —
//!   the batched path: one dispatch per *cluster* (gathering a contiguous
//!   [`ClusterTile`] for GoldFinger backends, picking the fixed-width
//!   kernel specialization), after which the solver runs monomorphized and
//!   flushes its comparison count in one [`SimilarityData::add_comparisons`].

use crate::goldfinger::GoldFinger;
use crate::jaccard::Jaccard;
use crate::kernel::{ClusterTile, RawKernel, Remap, SimSolve};
use cnc_dataset::{Dataset, UserId};
use cnc_telemetry::{Counter, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which similarity implementation to use (paper §IV-C: all main experiments
/// run on 1024-bit GoldFinger; Table V ablates raw data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarityBackend {
    /// Exact Jaccard over the raw sorted profiles.
    Raw,
    /// GoldFinger fingerprints of the given width (bits, multiple of 64).
    GoldFinger { bits: usize, seed: u64 },
}

impl Default for SimilarityBackend {
    /// The paper's default: 1024-bit GoldFinger.
    fn default() -> Self {
        SimilarityBackend::GoldFinger { bits: GoldFinger::DEFAULT_BITS, seed: 0xC0FFEE }
    }
}

enum Kind<'a> {
    Raw(&'a Dataset),
    /// Shared so one fingerprint build can back many oracles (bench
    /// repetitions, runtime workers) without re-hashing the dataset.
    GoldFinger(Arc<GoldFinger>),
}

/// A similarity oracle over one dataset, with comparison counting.
///
/// Shared immutably across worker threads; the counter uses relaxed atomics
/// (only the final total is observed).
pub struct SimilarityData<'a> {
    kind: Kind<'a>,
    comparisons: AtomicU64,
    /// Telemetry mirror of the comparison counter, labeled by kernel
    /// width (`cnc_kernel_comparisons_total{width="raw"|"<bits>"}`).
    /// Resolved through the registry lock once per oracle, only when
    /// telemetry is enabled.
    kernel_counter: OnceLock<Arc<Counter>>,
}

impl<'a> SimilarityData<'a> {
    /// Materializes the backend for `dataset` (builds fingerprints serially
    /// when the backend is GoldFinger; see [`SimilarityData::build_parallel`]).
    pub fn build(backend: SimilarityBackend, dataset: &'a Dataset) -> Self {
        Self::build_parallel(backend, dataset, 1)
    }

    /// Materializes the backend, building GoldFinger fingerprints on
    /// `threads` workers (0 = all cores). Bit-identical to
    /// [`SimilarityData::build`] for every thread count.
    pub fn build_parallel(
        backend: SimilarityBackend,
        dataset: &'a Dataset,
        threads: usize,
    ) -> Self {
        let kind = match backend {
            SimilarityBackend::Raw => Kind::Raw(dataset),
            SimilarityBackend::GoldFinger { bits, seed } => {
                Kind::GoldFinger(Arc::new(GoldFinger::build_parallel(dataset, bits, seed, threads)))
            }
        };
        SimilarityData { kind, comparisons: AtomicU64::new(0), kernel_counter: OnceLock::new() }
    }

    /// An oracle over a pre-built, shared fingerprint set.
    ///
    /// This is how one `GoldFinger::build` is amortized across bench
    /// repetitions and runtime workers (ROADMAP: "share one
    /// `SimilarityData` fingerprint build across workers"): clone the `Arc`
    /// per consumer instead of re-hashing the full dataset. Each oracle
    /// still counts its own comparisons.
    pub fn from_goldfinger(goldfinger: Arc<GoldFinger>) -> SimilarityData<'static> {
        SimilarityData {
            kind: Kind::GoldFinger(goldfinger),
            comparisons: AtomicU64::new(0),
            kernel_counter: OnceLock::new(),
        }
    }

    /// Mirrors `n` comparisons into the per-kernel-width telemetry
    /// counter. One relaxed load when disabled; the handle is resolved
    /// once per oracle and cached.
    #[inline]
    fn telemetry_comparisons(&self, n: u64) {
        let telemetry = Telemetry::global();
        if !telemetry.enabled() {
            return;
        }
        let counter = self.kernel_counter.get_or_init(|| {
            let width = match &self.kind {
                Kind::Raw(_) => "raw".to_string(),
                Kind::GoldFinger(gf) => gf.bits().to_string(),
            };
            telemetry.counter("cnc_kernel_comparisons_total", &[("width", &width)])
        });
        counter.add(n);
    }

    /// The similarity of users `u` and `v` in `[0, 1]`, counted as one
    /// comparison.
    #[inline]
    pub fn sim(&self, u: UserId, v: UserId) -> f32 {
        self.comparisons.fetch_add(1, Ordering::Relaxed);
        self.telemetry_comparisons(1);
        self.sim_uncounted(u, v)
    }

    /// The similarity of users `u` and `v`, **without** touching the
    /// comparison counter — for batched callers that count locally and
    /// flush with [`SimilarityData::add_comparisons`].
    #[inline]
    pub fn sim_uncounted(&self, u: UserId, v: UserId) -> f32 {
        match &self.kind {
            Kind::Raw(ds) => Jaccard::similarity(ds.profile(u), ds.profile(v)) as f32,
            Kind::GoldFinger(gf) => gf.estimate(u, v) as f32,
        }
    }

    /// Credits `n` comparisons in one atomic add — the batched-accounting
    /// flush. `comparisons()` totals are identical to counting every pair
    /// individually as long as callers flush exactly what they computed.
    #[inline]
    pub fn add_comparisons(&self, n: u64) {
        if n > 0 {
            self.comparisons.fetch_add(n, Ordering::Relaxed);
            self.telemetry_comparisons(n);
        }
    }

    /// Runs `solver` against the monomorphized kernel for the cluster
    /// `users`: raw backends get a [`Remap`]ped exact-Jaccard kernel;
    /// GoldFinger backends get a contiguous [`ClusterTile`] (gathered here,
    /// once) at the matching fixed-width specialization. Kernel rows are
    /// cluster-local indices, positionally aligned with `users`.
    ///
    /// No comparisons are counted — the solver flushes its own total.
    pub fn solve_cluster<S: SimSolve>(&self, users: &[UserId], solver: S) -> S::Output {
        match &self.kind {
            Kind::Raw(ds) => solver.run(&Remap::new(users, RawKernel::new(ds))),
            Kind::GoldFinger(gf) => ClusterTile::gather(gf, users).solve(solver),
        }
    }

    /// Runs `solver` against the monomorphized kernel over **all** users
    /// (rows are global user ids) — the whole-dataset analogue of
    /// [`SimilarityData::solve_cluster`] used by the global baselines.
    /// GoldFinger backends need no gather: the fingerprint array is already
    /// contiguous in user order.
    ///
    /// No comparisons are counted — the solver flushes its own total.
    pub fn solve_global<S: SimSolve>(&self, solver: S) -> S::Output {
        match &self.kind {
            Kind::Raw(ds) => solver.run(&RawKernel::new(ds)),
            Kind::GoldFinger(gf) => {
                crate::kernel::solve_words(gf.words(), gf.words_per_user(), solver)
            }
        }
    }

    /// Total comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Ordering::Relaxed)
    }

    /// Resets the comparison counter (used between experiment phases).
    pub fn reset_comparisons(&self) {
        self.comparisons.store(0, Ordering::Relaxed);
    }

    /// The GoldFinger fingerprints, if this backend uses them.
    pub fn goldfinger(&self) -> Option<&GoldFinger> {
        match &self.kind {
            Kind::GoldFinger(gf) => Some(gf),
            Kind::Raw(_) => None,
        }
    }

    /// A shareable handle to the fingerprints, if this backend uses them
    /// (pass it to [`SimilarityData::from_goldfinger`] to reuse the build).
    pub fn goldfinger_arc(&self) -> Option<Arc<GoldFinger>> {
        match &self.kind {
            Kind::GoldFinger(gf) => Some(Arc::clone(gf)),
            Kind::Raw(_) => None,
        }
    }

    /// True if this oracle computes exact Jaccard.
    pub fn is_exact(&self) -> bool {
        matches!(self.kind, Kind::Raw(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{pair_count, pairwise, SimKernel};

    fn toy() -> Dataset {
        Dataset::from_profiles(vec![vec![1, 2, 3], vec![3, 4, 5], vec![1, 2, 3]], 0)
    }

    #[test]
    fn raw_backend_is_exact() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        assert!(sim.is_exact());
        assert!((sim.sim(0, 1) - 0.2).abs() < 1e-6);
        assert_eq!(sim.sim(0, 2), 1.0);
    }

    #[test]
    fn goldfinger_backend_estimates() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::GoldFinger { bits: 4096, seed: 1 }, &ds);
        assert!(!sim.is_exact());
        assert!(sim.goldfinger().is_some());
        // With 5 items in 4096 bits the estimate is exact w.h.p.
        assert!((sim.sim(0, 1) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn comparisons_are_counted_and_resettable() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        assert_eq!(sim.comparisons(), 0);
        sim.sim(0, 1);
        sim.sim(1, 2);
        assert_eq!(sim.comparisons(), 2);
        sim.reset_comparisons();
        assert_eq!(sim.comparisons(), 0);
    }

    #[test]
    fn uncounted_sim_and_batched_flush_match_scalar_accounting() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let scalar = sim.sim(0, 1);
        assert_eq!(sim.sim_uncounted(0, 1).to_bits(), scalar.to_bits());
        assert_eq!(sim.comparisons(), 1, "sim_uncounted must not count");
        sim.add_comparisons(41);
        assert_eq!(sim.comparisons(), 42);
        sim.add_comparisons(0);
        assert_eq!(sim.comparisons(), 42);
    }

    #[test]
    fn counting_is_thread_safe() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        sim.sim(0, 1);
                    }
                });
            }
        });
        assert_eq!(sim.comparisons(), 4000);
    }

    #[test]
    fn default_backend_is_paper_goldfinger() {
        match SimilarityBackend::default() {
            SimilarityBackend::GoldFinger { bits, .. } => assert_eq!(bits, 1024),
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn from_goldfinger_shares_one_build() {
        let ds = toy();
        let built =
            SimilarityData::build(SimilarityBackend::GoldFinger { bits: 256, seed: 9 }, &ds);
        let arc = built.goldfinger_arc().unwrap();
        let shared = SimilarityData::from_goldfinger(Arc::clone(&arc));
        // Same underlying fingerprints (pointer-equal), same values,
        // independent counters.
        assert!(std::ptr::eq(built.goldfinger().unwrap(), shared.goldfinger().unwrap()));
        assert_eq!(shared.sim(0, 1).to_bits(), built.sim(0, 1).to_bits());
        assert_eq!(built.comparisons(), 1);
        assert_eq!(shared.comparisons(), 1);
        assert!(SimilarityData::build(SimilarityBackend::Raw, &ds).goldfinger_arc().is_none());
    }

    #[test]
    fn build_parallel_matches_serial_build() {
        let ds = toy();
        let backend = SimilarityBackend::GoldFinger { bits: 512, seed: 4 };
        let serial = SimilarityData::build(backend, &ds);
        let parallel = SimilarityData::build_parallel(backend, &ds, 0);
        assert_eq!(serial.goldfinger().unwrap().words(), parallel.goldfinger().unwrap().words());
    }

    #[test]
    fn solve_cluster_matches_scalar_sims_on_both_backends() {
        struct AllPairs<'a> {
            users: &'a [UserId],
        }
        impl SimSolve for AllPairs<'_> {
            type Output = Vec<(usize, usize, u32)>;
            fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                assert_eq!(kernel.len(), self.users.len());
                let mut out = Vec::new();
                pairwise(kernel, |i, j, s| out.push((i as usize, j as usize, s.to_bits())));
                out
            }
        }
        let ds = toy();
        let users: Vec<UserId> = vec![2, 0, 1];
        for backend in
            [SimilarityBackend::Raw, SimilarityBackend::GoldFinger { bits: 1024, seed: 6 }]
        {
            let sim = SimilarityData::build(backend, &ds);
            let pairs = sim.solve_cluster(&users, AllPairs { users: &users });
            assert_eq!(sim.comparisons(), 0, "solve_cluster must not count");
            assert_eq!(pairs.len() as u64, pair_count(users.len()));
            for (i, j, bits) in pairs {
                assert_eq!(bits, sim.sim_uncounted(users[i], users[j]).to_bits());
            }
        }
    }

    #[test]
    fn solve_global_matches_scalar_sims_on_both_backends() {
        struct Row;
        impl SimSolve for Row {
            type Output = Vec<u32>;
            fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                (1..kernel.len() as u32).map(|v| kernel.sim(0, v).to_bits()).collect()
            }
        }
        let ds = toy();
        for backend in
            [SimilarityBackend::Raw, SimilarityBackend::GoldFinger { bits: 192, seed: 2 }]
        {
            let sim = SimilarityData::build(backend, &ds);
            let row = sim.solve_global(Row);
            for (v, bits) in (1u32..3).zip(row) {
                assert_eq!(bits, sim.sim_uncounted(0, v).to_bits());
            }
        }
    }
}
