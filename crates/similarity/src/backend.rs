//! The instrumented similarity oracle consumed by every KNN algorithm.
//!
//! [`SimilarityData`] binds a dataset to a similarity implementation (exact
//! Jaccard on raw profiles, or the GoldFinger estimator — §II-F) and counts
//! every comparison with a relaxed atomic. The comparison count is the
//! paper's primary cost metric and drives the Brute-Force-vs-Hyrec switch
//! inside C²'s local solver.

use crate::goldfinger::GoldFinger;
use crate::jaccard::Jaccard;
use cnc_dataset::{Dataset, UserId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which similarity implementation to use (paper §IV-C: all main experiments
/// run on 1024-bit GoldFinger; Table V ablates raw data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarityBackend {
    /// Exact Jaccard over the raw sorted profiles.
    Raw,
    /// GoldFinger fingerprints of the given width (bits, multiple of 64).
    GoldFinger { bits: usize, seed: u64 },
}

impl Default for SimilarityBackend {
    /// The paper's default: 1024-bit GoldFinger.
    fn default() -> Self {
        SimilarityBackend::GoldFinger { bits: GoldFinger::DEFAULT_BITS, seed: 0xC0FFEE }
    }
}

enum Kind<'a> {
    Raw(&'a Dataset),
    GoldFinger(GoldFinger),
}

/// A similarity oracle over one dataset, with comparison counting.
///
/// Shared immutably across worker threads; the counter uses relaxed atomics
/// (only the final total is observed).
pub struct SimilarityData<'a> {
    kind: Kind<'a>,
    comparisons: AtomicU64,
}

impl<'a> SimilarityData<'a> {
    /// Materializes the backend for `dataset` (builds fingerprints when the
    /// backend is GoldFinger).
    pub fn build(backend: SimilarityBackend, dataset: &'a Dataset) -> Self {
        let kind = match backend {
            SimilarityBackend::Raw => Kind::Raw(dataset),
            SimilarityBackend::GoldFinger { bits, seed } => {
                Kind::GoldFinger(GoldFinger::build(dataset, bits, seed))
            }
        };
        SimilarityData { kind, comparisons: AtomicU64::new(0) }
    }

    /// The similarity of users `u` and `v` in `[0, 1]`, counted as one
    /// comparison.
    #[inline]
    pub fn sim(&self, u: UserId, v: UserId) -> f32 {
        self.comparisons.fetch_add(1, Ordering::Relaxed);
        match &self.kind {
            Kind::Raw(ds) => Jaccard::similarity(ds.profile(u), ds.profile(v)) as f32,
            Kind::GoldFinger(gf) => gf.estimate(u, v) as f32,
        }
    }

    /// Total comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Ordering::Relaxed)
    }

    /// Resets the comparison counter (used between experiment phases).
    pub fn reset_comparisons(&self) {
        self.comparisons.store(0, Ordering::Relaxed);
    }

    /// The GoldFinger fingerprints, if this backend uses them.
    pub fn goldfinger(&self) -> Option<&GoldFinger> {
        match &self.kind {
            Kind::GoldFinger(gf) => Some(gf),
            Kind::Raw(_) => None,
        }
    }

    /// True if this oracle computes exact Jaccard.
    pub fn is_exact(&self) -> bool {
        matches!(self.kind, Kind::Raw(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_profiles(vec![vec![1, 2, 3], vec![3, 4, 5], vec![1, 2, 3]], 0)
    }

    #[test]
    fn raw_backend_is_exact() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        assert!(sim.is_exact());
        assert!((sim.sim(0, 1) - 0.2).abs() < 1e-6);
        assert_eq!(sim.sim(0, 2), 1.0);
    }

    #[test]
    fn goldfinger_backend_estimates() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::GoldFinger { bits: 4096, seed: 1 }, &ds);
        assert!(!sim.is_exact());
        assert!(sim.goldfinger().is_some());
        // With 5 items in 4096 bits the estimate is exact w.h.p.
        assert!((sim.sim(0, 1) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn comparisons_are_counted_and_resettable() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        assert_eq!(sim.comparisons(), 0);
        sim.sim(0, 1);
        sim.sim(1, 2);
        assert_eq!(sim.comparisons(), 2);
        sim.reset_comparisons();
        assert_eq!(sim.comparisons(), 0);
    }

    #[test]
    fn counting_is_thread_safe() {
        let ds = toy();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        sim.sim(0, 1);
                    }
                });
            }
        });
        assert_eq!(sim.comparisons(), 4000);
    }

    #[test]
    fn default_backend_is_paper_goldfinger() {
        match SimilarityBackend::default() {
            SimilarityBackend::GoldFinger { bits, .. } => assert_eq!(bits, 1024),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
