//! b-bit minwise hashing (Li & König, CACM'11 — the paper's reference
//! [18]).
//!
//! Classic MinHash keeps a full 64-bit min value per hash function; b-bit
//! minwise hashing stores only the lowest `b` bits of each minimum,
//! shrinking signatures by 64/b at the price of accidental matches. For two
//! sets with Jaccard similarity `J`, the probability that one b-bit
//! coordinate matches is `J + (1 − J)/2^b`, so the unbiased estimator is
//!
//! `Ĵ = (match_rate − 1/2^b) / (1 − 1/2^b)`
//!
//! Provided as an alternative compact estimator alongside GoldFinger: the
//! paper's GoldFinger reference [19] uses exactly this family as its
//! comparison point, which makes it a natural extension target here.

use crate::minhash::MinHasher;
use cnc_dataset::ItemId;

/// A b-bit minwise signature (bit-packed into `u64` words).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BBitSignature {
    words: Vec<u64>,
    bits_per_coord: u32,
    coords: usize,
}

impl BBitSignature {
    /// Computes the signature of `profile` under `bank`, keeping
    /// `bits_per_coord ∈ {1, 2, 4, 8, 16}` bits of each min value.
    ///
    /// # Panics
    /// Panics if `bits_per_coord` is not one of the supported widths.
    pub fn compute(bank: &[MinHasher], profile: &[ItemId], bits_per_coord: u32) -> Self {
        assert!(
            matches!(bits_per_coord, 1 | 2 | 4 | 8 | 16),
            "bits_per_coord must be 1, 2, 4, 8 or 16"
        );
        let coords = bank.len();
        let mask = if bits_per_coord == 64 { u64::MAX } else { (1u64 << bits_per_coord) - 1 };
        let per_word = 64 / bits_per_coord as usize;
        let mut words = vec![0u64; coords.div_ceil(per_word)];
        for (i, hasher) in bank.iter().enumerate() {
            let min = hasher.min_value(profile).unwrap_or(u64::MAX) & mask;
            let word = i / per_word;
            let offset = (i % per_word) as u32 * bits_per_coord;
            words[word] |= min << offset;
        }
        BBitSignature { words, bits_per_coord, coords }
    }

    /// Number of coordinates (hash functions) in the signature.
    pub fn len(&self) -> usize {
        self.coords
    }

    /// True if the signature has no coordinates.
    pub fn is_empty(&self) -> bool {
        self.coords == 0
    }

    /// Signature size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Fraction of coordinates whose retained bits match.
    pub fn match_rate(&self, other: &BBitSignature) -> f64 {
        assert_eq!(self.coords, other.coords, "signatures must have equal length");
        assert_eq!(self.bits_per_coord, other.bits_per_coord, "signatures must use the same b");
        if self.coords == 0 {
            return 0.0;
        }
        let b = self.bits_per_coord;
        let per_word = 64 / b as usize;
        let coord_mask = (1u128 << b) as u64 - 1;
        let mut matches = 0usize;
        for (i, (a, c)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let diff = a ^ c;
            let coords_here = per_word.min(self.coords - i * per_word);
            for j in 0..coords_here {
                let lane = (diff >> (j as u32 * b)) & coord_mask;
                matches += usize::from(lane == 0);
            }
        }
        matches as f64 / self.coords as f64
    }

    /// The unbiased Jaccard estimate, clamped to `[0, 1]`.
    pub fn estimate(&self, other: &BBitSignature) -> f64 {
        let rate = self.match_rate(other);
        let floor = 1.0 / (1u64 << self.bits_per_coord) as f64;
        ((rate - floor) / (1.0 - floor)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::Jaccard;

    fn signatures(a: &[u32], b: &[u32], t: usize, bits: u32) -> (BBitSignature, BBitSignature) {
        let bank = MinHasher::family(17, t);
        (BBitSignature::compute(&bank, a, bits), BBitSignature::compute(&bank, b, bits))
    }

    #[test]
    fn identical_sets_estimate_one() {
        let p: Vec<u32> = (0..30).collect();
        let (sa, sb) = signatures(&p, &p, 128, 2);
        assert_eq!(sa.match_rate(&sb), 1.0);
        assert_eq!(sa.estimate(&sb), 1.0);
    }

    #[test]
    fn one_bit_signatures_are_compact() {
        let p: Vec<u32> = (0..30).collect();
        let bank = MinHasher::family(3, 256);
        let sig = BBitSignature::compute(&bank, &p, 1);
        assert_eq!(sig.size_bytes(), 256 / 8);
        assert_eq!(sig.len(), 256);
    }

    #[test]
    fn estimator_tracks_jaccard_for_various_b() {
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (20..60).collect(); // J = 1/3
        let j = Jaccard::similarity(&a, &b);
        for bits in [1u32, 2, 4, 8, 16] {
            let (sa, sb) = signatures(&a, &b, 2048, bits);
            let est = sa.estimate(&sb);
            assert!((est - j).abs() < 0.06, "b={bits}: estimate {est:.3} too far from J={j:.3}");
        }
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let a: Vec<u32> = (0..30).collect();
        let b: Vec<u32> = (1000..1030).collect();
        let (sa, sb) = signatures(&a, &b, 1024, 4);
        assert!(sa.estimate(&sb) < 0.05);
    }

    #[test]
    fn fewer_bits_same_coords_is_noisier_but_unbiased() {
        // With the same coordinate count, 1-bit estimates have more
        // variance than 8-bit but remain centred: check that across many
        // banks the mean error is small.
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (25..75).collect(); // J = 1/3
        let j = Jaccard::similarity(&a, &b);
        let mut total = 0.0;
        let runs = 40;
        for seed in 0..runs {
            let bank = MinHasher::family(seed, 256);
            let sa = BBitSignature::compute(&bank, &a, 1);
            let sb = BBitSignature::compute(&bank, &b, 1);
            total += sa.estimate(&sb);
        }
        let mean = total / runs as f64;
        assert!((mean - j).abs() < 0.05, "1-bit mean estimate {mean:.3} vs J={j:.3}");
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4, 8 or 16")]
    fn unsupported_width_panics() {
        let bank = MinHasher::family(1, 8);
        BBitSignature::compute(&bank, &[1, 2], 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let bank8 = MinHasher::family(1, 8);
        let bank16 = MinHasher::family(1, 16);
        let a = BBitSignature::compute(&bank8, &[1], 2);
        let b = BBitSignature::compute(&bank16, &[1], 2);
        a.match_rate(&b);
    }
}
