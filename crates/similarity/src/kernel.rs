//! Batched, monomorphized similarity kernels — the §II-F hot path.
//!
//! Every KNN algorithm in this reproduction funnels through
//! [`crate::SimilarityData::sim`], which pays three per-pair costs that have
//! nothing to do with the algorithms themselves:
//!
//! 1. an **enum match** on the backend (raw Jaccard vs GoldFinger),
//! 2. a **contended relaxed `fetch_add`** on the shared comparison counter,
//! 3. a **bounds-checked, runtime-width popcount loop** over two scattered
//!    per-user slices.
//!
//! The paper's pitch is that GoldFinger reduces similarity to "a handful of
//! word-wise AND/OR/popcount operations"; at that scale the dispatch and
//! accounting overheads dominate. This module removes all three for the
//! cluster-solve hot path:
//!
//! * [`SimKernel`] is a plain trait over *row indices*; solvers are written
//!   once, generic over the kernel, and [`crate::SimilarityData`]'s
//!   `solve_cluster`/`solve_global` dispatch on the backend **once per
//!   cluster** (via the [`SimSolve`] visitor), so the whole solve
//!   monomorphizes and per-pair calls inline with no branch;
//! * [`GoldFingerKernel`]`<const W: usize>` fixes the fingerprint width at
//!   compile time (64-bit/1-word, 1024-bit/16-word, 4096-bit/64-word and
//!   8192-bit/128-word specializations; [`GoldFingerDynKernel`] is the
//!   fallback for other widths), letting the compiler fully unroll the
//!   AND/OR/popcount loop;
//! * [`ClusterTile`] gathers a cluster's fingerprints into one contiguous,
//!   cache-friendly block **once per cluster**, so the all-pairs loop
//!   streams over dense rows instead of striding through the full dataset's
//!   word array;
//! * comparison accounting is the *caller's* job: kernels never touch the
//!   shared atomic. Solvers count locally and flush one
//!   [`crate::SimilarityData::add_comparisons`] per cluster or iteration,
//!   with totals provably unchanged;
//! * the **query kernels** ([`RawQueryKernel`], [`GoldFingerQueryKernel`],
//!   [`GoldFingerDynQueryKernel`]) extend the user rows with one trailing
//!   external row — an out-of-sample query — so `cnc-query`'s beam search
//!   can feed whole neighbour lists through [`one_vs_many`] instead of a
//!   scalar oracle call per candidate.
//!
//! Every kernel is **bit-identical** to the scalar oracle: the similarity
//! is computed with exactly the same `f64` arithmetic and cast as
//! `SimilarityData::sim`, asserted by the proptests below.

use crate::goldfinger::GoldFinger;
use crate::jaccard::Jaccard;
use cnc_dataset::{Dataset, UserId};

/// A monomorphized similarity oracle over row indices `0..len()`.
///
/// Rows are whatever the constructor bound them to: global user ids
/// ([`RawKernel`], [`GoldFingerKernel::over`]) or cluster-local indices
/// ([`ClusterTile`] rows, [`Remap`]). `sim` performs **no** comparison
/// accounting — batched callers count locally and flush once.
pub trait SimKernel: Sync {
    /// Number of rows this kernel spans.
    fn len(&self) -> usize;

    /// True if the kernel spans no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Similarity of rows `i` and `j`, bit-identical to
    /// [`crate::SimilarityData::sim`] on the corresponding users.
    fn sim(&self, i: u32, j: u32) -> f32;

    /// Streams `sim(i, j)` for every `j` in `i+1 .. len()`, in order — one
    /// row of the all-pairs triangle. The default calls [`SimKernel::sim`]
    /// per pair; kernels with contiguous rows override it to load row `i`
    /// once and stream the tail rows with no per-pair index arithmetic.
    #[inline]
    fn sweep_row(&self, i: u32, mut sink: impl FnMut(u32, f32))
    where
        Self: Sized,
    {
        for j in (i + 1)..self.len() as u32 {
            sink(j, self.sim(i, j));
        }
    }

    /// Streams every unordered pair `i < j` exactly once. The visit
    /// *order* is kernel-specific (fingerprint kernels block the sweep for
    /// cache reuse); callers must not depend on it — bounded
    /// neighbour-list contents are insertion-order independent, which is
    /// all the solvers need.
    #[inline]
    fn sweep_pairs(&self, mut sink: impl FnMut(u32, u32, f32))
    where
        Self: Sized,
    {
        for i in 0..self.len() as u32 {
            self.sweep_row(i, |j, s| sink(i, j, s));
        }
    }
}

/// The shared final step: both the raw and the GoldFinger oracles divide in
/// `f64` and then truncate to `f32`, so the kernels must too — anything
/// else (e.g. a direct `f32` division) double-rounds differently on rare
/// ratios and would break bit-identity with the scalar path.
#[inline(always)]
fn ratio(inter: u32, union: u32) -> f32 {
    if union == 0 {
        0.0
    } else {
        (inter as f64 / union as f64) as f32
    }
}

/// Dynamic-width AND/OR/popcount estimate over two word rows.
#[inline(always)]
fn sim_words(a: &[u64], b: &[u64]) -> f32 {
    let (mut inter, mut union) = (0u32, 0u32);
    for (x, y) in a.iter().zip(b.iter()) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    ratio(inter, union)
}

/// Fixed-width AND/OR/popcount counts, division deferred: `W` is a
/// compile-time constant, so the loop fully unrolls (and vectorizes —
/// `vpopcntq` on AVX-512 machines) with no per-word bounds checks.
#[inline(always)]
fn counts_fixed<const W: usize>(a: &[u64; W], b: &[u64; W]) -> (u32, u32) {
    let (mut inter, mut union) = (0u32, 0u32);
    let mut w = 0;
    while w < W {
        inter += (a[w] & b[w]).count_ones();
        union += (a[w] | b[w]).count_ones();
        w += 1;
    }
    (inter, union)
}

/// Fixed-width estimate (counts + ratio) for one pair.
#[inline(always)]
fn sim_words_fixed<const W: usize>(a: &[u64; W], b: &[u64; W]) -> f32 {
    let (inter, union) = counts_fixed(a, b);
    ratio(inter, union)
}

/// How many pairs the batched sweeps group per block (one streamed row
/// against LANES cached rows).
const LANES: usize = 8;

/// Explicit AVX-512 inner loops for word counts that are a multiple of 8
/// (one `zmm` per 8 words): `vpopcntq` accumulation for a group of LANES
/// pairs held entirely in vector registers, a transpose-style horizontal
/// reduction, and **one** `vdivpd` for the group's eight ratios — the
/// scalar `divsd` + reduce tail is the serial bottleneck once the
/// popcounts vectorize. Every lane performs the same correctly-rounded
/// IEEE operations as the scalar path (`u64 → f64` conversion is exact,
/// division and the `f64 → f32` narrowing round to nearest even), so the
/// results are bit-identical — asserted by the module's proptests on any
/// AVX-512 host.
///
/// Dispatch is at **runtime** (the ROADMAP "runtime ISA dispatch" item):
/// the functions are compiled on every x86-64 build via
/// `#[target_feature]` — portable `x86-64-v3` CI included — and the
/// sweeps branch on [`avx512::available`] (`is_x86_feature_detected!`),
/// so a portable binary still uses, and tests still cover, the AVX-512
/// path whenever the host supports it.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// True when the host can execute the sweeps below. The std detection
    /// macro caches the CPUID probe in an atomic, so the per-row checks
    /// in `sweep_row`/`sweep_pairs` cost one relaxed load each.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }

    /// Reduces eight 8-lane `u64` vectors to one vector whose lane `r`
    /// holds the lane-sum of `v[r]` (three unpack/shuffle + add levels).
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512vpopcntdq")]
    unsafe fn hsum8(v: [__m512i; 8]) -> __m512i {
        let sum2 =
            |a, b| _mm512_add_epi64(_mm512_unpacklo_epi64(a, b), _mm512_unpackhi_epi64(a, b));
        let l0 = sum2(v[0], v[1]);
        let l1 = sum2(v[2], v[3]);
        let l2 = sum2(v[4], v[5]);
        let l3 = sum2(v[6], v[7]);
        let m0 = _mm512_add_epi64(
            _mm512_shuffle_i64x2::<0x44>(l0, l1),
            _mm512_shuffle_i64x2::<0xEE>(l0, l1),
        );
        let m1 = _mm512_add_epi64(
            _mm512_shuffle_i64x2::<0x44>(l2, l3),
            _mm512_shuffle_i64x2::<0xEE>(l2, l3),
        );
        _mm512_add_epi64(_mm512_shuffle_i64x2::<0x88>(m0, m1), _mm512_shuffle_i64x2::<0xDD>(m0, m1))
    }

    /// Intersection/union popcounts of one streamed `W`-word row (`other`)
    /// against eight contiguous cached rows starting at `rows`, returned
    /// as two vectors whose lane `r` belongs to cached row `r`.
    ///
    /// # Safety
    /// `rows` must point at `8 * W` readable words; `W` must be a positive
    /// multiple of 8 (one `zmm` per 8-word chunk).
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512vpopcntdq")]
    unsafe fn counts_vs8<const W: usize>(rows: *const u64, other: &[u64; W]) -> (__m512i, __m512i) {
        debug_assert!(W > 0 && W.is_multiple_of(8));
        let mut inter = [_mm512_setzero_si512(); 8];
        let mut union = [_mm512_setzero_si512(); 8];
        let mut chunk = 0;
        while chunk < W {
            let vo = _mm512_loadu_si512(other.as_ptr().add(chunk) as *const _);
            let mut r = 0;
            while r < 8 {
                let vr = _mm512_loadu_si512(rows.add(r * W + chunk) as *const _);
                inter[r] =
                    _mm512_add_epi64(inter[r], _mm512_popcnt_epi64(_mm512_and_si512(vr, vo)));
                union[r] = _mm512_add_epi64(union[r], _mm512_popcnt_epi64(_mm512_or_si512(vr, vo)));
                r += 1;
            }
            chunk += 8;
        }
        (hsum8(inter), hsum8(union))
    }

    /// Eight lane-wise [`super::ratio`]s in one `vdivpd`, 0/0 lanes masked
    /// to `+0.0` (the empty-fingerprint convention; the speculative divide
    /// cannot trap — FP exceptions are masked).
    ///
    /// # Safety
    /// The caller must have verified [`available`].
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx512vpopcntdq")]
    unsafe fn ratio8(inter: __m512i, union: __m512i) -> [f32; 8] {
        let fi = _mm512_cvtepu64_pd(inter);
        let fu = _mm512_cvtepu64_pd(union);
        let q = _mm512_div_pd(fi, fu);
        let nonzero = _mm512_cmp_pd_mask::<_CMP_NEQ_OQ>(fu, _mm512_setzero_pd());
        let q = _mm512_maskz_mov_pd(nonzero, q);
        let s = _mm512_cvtpd_ps(q);
        let mut out = [0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), s);
        out
    }

    /// Similarities of one streamed `W`-word row against eight contiguous
    /// cached rows — popcounts, transpose reduction and the single
    /// `vdivpd` fused in one feature-annotated function so the helpers
    /// inline together whatever the binary's baseline ISA is.
    ///
    /// # Safety
    /// `rows` must point at `8 * W` readable words, `W` must be a
    /// positive multiple of 8, and the caller must have verified
    /// [`available`].
    #[target_feature(enable = "avx512f,avx512dq,avx512vpopcntdq")]
    pub unsafe fn group_vs_row<const W: usize>(rows: *const u64, other: &[u64; W]) -> [f32; 8] {
        let (inter, union) = counts_vs8::<W>(rows, other);
        ratio8(inter, union)
    }
}

/// Exact-Jaccard kernel over global user ids (the `Raw` backend).
#[derive(Clone, Copy)]
pub struct RawKernel<'a> {
    dataset: &'a Dataset,
}

impl<'a> RawKernel<'a> {
    /// A kernel whose rows are the dataset's users.
    pub fn new(dataset: &'a Dataset) -> Self {
        RawKernel { dataset }
    }
}

impl SimKernel for RawKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.dataset.num_users()
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        Jaccard::similarity(self.dataset.profile(i), self.dataset.profile(j)) as f32
    }
}

/// Restricts an inner kernel to a cluster: row `i` maps to the inner row
/// `users[i]`. This is how the raw backend solves clusters (profiles are
/// variable-length, so there is no tile to gather).
#[derive(Clone, Copy)]
pub struct Remap<'a, K> {
    users: &'a [UserId],
    inner: K,
}

impl<'a, K: SimKernel> Remap<'a, K> {
    /// A cluster view of `inner` over the given rows.
    pub fn new(users: &'a [UserId], inner: K) -> Self {
        Remap { users, inner }
    }
}

impl<K: SimKernel> SimKernel for Remap<'_, K> {
    #[inline]
    fn len(&self) -> usize {
        self.users.len()
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        self.inner.sim(self.users[i as usize], self.users[j as usize])
    }
}

/// Fixed-width GoldFinger kernel: row `i` is words
/// `i·W .. (i+1)·W` of a contiguous word slice (the full
/// [`GoldFinger::words`] array, or a [`ClusterTile`]).
#[derive(Clone, Copy)]
pub struct GoldFingerKernel<'a, const W: usize> {
    words: &'a [u64],
}

impl<'a, const W: usize> GoldFingerKernel<'a, W> {
    /// A kernel over a raw word slice (length must be a multiple of `W`).
    ///
    /// # Panics
    /// Panics if `W == 0` or the slice length is not a multiple of `W`.
    pub fn new(words: &'a [u64]) -> Self {
        assert!(W > 0, "fingerprint width must be positive");
        assert!(words.len().is_multiple_of(W), "word slice is not a whole number of {W}-word rows");
        GoldFingerKernel { words }
    }

    /// A kernel whose rows are the fingerprinted users of `gf`.
    ///
    /// # Panics
    /// Panics if `gf` was not built with `W` words per user.
    pub fn over(gf: &'a GoldFinger) -> Self {
        assert_eq!(gf.words_per_user(), W, "fingerprint width mismatch");
        Self::new(gf.words())
    }

    #[inline(always)]
    fn row(&self, i: u32) -> &[u64; W] {
        let base = i as usize * W;
        self.words[base..base + W].try_into().expect("row is exactly W words")
    }
}

impl<const W: usize> SimKernel for GoldFingerKernel<'_, W> {
    #[inline]
    fn len(&self) -> usize {
        self.words.len() / W
    }

    #[inline(always)]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words_fixed::<W>(self.row(i), self.row(j))
    }

    #[inline]
    fn sweep_row(&self, i: u32, mut sink: impl FnMut(u32, f32)) {
        let ri: [u64; W] = *self.row(i);
        let tail = &self.words[(i as usize + 1) * W..];
        let mut j = i + 1;

        // AVX-512 fast path for zmm-multiple widths: the contiguous tail
        // is consumed 8 rows at a time, each group's popcounts, reduction
        // and division staying in vector registers. The `W % 8` test is a
        // compile-time constant per instantiation — the dead branch
        // disappears — and the feature probe is a cached atomic load.
        #[cfg(target_arch = "x86_64")]
        if W.is_multiple_of(8) && avx512::available() {
            let mut groups = tail.chunks_exact(LANES * W);
            for group in &mut groups {
                // SAFETY: `group` is exactly `8 * W` contiguous words and
                // `available()` verified the CPU features at runtime.
                let sims = unsafe { avx512::group_vs_row::<W>(group.as_ptr(), &ri) };
                for s in sims {
                    sink(j, s);
                    j += 1;
                }
            }
            for chunk in groups.remainder().chunks_exact(W) {
                let rj: &[u64; W] = chunk.try_into().expect("chunks_exact yields W-word rows");
                sink(j, sim_words_fixed::<W>(&ri, rj));
                j += 1;
            }
            return;
        }

        // Portable path: row `i` cached on the stack, the tail consumed as
        // one contiguous stream in exact W-word chunks (no per-pair
        // slicing or bounds arithmetic).
        for chunk in tail.chunks_exact(W) {
            let rj: &[u64; W] = chunk.try_into().expect("chunks_exact yields W-word rows");
            sink(j, sim_words_fixed::<W>(&ri, rj));
            j += 1;
        }
    }

    fn sweep_pairs(&self, mut sink: impl FnMut(u32, u32, f32)) {
        // Register-blocked triangle: a full row sweep streams the whole
        // tile per `i` row, which is memory-bound for wide fingerprints.
        // Caching a block of LANES `i` rows and comparing each streamed
        // tail row against all of them divides the traffic by the block
        // height and gives the CPU LANES independent popcount chains per
        // loaded row. Pairs are each visited exactly once, in block-major
        // order (callers must not depend on the order).
        let n = self.len();
        let mut start = 0usize;
        while start < n {
            let height = LANES.min(n - start);
            let mut block = [[0u64; W]; LANES];
            for (r, row) in block[..height].iter_mut().enumerate() {
                *row = *self.row((start + r) as u32);
            }
            for r in 0..height {
                for c in (r + 1)..height {
                    let s = sim_words_fixed::<W>(&block[r], &block[c]);
                    sink((start + r) as u32, (start + c) as u32, s);
                }
            }
            let tail = &self.words[(start + height) * W..];

            #[cfg(target_arch = "x86_64")]
            if W.is_multiple_of(8) && height == LANES && avx512::available() {
                for (offset, chunk) in tail.chunks_exact(W).enumerate() {
                    let rj: &[u64; W] = chunk.try_into().expect("chunks_exact yields W-word rows");
                    let j = (start + height + offset) as u32;
                    // SAFETY: `block` is `8 * W` contiguous words and
                    // `available()` verified the CPU features at runtime.
                    let sims =
                        unsafe { avx512::group_vs_row::<W>(block.as_ptr() as *const u64, rj) };
                    for (r, s) in sims.into_iter().enumerate() {
                        sink((start + r) as u32, j, s);
                    }
                }
                start += height;
                continue;
            }

            for (offset, chunk) in tail.chunks_exact(W).enumerate() {
                let rj: &[u64; W] = chunk.try_into().expect("chunks_exact yields W-word rows");
                let j = (start + height + offset) as u32;
                for (r, ri) in block[..height].iter().enumerate() {
                    sink((start + r) as u32, j, sim_words_fixed::<W>(ri, rj));
                }
            }
            start += height;
        }
    }
}

/// Dynamic-width GoldFinger fallback for widths without a fixed-`W`
/// specialization (any positive multiple of 64 bits).
#[derive(Clone, Copy)]
pub struct GoldFingerDynKernel<'a> {
    words: &'a [u64],
    words_per_user: usize,
}

impl<'a> GoldFingerDynKernel<'a> {
    /// A kernel over a raw word slice with `words_per_user` words per row.
    ///
    /// # Panics
    /// Panics if `words_per_user` is zero or does not divide the slice.
    pub fn new(words: &'a [u64], words_per_user: usize) -> Self {
        assert!(words_per_user > 0, "fingerprint width must be positive");
        assert!(
            words.len().is_multiple_of(words_per_user),
            "word slice is not a whole number of rows"
        );
        GoldFingerDynKernel { words, words_per_user }
    }

    /// A kernel whose rows are the fingerprinted users of `gf`.
    pub fn over(gf: &'a GoldFinger) -> Self {
        Self::new(gf.words(), gf.words_per_user())
    }

    #[inline]
    fn row(&self, i: u32) -> &[u64] {
        let base = i as usize * self.words_per_user;
        &self.words[base..base + self.words_per_user]
    }
}

impl SimKernel for GoldFingerDynKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.words.len() / self.words_per_user
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words(self.row(i), self.row(j))
    }

    #[inline]
    fn sweep_row(&self, i: u32, mut sink: impl FnMut(u32, f32)) {
        let ri = self.row(i);
        let tail = &self.words[(i as usize + 1) * self.words_per_user..];
        for (offset, rj) in tail.chunks_exact(self.words_per_user).enumerate() {
            sink(i + 1 + offset as u32, sim_words(ri, rj));
        }
    }
}

/// A cluster's fingerprints gathered into one contiguous block.
///
/// C²'s Step-2 solvers (and LSH's buckets) work on arbitrary user subsets;
/// reading each pair through [`GoldFinger::fingerprint`] strides across the
/// full dataset's word array. A tile is gathered **once per cluster** —
/// `O(|C|·W)` words, amortized over the `O(|C|²)` or `O(ρ·k²·|C|)` pairs
/// the solver computes — and row `i` is cluster-local user `users[i]`.
pub struct ClusterTile {
    words: Vec<u64>,
    words_per_user: usize,
    rows: usize,
}

impl ClusterTile {
    /// Copies the fingerprints of `users` (in order) into a dense tile.
    pub fn gather(gf: &GoldFinger, users: &[UserId]) -> Self {
        let words_per_user = gf.words_per_user();
        let mut words = Vec::with_capacity(users.len() * words_per_user);
        for &u in users {
            words.extend_from_slice(gf.fingerprint(u));
        }
        let tile = ClusterTile { words, words_per_user, rows: users.len() };
        // Guard the gather in debug builds: every tile row must be exactly
        // the fingerprint it claims to mirror.
        if cfg!(debug_assertions) {
            for (i, &u) in users.iter().enumerate() {
                debug_assert_eq!(
                    tile.row(i),
                    gf.fingerprint(u),
                    "tile row {i} does not match fingerprint of user {u}"
                );
            }
        }
        tile
    }

    /// Number of gathered rows (the cluster size).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the tile holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Words per row.
    #[inline]
    pub fn words_per_user(&self) -> usize {
        self.words_per_user
    }

    /// The words of row `i` (the fingerprint of the cluster's `i`-th user).
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_user..(i + 1) * self.words_per_user]
    }

    /// A fixed-width kernel over the tile's rows.
    ///
    /// # Panics
    /// Panics if the tile's width is not `W`.
    pub fn kernel<const W: usize>(&self) -> GoldFingerKernel<'_, W> {
        assert_eq!(self.words_per_user, W, "tile width mismatch");
        GoldFingerKernel::new(&self.words)
    }

    /// The dynamic-width kernel over the tile's rows.
    pub fn dyn_kernel(&self) -> GoldFingerDynKernel<'_> {
        GoldFingerDynKernel::new(&self.words, self.words_per_user)
    }

    /// Runs `solver` against the width specialization matching this tile
    /// (one dispatch per tile, never per pair).
    pub fn solve<S: SimSolve>(&self, solver: S) -> S::Output {
        solve_words(&self.words, self.words_per_user, solver)
    }
}

/// Runs `solver` against the fixed-width specialization matching
/// `words_per_user` over a contiguous word slice — the single dispatch
/// table shared by [`ClusterTile::solve`] and the whole-dataset
/// `SimilarityData::solve_global`, so the two monomorphization sites
/// cannot drift. Widths without a specialization fall back to
/// [`GoldFingerDynKernel`].
pub fn solve_words<S: SimSolve>(words: &[u64], words_per_user: usize, solver: S) -> S::Output {
    match words_per_user {
        1 => solver.run(&GoldFingerKernel::<1>::new(words)),
        16 => solver.run(&GoldFingerKernel::<16>::new(words)),
        64 => solver.run(&GoldFingerKernel::<64>::new(words)),
        128 => solver.run(&GoldFingerKernel::<128>::new(words)),
        _ => solver.run(&GoldFingerDynKernel::new(words, words_per_user)),
    }
}

/// A computation generic over the kernel — the visitor that lets
/// [`crate::SimilarityData`] pick the monomorphization once per cluster
/// (closures cannot be generic, so dispatch needs a named trait).
pub trait SimSolve {
    /// The solver's result type.
    type Output;

    /// Runs the solve against one concrete kernel.
    fn run<K: SimKernel>(self, kernel: &K) -> Self::Output;
}

/// Streams every unordered pair `i < j` of `kernel`'s rows to `sink` —
/// the brute-force inner loop. With a tiled GoldFinger kernel the sweep is
/// register-blocked: tail rows are read as one contiguous,
/// prefetch-friendly stream and compared against a cached block of rows.
/// Exactly `len·(len−1)/2` similarities are computed, each pair once (the
/// visit order is kernel-specific); the caller flushes that count in one
/// `add_comparisons`.
pub fn pairwise<K: SimKernel>(kernel: &K, sink: impl FnMut(u32, u32, f32)) {
    kernel.sweep_pairs(sink);
}

/// Streams the similarity of row `i` against every row in `others` to
/// `sink` — the one-vs-many shape of greedy candidate evaluation and of
/// query-layer lookups. Computes exactly `others.len()` similarities.
pub fn one_vs_many<K: SimKernel>(
    kernel: &K,
    i: u32,
    others: &[u32],
    mut sink: impl FnMut(u32, f32),
) {
    for &j in others {
        sink(j, kernel.sim(i, j));
    }
}

/// Exact-Jaccard **query** kernel: the dataset's users plus one trailing
/// external row — an out-of-sample query profile that is not a dataset
/// user. Row [`RawQueryKernel::query_row`] (`= num_users`) is the query;
/// rows below it pass through to the users, so
/// `one_vs_many(&k, k.query_row(), ids, …)` scores a query against
/// arbitrary users with no copying or remapping of the user data — the
/// shape `cnc-query`'s beam search feeds per expanded node (the ROADMAP
/// "one-vs-many batching in the query layer" item).
#[derive(Clone, Copy)]
pub struct RawQueryKernel<'a> {
    dataset: &'a Dataset,
    query: &'a [u32],
}

impl<'a> RawQueryKernel<'a> {
    /// A kernel over `dataset`'s users with the (sorted) `query` profile
    /// as the external trailing row.
    pub fn new(dataset: &'a Dataset, query: &'a [u32]) -> Self {
        RawQueryKernel { dataset, query }
    }

    /// The external row's index (== the dataset's user count).
    #[inline]
    pub fn query_row(&self) -> u32 {
        self.dataset.num_users() as u32
    }

    #[inline]
    fn profile(&self, i: u32) -> &[u32] {
        if i == self.query_row() {
            self.query
        } else {
            self.dataset.profile(i)
        }
    }
}

impl SimKernel for RawQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.dataset.num_users() + 1
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        Jaccard::similarity(self.profile(i), self.profile(j)) as f32
    }
}

/// Fixed-width GoldFinger query kernel: contiguous user fingerprint rows
/// plus one external query fingerprint as the trailing row (see
/// [`RawQueryKernel`] for the row convention). The query row is built
/// once per query with [`GoldFinger::fingerprint_profile`]; every score
/// is then the same fully-unrolled AND/OR/popcount sweep as the
/// fixed-width cluster kernels, bit-identical to
/// [`GoldFinger::estimate`] narrowed to `f32`.
#[derive(Clone, Copy)]
pub struct GoldFingerQueryKernel<'a, const W: usize> {
    words: &'a [u64],
    query: &'a [u64; W],
}

impl<'a, const W: usize> GoldFingerQueryKernel<'a, W> {
    /// A kernel over a raw word slice (length must be a multiple of `W`)
    /// with `query` as the external row.
    ///
    /// # Panics
    /// Panics if `W == 0` or the slice length is not a multiple of `W`.
    pub fn new(words: &'a [u64], query: &'a [u64; W]) -> Self {
        assert!(W > 0, "fingerprint width must be positive");
        assert!(words.len().is_multiple_of(W), "word slice is not a whole number of {W}-word rows");
        GoldFingerQueryKernel { words, query }
    }

    /// A kernel whose user rows are the fingerprinted users of `gf`.
    ///
    /// # Panics
    /// Panics if `gf` was not built with `W` words per user.
    pub fn over(gf: &'a GoldFinger, query: &'a [u64; W]) -> Self {
        assert_eq!(gf.words_per_user(), W, "fingerprint width mismatch");
        Self::new(gf.words(), query)
    }

    /// The external row's index (== the number of user rows).
    #[inline]
    pub fn query_row(&self) -> u32 {
        (self.words.len() / W) as u32
    }

    #[inline(always)]
    fn row(&self, i: u32) -> &[u64; W] {
        if i == self.query_row() {
            self.query
        } else {
            let base = i as usize * W;
            self.words[base..base + W].try_into().expect("row is exactly W words")
        }
    }
}

impl<const W: usize> SimKernel for GoldFingerQueryKernel<'_, W> {
    #[inline]
    fn len(&self) -> usize {
        self.words.len() / W + 1
    }

    #[inline(always)]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words_fixed::<W>(self.row(i), self.row(j))
    }
}

/// Dynamic-width GoldFinger query kernel — the fallback for widths
/// without a fixed-`W` specialization.
#[derive(Clone, Copy)]
pub struct GoldFingerDynQueryKernel<'a> {
    words: &'a [u64],
    words_per_user: usize,
    query: &'a [u64],
}

impl<'a> GoldFingerDynQueryKernel<'a> {
    /// A kernel over a raw word slice with `words_per_user` words per row
    /// and `query` as the external row.
    ///
    /// # Panics
    /// Panics if `words_per_user` is zero, does not divide the slice, or
    /// does not match the query row's width.
    pub fn new(words: &'a [u64], words_per_user: usize, query: &'a [u64]) -> Self {
        assert!(words_per_user > 0, "fingerprint width must be positive");
        assert!(
            words.len().is_multiple_of(words_per_user),
            "word slice is not a whole number of rows"
        );
        assert_eq!(query.len(), words_per_user, "query fingerprint width mismatch");
        GoldFingerDynQueryKernel { words, words_per_user, query }
    }

    /// The external row's index (== the number of user rows).
    #[inline]
    pub fn query_row(&self) -> u32 {
        (self.words.len() / self.words_per_user) as u32
    }

    #[inline]
    fn row(&self, i: u32) -> &[u64] {
        if i == self.query_row() {
            self.query
        } else {
            let base = i as usize * self.words_per_user;
            &self.words[base..base + self.words_per_user]
        }
    }
}

impl SimKernel for GoldFingerDynQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.words.len() / self.words_per_user + 1
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words(self.row(i), self.row(j))
    }
}

/// Runs `solver` against the query-extended fixed-width specialization
/// matching `words_per_user` — the query-layer analogue of
/// [`solve_words`], sharing its dispatch table. The kernel handed to the
/// solver has the user rows at `0..n` and the query at row `n`
/// (`kernel.len() - 1`).
///
/// # Panics
/// Panics if `query.len() != words_per_user` or `words` is ragged.
pub fn solve_query_words<S: SimSolve>(
    words: &[u64],
    words_per_user: usize,
    query: &[u64],
    solver: S,
) -> S::Output {
    assert_eq!(query.len(), words_per_user, "query fingerprint width mismatch");
    macro_rules! fixed {
        ($w:literal) => {
            solver.run(&GoldFingerQueryKernel::<$w>::new(
                words,
                query.try_into().expect("width checked above"),
            ))
        };
    }
    match words_per_user {
        1 => fixed!(1),
        16 => fixed!(16),
        64 => fixed!(64),
        128 => fixed!(128),
        _ => solver.run(&GoldFingerDynQueryKernel::new(words, words_per_user, query)),
    }
}

/// Exact-Jaccard **multi-query** kernel: the dataset's users plus `Q`
/// trailing external rows, one per in-flight query. Row `num_users + q`
/// is query `q`; rows below pass through to the users — the same
/// convention as [`RawQueryKernel`] widened so a cross-query batch can
/// score several query rows against one neighbour list in a single
/// sweep (see [`shared_list_sweep`]).
#[derive(Clone, Copy)]
pub struct RawMultiQueryKernel<'a> {
    dataset: &'a Dataset,
    queries: &'a [&'a [u32]],
}

impl<'a> RawMultiQueryKernel<'a> {
    /// A kernel over `dataset`'s users with each (sorted) profile in
    /// `queries` as an external trailing row.
    pub fn new(dataset: &'a Dataset, queries: &'a [&'a [u32]]) -> Self {
        RawMultiQueryKernel { dataset, queries }
    }

    /// The row index of query `q` (== `num_users + q`).
    #[inline]
    pub fn query_row(&self, q: usize) -> u32 {
        (self.dataset.num_users() + q) as u32
    }

    #[inline]
    fn profile(&self, i: u32) -> &[u32] {
        let n = self.dataset.num_users() as u32;
        if i >= n {
            self.queries[(i - n) as usize]
        } else {
            self.dataset.profile(i)
        }
    }
}

impl SimKernel for RawMultiQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.dataset.num_users() + self.queries.len()
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        Jaccard::similarity(self.profile(i), self.profile(j)) as f32
    }
}

/// Fixed-width GoldFinger multi-query kernel: contiguous user fingerprint
/// rows plus `Q` external query fingerprints packed contiguously (`Q · W`
/// words). Row `n + q` is query `q`. Scores are the same fully-unrolled
/// sweep as [`GoldFingerQueryKernel`], so a batch of one is bit-identical
/// to the single-query kernel.
#[derive(Clone, Copy)]
pub struct GoldFingerMultiQueryKernel<'a, const W: usize> {
    words: &'a [u64],
    queries: &'a [u64],
}

impl<'a, const W: usize> GoldFingerMultiQueryKernel<'a, W> {
    /// A kernel over a raw user word slice with `queries` (`Q · W` words,
    /// row-major) as the external rows.
    ///
    /// # Panics
    /// Panics if `W == 0` or either slice is not a multiple of `W`.
    pub fn new(words: &'a [u64], queries: &'a [u64]) -> Self {
        assert!(W > 0, "fingerprint width must be positive");
        assert!(words.len().is_multiple_of(W), "word slice is not a whole number of {W}-word rows");
        assert!(
            queries.len().is_multiple_of(W),
            "query block is not a whole number of {W}-word rows"
        );
        GoldFingerMultiQueryKernel { words, queries }
    }

    /// The row index of query `q` (== `num_users + q`).
    #[inline]
    pub fn query_row(&self, q: usize) -> u32 {
        (self.words.len() / W + q) as u32
    }

    #[inline(always)]
    fn row(&self, i: u32) -> &[u64; W] {
        let n = (self.words.len() / W) as u32;
        let (slice, base) = if i >= n {
            (self.queries, (i - n) as usize * W)
        } else {
            (self.words, i as usize * W)
        };
        slice[base..base + W].try_into().expect("row is exactly W words")
    }
}

impl<const W: usize> SimKernel for GoldFingerMultiQueryKernel<'_, W> {
    #[inline]
    fn len(&self) -> usize {
        (self.words.len() + self.queries.len()) / W
    }

    #[inline(always)]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words_fixed::<W>(self.row(i), self.row(j))
    }
}

/// Dynamic-width GoldFinger multi-query kernel — the fallback for widths
/// without a fixed-`W` specialization.
#[derive(Clone, Copy)]
pub struct GoldFingerDynMultiQueryKernel<'a> {
    words: &'a [u64],
    words_per_user: usize,
    queries: &'a [u64],
}

impl<'a> GoldFingerDynMultiQueryKernel<'a> {
    /// A kernel over a raw user word slice with `queries`
    /// (`Q · words_per_user` words, row-major) as the external rows.
    ///
    /// # Panics
    /// Panics if `words_per_user` is zero or does not divide both slices.
    pub fn new(words: &'a [u64], words_per_user: usize, queries: &'a [u64]) -> Self {
        assert!(words_per_user > 0, "fingerprint width must be positive");
        assert!(
            words.len().is_multiple_of(words_per_user),
            "word slice is not a whole number of rows"
        );
        assert!(
            queries.len().is_multiple_of(words_per_user),
            "query block is not a whole number of rows"
        );
        GoldFingerDynMultiQueryKernel { words, words_per_user, queries }
    }

    /// The row index of query `q` (== `num_users + q`).
    #[inline]
    pub fn query_row(&self, q: usize) -> u32 {
        (self.words.len() / self.words_per_user + q) as u32
    }

    #[inline]
    fn row(&self, i: u32) -> &[u64] {
        let n = (self.words.len() / self.words_per_user) as u32;
        let (slice, base) = if i >= n {
            (self.queries, (i - n) as usize * self.words_per_user)
        } else {
            (self.words, i as usize * self.words_per_user)
        };
        &slice[base..base + self.words_per_user]
    }
}

impl SimKernel for GoldFingerDynMultiQueryKernel<'_> {
    #[inline]
    fn len(&self) -> usize {
        (self.words.len() + self.queries.len()) / self.words_per_user
    }

    #[inline]
    fn sim(&self, i: u32, j: u32) -> f32 {
        sim_words(self.row(i), self.row(j))
    }
}

/// Runs `solver` against the multi-query fixed-width specialization
/// matching `words_per_user` — the cross-query analogue of
/// [`solve_query_words`], sharing its dispatch table. The kernel handed
/// to the solver has user rows at `0..n` and query `q` at row `n + q`.
///
/// # Panics
/// Panics if either slice is ragged.
pub fn solve_multi_query_words<S: SimSolve>(
    words: &[u64],
    words_per_user: usize,
    queries: &[u64],
    solver: S,
) -> S::Output {
    match words_per_user {
        1 => solver.run(&GoldFingerMultiQueryKernel::<1>::new(words, queries)),
        16 => solver.run(&GoldFingerMultiQueryKernel::<16>::new(words, queries)),
        64 => solver.run(&GoldFingerMultiQueryKernel::<64>::new(words, queries)),
        128 => solver.run(&GoldFingerMultiQueryKernel::<128>::new(words, queries)),
        _ => solver.run(&GoldFingerDynMultiQueryKernel::new(words, words_per_user, queries)),
    }
}

/// The widest cross-query batch a [`shared_list_sweep`] interest mask can
/// express (one bit per query).
pub const MAX_SWEEP_QUERIES: usize = 64;

/// Scores the rows of one neighbour `list` against up to 64 query rows in
/// a single pass — the cross-query sharing primitive. `masks[p]` is a
/// bitmask of which queries (by index into `query_rows`) want candidate
/// `list[p]`; exactly the set pairs are computed, no more, so per-query
/// results and comparison counts match running [`one_vs_many`] per query.
/// For each query, sink calls arrive in list order (ascending `p`); each
/// list row is touched once and stays cache-hot across the query rows
/// scored against it — that is the amortization a batch of concurrent
/// queries buys over `Q` independent sweeps.
///
/// # Panics
/// Panics if `masks` is shorter than `list` or a mask references a query
/// index `≥ query_rows.len()`.
pub fn shared_list_sweep<K: SimKernel>(
    kernel: &K,
    query_rows: &[u32],
    list: &[u32],
    masks: &[u64],
    mut sink: impl FnMut(usize, u32, f32),
) {
    assert!(masks.len() >= list.len(), "interest mask per list position required");
    assert!(query_rows.len() <= MAX_SWEEP_QUERIES, "at most 64 queries per sweep");
    for (p, &candidate) in list.iter().enumerate() {
        let mut mask = masks[p];
        while mask != 0 {
            let q = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            sink(q, candidate, kernel.sim(query_rows[q], candidate));
        }
    }
}

/// The number of unordered pairs of an `n`-row kernel — the comparison
/// count a full [`pairwise`] sweep flushes.
#[inline]
pub fn pair_count(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SimilarityBackend, SimilarityData};
    use cnc_dataset::SyntheticConfig;

    fn dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(91);
        cfg.num_users = 120;
        cfg.num_items = 200;
        cfg.mean_profile = 18.0;
        cfg.min_profile = 4;
        cfg.generate()
    }

    #[test]
    fn raw_kernel_matches_scalar_oracle() {
        let ds = dataset();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let kernel = RawKernel::new(&ds);
        assert_eq!(kernel.len(), ds.num_users());
        for u in (0..100u32).step_by(7) {
            for v in (1..100u32).step_by(13) {
                assert_eq!(kernel.sim(u, v).to_bits(), sim.sim(u, v).to_bits());
            }
        }
    }

    #[test]
    fn fixed_width_kernels_match_scalar_oracle() {
        let ds = dataset();
        for (bits, w) in [(64usize, 1usize), (1024, 16), (4096, 64), (8192, 128)] {
            let sim = SimilarityData::build(SimilarityBackend::GoldFinger { bits, seed: 21 }, &ds);
            let gf = sim.goldfinger().unwrap();
            assert_eq!(gf.words_per_user(), w);
            let dynk = GoldFingerDynKernel::over(gf);
            for u in (0..60u32).step_by(11) {
                for v in (1..60u32).step_by(7) {
                    let expect = sim.sim(u, v).to_bits();
                    assert_eq!(dynk.sim(u, v).to_bits(), expect, "dyn kernel, {bits} bits");
                    let got = match w {
                        1 => GoldFingerKernel::<1>::over(gf).sim(u, v),
                        16 => GoldFingerKernel::<16>::over(gf).sim(u, v),
                        64 => GoldFingerKernel::<64>::over(gf).sim(u, v),
                        128 => GoldFingerKernel::<128>::over(gf).sim(u, v),
                        _ => unreachable!(),
                    };
                    assert_eq!(got.to_bits(), expect, "fixed kernel, {bits} bits");
                }
            }
        }
    }

    #[test]
    fn tile_rows_match_fingerprints_and_kernels_agree() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 1024, 5);
        let users: Vec<UserId> = (0..ds.num_users() as u32).step_by(3).collect();
        let tile = ClusterTile::gather(&gf, &users);
        assert_eq!(tile.len(), users.len());
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(tile.row(i), gf.fingerprint(u));
        }
        let fixed = tile.kernel::<16>();
        let global = GoldFingerKernel::<16>::over(&gf);
        for i in 0..users.len() as u32 {
            for j in 0..users.len() as u32 {
                let expect = global.sim(users[i as usize], users[j as usize]).to_bits();
                assert_eq!(fixed.sim(i, j).to_bits(), expect);
                assert_eq!(tile.dyn_kernel().sim(i, j).to_bits(), expect);
            }
        }
    }

    #[test]
    fn tile_solve_picks_a_working_specialization() {
        struct Sum;
        impl SimSolve for Sum {
            type Output = f64;
            fn run<K: SimKernel>(self, kernel: &K) -> f64 {
                let mut total = 0.0;
                pairwise(kernel, |_, _, s| total += s as f64);
                total
            }
        }
        let ds = dataset();
        let users: Vec<UserId> = (0..40).collect();
        // 192 bits = 3 words: no fixed specialization, must hit the
        // dynamic fallback and still agree with the scalar oracle.
        for bits in [64usize, 192, 1024] {
            let gf = GoldFinger::build(&ds, bits, 2);
            let tile = ClusterTile::gather(&gf, &users);
            let got = tile.solve(Sum);
            let mut expect = 0.0;
            for i in 0..users.len() {
                for j in (i + 1)..users.len() {
                    expect += gf.estimate(users[i], users[j]) as f32 as f64;
                }
            }
            assert!((got - expect).abs() < 1e-9, "{bits} bits: {got} vs {expect}");
        }
    }

    #[test]
    fn pairwise_covers_each_pair_exactly_once() {
        let ds = dataset();
        let kernel = RawKernel::new(&ds);
        let users: Vec<UserId> = (0..25).collect();
        let cluster = Remap::new(&users, kernel);
        let mut seen = std::collections::BTreeSet::new();
        pairwise(&cluster, |i, j, _| {
            assert!(i < j);
            assert!(seen.insert((i, j)), "pair ({i}, {j}) visited twice");
        });
        assert_eq!(seen.len() as u64, pair_count(users.len()));
    }

    #[test]
    fn one_vs_many_matches_per_pair_sims() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 1024, 3);
        let kernel = GoldFingerKernel::<16>::over(&gf);
        let others: Vec<u32> = (1..50).step_by(3).collect();
        let mut got = Vec::new();
        one_vs_many(&kernel, 0, &others, |j, s| got.push((j, s.to_bits())));
        let expect: Vec<(u32, u32)> =
            others.iter().map(|&j| (j, kernel.sim(0, j).to_bits())).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn raw_query_kernel_scores_like_scalar_jaccard() {
        let ds = dataset();
        let query: Vec<u32> = vec![3, 17, 40, 77, 150];
        let kernel = RawQueryKernel::new(&ds, &query);
        assert_eq!(kernel.len(), ds.num_users() + 1);
        assert_eq!(kernel.query_row() as usize, ds.num_users());
        let others: Vec<u32> = (0..ds.num_users() as u32).step_by(9).collect();
        let mut got = Vec::new();
        one_vs_many(&kernel, kernel.query_row(), &others, |j, s| got.push((j, s.to_bits())));
        let expect: Vec<(u32, u32)> = others
            .iter()
            .map(|&u| (u, (Jaccard::similarity(&query, ds.profile(u)) as f32).to_bits()))
            .collect();
        assert_eq!(got, expect);
        // User rows pass through untouched.
        assert_eq!(
            kernel.sim(2, 5).to_bits(),
            (Jaccard::similarity(ds.profile(2), ds.profile(5)) as f32).to_bits()
        );
    }

    #[test]
    fn goldfinger_query_kernels_score_like_an_in_dataset_row() {
        let ds = dataset();
        let query: Vec<u32> = ds.profile(7).iter().map(|&i| i.saturating_sub(1)).collect();
        let mut query = query;
        query.sort_unstable();
        query.dedup();
        // Reference: append the query as a real user and fingerprint the
        // grown dataset — per-user rows are independent, so the external
        // row must match the built one exactly.
        let mut profiles: Vec<Vec<u32>> = ds.iter().map(|(_, p)| p.to_vec()).collect();
        profiles.push(query.clone());
        let grown = Dataset::from_profiles(profiles, 0);
        for bits in [64usize, 192, 1024] {
            let gf = GoldFinger::build(&ds, bits, 23);
            let reference = GoldFinger::build(&grown, bits, 23);
            let qrow_words = gf.fingerprint_profile(&query);
            assert_eq!(qrow_words, reference.fingerprint(ds.num_users() as UserId));
            let others: Vec<u32> = (0..ds.num_users() as u32).step_by(7).collect();
            struct Score<'a> {
                others: &'a [u32],
            }
            impl SimSolve for Score<'_> {
                type Output = Vec<(u32, u32)>;
                fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                    let qrow = (kernel.len() - 1) as u32;
                    let mut out = Vec::new();
                    one_vs_many(kernel, qrow, self.others, |j, s| out.push((j, s.to_bits())));
                    out
                }
            }
            let got = solve_query_words(
                gf.words(),
                gf.words_per_user(),
                &qrow_words,
                Score { others: &others },
            );
            let expect: Vec<(u32, u32)> = others
                .iter()
                .map(|&u| (u, (reference.estimate(ds.num_users() as UserId, u) as f32).to_bits()))
                .collect();
            assert_eq!(got, expect, "{bits} bits");
        }
    }

    #[test]
    #[should_panic(expected = "query fingerprint width mismatch")]
    fn mismatched_query_width_panics() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 128, 1);
        struct Noop;
        impl SimSolve for Noop {
            type Output = ();
            fn run<K: SimKernel>(self, _: &K) {}
        }
        solve_query_words(gf.words(), gf.words_per_user(), &[0u64; 3], Noop);
    }

    #[test]
    fn multi_query_kernels_match_single_query_rows_bitwise() {
        let ds = dataset();
        let queries: Vec<Vec<u32>> = (0..5u32)
            .map(|q| {
                let mut p: Vec<u32> =
                    ds.profile(q * 3).iter().map(|&i| i.saturating_sub(q)).collect();
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        let others: Vec<u32> = (0..ds.num_users() as u32).step_by(5).collect();
        // Raw backend.
        let refs: Vec<&[u32]> = queries.iter().map(|q| q.as_slice()).collect();
        let multi = RawMultiQueryKernel::new(&ds, &refs);
        assert_eq!(multi.len(), ds.num_users() + queries.len());
        for (q, profile) in queries.iter().enumerate() {
            let single = RawQueryKernel::new(&ds, profile);
            for &u in &others {
                assert_eq!(
                    multi.sim(multi.query_row(q), u).to_bits(),
                    single.sim(single.query_row(), u).to_bits(),
                    "raw, query {q} vs user {u}"
                );
            }
        }
        // GoldFinger backends: fixed (via dispatch) and dyn widths.
        for bits in [64usize, 192, 1024] {
            let gf = GoldFinger::build(&ds, bits, 23);
            let w = gf.words_per_user();
            let mut block = Vec::new();
            for q in &queries {
                block.extend_from_slice(&gf.fingerprint_profile(q));
            }
            struct Score<'a> {
                num_queries: usize,
                others: &'a [u32],
            }
            impl SimSolve for Score<'_> {
                type Output = Vec<Vec<(u32, u32)>>;
                fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                    let n = (kernel.len() - self.num_queries) as u32;
                    (0..self.num_queries)
                        .map(|q| {
                            let mut out = Vec::new();
                            one_vs_many(kernel, n + q as u32, self.others, |j, s| {
                                out.push((j, s.to_bits()))
                            });
                            out
                        })
                        .collect()
                }
            }
            let got = solve_multi_query_words(
                gf.words(),
                w,
                &block,
                Score { num_queries: queries.len(), others: &others },
            );
            for (q, query) in queries.iter().enumerate() {
                let qwords = gf.fingerprint_profile(query);
                let expect =
                    solve_query_words(gf.words(), w, &qwords, SingleScore { others: &others });
                assert_eq!(got[q], expect, "{bits} bits, query {q}");
            }
        }
        struct SingleScore<'a> {
            others: &'a [u32],
        }
        impl SimSolve for SingleScore<'_> {
            type Output = Vec<(u32, u32)>;
            fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                let qrow = (kernel.len() - 1) as u32;
                let mut out = Vec::new();
                one_vs_many(kernel, qrow, self.others, |j, s| out.push((j, s.to_bits())));
                out
            }
        }
    }

    #[test]
    fn shared_list_sweep_matches_masked_one_vs_many() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 1024, 9);
        let queries: Vec<Vec<u32>> = (0..3u32).map(|q| ds.profile(q * 7).to_vec()).collect();
        let mut block = Vec::new();
        for q in &queries {
            block.extend_from_slice(&gf.fingerprint_profile(q));
        }
        let kernel = GoldFingerMultiQueryKernel::<16>::new(gf.words(), &block);
        let query_rows: Vec<u32> = (0..queries.len()).map(|q| kernel.query_row(q)).collect();
        let list: Vec<u32> = (0..30u32).collect();
        // Interleaved interest: query 0 wants even positions, query 1
        // every third, query 2 everything.
        let masks: Vec<u64> = (0..list.len())
            .map(|p| {
                let mut m = 0u64;
                if p % 2 == 0 {
                    m |= 1;
                }
                if p % 3 == 0 {
                    m |= 2;
                }
                m | 4
            })
            .collect();
        let mut got: Vec<Vec<(u32, u32)>> = vec![Vec::new(); queries.len()];
        shared_list_sweep(&kernel, &query_rows, &list, &masks, |q, j, s| {
            got[q].push((j, s.to_bits()))
        });
        for (q, &qrow) in query_rows.iter().enumerate() {
            let wanted: Vec<u32> = list
                .iter()
                .enumerate()
                .filter(|&(p, _)| masks[p] & (1 << q) != 0)
                .map(|(_, &j)| j)
                .collect();
            let mut expect = Vec::new();
            one_vs_many(&kernel, qrow, &wanted, |j, s| expect.push((j, s.to_bits())));
            assert_eq!(got[q], expect, "query {q}");
            assert_eq!(got[q].len(), wanted.len(), "exactly the masked pairs, query {q}");
        }
    }

    #[test]
    fn remap_restricts_to_cluster_rows() {
        let ds = dataset();
        let users: Vec<UserId> = vec![5, 17, 2, 40];
        let cluster = Remap::new(&users, RawKernel::new(&ds));
        assert_eq!(cluster.len(), 4);
        let direct = Jaccard::similarity(ds.profile(17), ds.profile(40)) as f32;
        assert_eq!(cluster.sim(1, 3).to_bits(), direct.to_bits());
    }

    #[test]
    fn empty_and_singleton_tiles_are_fine() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 128, 1);
        let empty = ClusterTile::gather(&gf, &[]);
        assert!(empty.is_empty());
        let one = ClusterTile::gather(&gf, &[3]);
        assert_eq!(one.len(), 1);
        let mut pairs = 0;
        pairwise(&one.dyn_kernel(), |_, _, _| pairs += 1);
        assert_eq!(pairs, 0);
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(5), 10);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_fixed_width_panics() {
        let ds = dataset();
        let gf = GoldFinger::build(&ds, 1024, 1);
        let _ = GoldFingerKernel::<4>::over(&gf);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::backend::{SimilarityBackend, SimilarityData};
    use proptest::prelude::*;

    fn profiles_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..400, 0..40)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            2..12,
        )
    }

    proptest! {
        /// Tiled + specialized kernels are bit-identical to the scalar
        /// `SimilarityData::sim` path on random profiles and widths.
        #[test]
        fn kernels_bit_identical_to_scalar_path(
            profiles in profiles_strategy(),
            width_index in 0usize..6,
            seed in 0u64..40,
        ) {
            let bits = [64usize, 192, 1024, 2048, 4096, 8192][width_index];
            let ds = Dataset::from_profiles(profiles, 0);
            let sim = SimilarityData::build(
                SimilarityBackend::GoldFinger { bits, seed }, &ds);
            let gf = sim.goldfinger().unwrap();
            let users: Vec<UserId> = (0..ds.num_users() as u32).collect();
            let tile = ClusterTile::gather(gf, &users);
            struct Collect;
            impl SimSolve for Collect {
                type Output = Vec<(u32, u32, u32)>;
                fn run<K: SimKernel>(self, kernel: &K) -> Self::Output {
                    let mut out = Vec::new();
                    pairwise(kernel, |i, j, s| out.push((i, j, s.to_bits())));
                    out
                }
            }
            for (i, j, bits_got) in tile.solve(Collect) {
                let expect = sim.sim(users[i as usize], users[j as usize]);
                prop_assert_eq!(bits_got, expect.to_bits());
            }
        }

        /// The raw kernel is bit-identical to the scalar raw oracle.
        #[test]
        fn raw_kernel_bit_identical_to_scalar_path(profiles in profiles_strategy()) {
            let ds = Dataset::from_profiles(profiles, 0);
            let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
            let kernel = RawKernel::new(&ds);
            let n = ds.num_users() as u32;
            for i in 0..n {
                for j in (i + 1)..n {
                    prop_assert_eq!(kernel.sim(i, j).to_bits(), sim.sim(i, j).to_bits());
                }
            }
        }

        /// Gathered tiles mirror the fingerprints they were gathered from,
        /// whatever the (possibly repeating) user subset.
        #[test]
        fn tile_gather_mirrors_fingerprints(
            profiles in profiles_strategy(),
            picks in proptest::collection::vec(0usize..12, 0..20),
        ) {
            let ds = Dataset::from_profiles(profiles, 0);
            let gf = GoldFinger::build(&ds, 256, 7);
            let users: Vec<UserId> = picks.into_iter()
                .map(|p| (p % ds.num_users()) as u32)
                .collect();
            let tile = ClusterTile::gather(&gf, &users);
            prop_assert_eq!(tile.len(), users.len());
            for (i, &u) in users.iter().enumerate() {
                prop_assert_eq!(tile.row(i), gf.fingerprint(u));
            }
        }
    }
}
