//! The C²/MinHash ablation of Table IV.
//!
//! "In the Cluster-and-Conquer/MinHash variant, we use t MinHash functions
//! to create t × m clusters, without splitting. The local KNN graphs are
//! computed independently using GoldFinger on the t × m clusters, then
//! merged as in Cluster-and-Conquer." Replacing FastRandomHash's bounded
//! range `⟦1, b⟧` by MinHash's one-bucket-per-item clustering isolates the
//! contribution of the bounded hash space + recursive splitting: on sparse
//! datasets MinHash fragments users into many tiny clusters, hurting both
//! time (more cluster overhead, fewer good candidates per cluster) and the
//! chance that similar users ever co-occur.

use crate::clustering::Clustering;
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_similarity::MinHasher;
use std::collections::HashMap;

/// Runs Step 1 with `t` MinHash functions instead of FastRandomHash.
///
/// Each function buckets every (non-empty-profile) user by the item that
/// achieves her min-wise value — up to `m = |I|` clusters per function, no
/// recursive splitting.
pub fn cluster_minhash(dataset: &Dataset, root_seed: u64, t: usize) -> Clustering {
    assert!(t > 0, "at least one MinHash function is required");
    let hashers = MinHasher::family(root_seed, t);
    let mut clusters: Vec<Vec<UserId>> = Vec::new();
    let mut raw_cluster_counts = Vec::with_capacity(t);
    for hasher in &hashers {
        let mut buckets: HashMap<ItemId, Vec<UserId>> = HashMap::new();
        for (u, profile) in dataset.iter() {
            if let Some(item) = hasher.bucket(profile) {
                buckets.entry(item).or_default().push(u);
            }
        }
        raw_cluster_counts.push(buckets.len());
        // Deterministic output order (HashMap iteration order is not).
        let mut sorted: Vec<(ItemId, Vec<UserId>)> = buckets.into_iter().collect();
        sorted.sort_unstable_by_key(|(item, _)| *item);
        clusters.extend(sorted.into_iter().map(|(_, users)| users));
    }
    Clustering { clusters, num_functions: t, splits: 0, raw_cluster_counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;

    #[test]
    fn every_user_appears_once_per_function() {
        let ds = SyntheticConfig::small(61).generate();
        let t = 3;
        let clustering = cluster_minhash(&ds, 9, t);
        let mut counts = vec![0usize; ds.num_users()];
        for cluster in &clustering.clusters {
            for &u in cluster {
                counts[u as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == t));
        assert_eq!(clustering.splits, 0, "MinHash variant never splits");
    }

    #[test]
    fn fragments_more_than_frh_on_sparse_data() {
        // The Table IV mechanism: MinHash produces many more clusters than
        // FastRandomHash with b = 4096 on a sparse dataset.
        let mut cfg = SyntheticConfig::small(62);
        cfg.num_items = 20_000; // sparse: far more items than FRH buckets
        cfg.zipf_exponent = 0.6;
        let ds = cfg.generate();
        let mh = cluster_minhash(&ds, 7, 4);
        let frh_functions = crate::frh::FastRandomHash::family(7, 4, 256);
        let frh = crate::clustering::cluster_dataset(&ds, &frh_functions, usize::MAX);
        assert!(
            mh.clusters.len() > frh.clusters.len(),
            "MinHash ({}) should fragment more than FRH ({})",
            mh.clusters.len(),
            frh.clusters.len()
        );
    }

    #[test]
    fn identical_users_always_share_their_bucket() {
        let ds = cnc_dataset::Dataset::from_profiles(vec![vec![1, 2, 3]; 5], 0);
        let clustering = cluster_minhash(&ds, 3, 4);
        assert_eq!(clustering.clusters.len(), 4);
        for cluster in &clustering.clusters {
            assert_eq!(cluster.len(), 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = SyntheticConfig::small(63).generate();
        let a = cluster_minhash(&ds, 11, 2);
        let b = cluster_minhash(&ds, 11, 2);
        assert_eq!(a.clusters, b.clusters);
    }
}
