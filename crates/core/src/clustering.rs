//! Step 1 of C²: clustering with recursive splitting (§II-D, Algorithm 1).
//!
//! Every user is assigned to one cluster per hash function — `t` clustering
//! configurations of `b` clusters each. Because the min-aggregation biases
//! users toward low-index clusters (popular items with low hashes capture
//! many users), any cluster larger than the threshold `N` is **recursively
//! split**: its users are re-hashed with `H\η` (ignoring item hashes ≤ the
//! cluster's index η) and regrouped, with two exceptions that stay behind —
//! users whose `H\η` is undefined and users who would be alone in their new
//! cluster.

use crate::frh::FastRandomHash;
use cnc_dataset::{Dataset, UserId};
use std::collections::BTreeMap;

/// The output of Step 1: the final cluster list plus instrumentation.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// All final clusters across the `t` configurations. Every cluster has
    /// at least one user; users with empty profiles appear in none.
    pub clusters: Vec<Vec<UserId>>,
    /// Number of hash functions `t` that produced the clustering.
    pub num_functions: usize,
    /// How many split operations were performed (0 when every raw cluster
    /// fits within `N`).
    pub splits: usize,
    /// Number of clusters per configuration *before* splitting, for each
    /// function (≤ b non-empty clusters each).
    pub raw_cluster_counts: Vec<usize>,
}

impl Clustering {
    /// Cluster sizes sorted in decreasing order (the series of Fig. 8).
    pub fn sizes_desc(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// The size of the largest final cluster.
    pub fn max_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total user slots across clusters (= t × |users with items| when no
    /// user is dropped).
    pub fn total_assignments(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }
}

/// Runs Algorithm 1 plus recursive splitting: clusters `dataset` under each
/// function in `functions`, splitting every cluster larger than
/// `max_size` (the paper's `N`). With `max_size = usize::MAX` splitting is
/// disabled.
pub fn cluster_dataset(
    dataset: &Dataset,
    functions: &[FastRandomHash],
    max_size: usize,
) -> Clustering {
    assert!(max_size >= 2, "max cluster size must allow at least one pair");
    let mut clusters: Vec<Vec<UserId>> = Vec::new();
    let mut splits = 0usize;
    let mut raw_cluster_counts = Vec::with_capacity(functions.len());

    for frh in functions {
        // Algorithm 1: one pass assigning every user to bucket H(u).
        // Buckets are kept sparse (BTreeMap) because most of the b indices
        // are empty on sparse datasets.
        let mut buckets: BTreeMap<u32, Vec<UserId>> = BTreeMap::new();
        for (u, profile) in dataset.iter() {
            if let Some(h) = frh.user_hash(profile) {
                buckets.entry(h).or_default().push(u);
            }
        }
        raw_cluster_counts.push(buckets.len());
        for (eta, users) in buckets {
            split_recursive(dataset, frh, users, eta, max_size, &mut clusters, &mut splits);
        }
    }

    Clustering { clusters, num_functions: functions.len(), splits, raw_cluster_counts }
}

/// Recursively splits `users` (the cluster with index `eta`) until every
/// emitted cluster fits within `max_size` or cannot be split further.
fn split_recursive(
    dataset: &Dataset,
    frh: &FastRandomHash,
    users: Vec<UserId>,
    eta: u32,
    max_size: usize,
    out: &mut Vec<Vec<UserId>>,
    splits: &mut usize,
) {
    if users.len() <= max_size || eta >= frh.b() {
        // Within bounds, or no hash value above η exists: terminal.
        if !users.is_empty() {
            out.push(users);
        }
        return;
    }
    *splits += 1;
    let mut remainder: Vec<UserId> = Vec::new();
    let mut groups: BTreeMap<u32, Vec<UserId>> = BTreeMap::new();
    for u in users {
        match frh.user_hash_excluding(dataset.profile(u), eta) {
            // Exception 1: H\η undefined (e.g. single-item users) → stay.
            None => remainder.push(u),
            Some(h) => groups.entry(h).or_default().push(u),
        }
    }
    for (new_eta, group) in groups {
        if group.len() == 1 {
            // Exception 2: users alone in their new cluster stay in C.
            remainder.extend(group);
        } else {
            debug_assert!(new_eta > eta, "split must strictly increase the index");
            split_recursive(dataset, frh, group, new_eta, max_size, out, splits);
        }
    }
    if !remainder.is_empty() {
        // The remainder keeps index η; H\η cannot refine it further, so it
        // is terminal even if it still exceeds max_size.
        out.push(remainder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;

    fn functions(t: usize, b: u32) -> Vec<FastRandomHash> {
        FastRandomHash::family(0xC2, t, b)
    }

    #[test]
    fn every_user_appears_once_per_function() {
        let ds = SyntheticConfig::small(51).generate();
        let t = 4;
        let clustering = cluster_dataset(&ds, &functions(t, 64), usize::MAX);
        assert_eq!(clustering.total_assignments(), t * ds.num_users());
        // Per-function partition check: count each user's occurrences.
        let mut counts = vec![0usize; ds.num_users()];
        for cluster in &clustering.clusters {
            for &u in cluster {
                counts[u as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == t), "users must appear exactly t times");
    }

    #[test]
    fn splitting_preserves_the_partition() {
        let ds = SyntheticConfig::small(52).generate();
        let t = 3;
        let clustering = cluster_dataset(&ds, &functions(t, 16), 50);
        assert!(clustering.splits > 0, "b=16 over 2000 users must trigger splits");
        let mut counts = vec![0usize; ds.num_users()];
        for cluster in &clustering.clusters {
            for &u in cluster {
                counts[u as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == t), "splitting lost or duplicated users");
    }

    #[test]
    fn split_clusters_respect_max_size_except_terminal_remainders() {
        let ds = SyntheticConfig::small(53).generate();
        let n_max = 100;
        let clustering = cluster_dataset(&ds, &functions(2, 8), n_max);
        // All clusters above the bound must be terminal remainders, which
        // are rare; the bulk must fit.
        let oversized = clustering.clusters.iter().filter(|c| c.len() > n_max).count();
        assert!(
            oversized * 10 <= clustering.clusters.len(),
            "{oversized}/{} clusters exceed N",
            clustering.clusters.len()
        );
        assert!(clustering.max_size() < ds.num_users());
    }

    #[test]
    fn no_splitting_when_clusters_fit() {
        let ds = SyntheticConfig::small(54).generate();
        let clustering = cluster_dataset(&ds, &functions(2, 4096), usize::MAX);
        assert_eq!(clustering.splits, 0);
    }

    #[test]
    fn smaller_n_gives_more_balanced_clusters() {
        // Fig. 7/8 mechanism: decreasing N caps the biggest clusters.
        let ds = SyntheticConfig::small(55).generate();
        let loose = cluster_dataset(&ds, &functions(2, 32), 1000);
        let tight = cluster_dataset(&ds, &functions(2, 32), 60);
        assert!(tight.max_size() <= loose.max_size());
        assert!(tight.clusters.len() >= loose.clusters.len());
    }

    #[test]
    fn users_with_empty_profiles_are_unclustered() {
        let ds = cnc_dataset::Dataset::from_profiles(vec![vec![1, 2], vec![], vec![2, 3]], 0);
        let clustering = cluster_dataset(&ds, &functions(2, 8), usize::MAX);
        let mut seen = [false; 3];
        for cluster in &clustering.clusters {
            for &u in cluster {
                seen[u as usize] = true;
            }
        }
        assert!(seen[0] && seen[2]);
        assert!(!seen[1], "empty-profile user cannot be hashed");
    }

    #[test]
    fn identical_users_share_clusters_in_every_configuration() {
        let ds = cnc_dataset::Dataset::from_profiles(vec![vec![5, 9, 11]; 6], 0);
        let clustering = cluster_dataset(&ds, &functions(4, 64), usize::MAX);
        // Six identical users: each configuration puts all six together.
        assert_eq!(clustering.clusters.len(), 4);
        for cluster in &clustering.clusters {
            assert_eq!(cluster.len(), 6);
        }
    }

    #[test]
    fn raw_cluster_counts_are_bounded_by_b() {
        let ds = SyntheticConfig::small(56).generate();
        let b = 16u32;
        let clustering = cluster_dataset(&ds, &functions(3, b), usize::MAX);
        for &count in &clustering.raw_cluster_counts {
            assert!(count <= b as usize);
        }
    }

    #[test]
    fn sizes_desc_is_sorted() {
        let ds = SyntheticConfig::small(57).generate();
        let clustering = cluster_dataset(&ds, &functions(2, 64), 200);
        let sizes = clustering.sizes_desc();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(sizes.iter().sum::<usize>(), clustering.total_assignments());
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn max_size_one_panics() {
        let ds = SyntheticConfig::small(58).generate();
        cluster_dataset(&ds, &functions(1, 8), 1);
    }
}
