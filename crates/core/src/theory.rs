//! Empirical validation of the paper's theoretical properties (§III).
//!
//! **Theorem 1** sandwiches the collision probability of two users between
//! functions of their Jaccard similarity and the hash-collision density:
//!
//! `(J − κ/ℓ)/(1 − κ/ℓ) ≤ P[H(u1) = H(u2)] ≤ (J + κ/ℓ)/(1 − κ/ℓ)` (Eq. 9)
//!
//! where `ℓ = |P1 ∪ P2|` and `κ` is the number of collisions of the
//! generative hash on the union. **Theorem 2** bounds the collision density
//! itself via a Chernoff argument. This module measures both empirically
//! over the seeded hash family — simultaneously validating the theorems'
//! derivation and the SplitMix64-for-Jenkins substitution (the bounds only
//! hold if the hash family behaves uniformly).

use crate::frh::FastRandomHash;
use cnc_dataset::ItemId;
use cnc_similarity::Jaccard;

/// Outcome of sampling the hash family for one user pair (Theorem 1).
#[derive(Clone, Copy, Debug)]
pub struct CollisionExperiment {
    /// Exact Jaccard similarity of the two profiles.
    pub jaccard: f64,
    /// `ℓ = |P1 ∪ P2|`.
    pub ell: usize,
    /// Empirical `P[H(u1) = H(u2)]` over the sampled seeds.
    pub empirical: f64,
    /// Mean of the per-seed lower bounds `(J − κ/ℓ)/(1 − κ/ℓ)`.
    pub lower_bound: f64,
    /// Mean of the per-seed upper bounds `(J + κ/ℓ)/(1 − κ/ℓ)`.
    pub upper_bound: f64,
    /// Mean collision density `κ/ℓ`.
    pub mean_collision_density: f64,
}

/// Number of collisions `κ = ℓ − |h(P1 ∪ P2)|` of one generative hash on
/// the union of two profiles.
pub fn collisions(frh: &FastRandomHash, p1: &[ItemId], p2: &[ItemId]) -> usize {
    let mut hashes: Vec<u32> = p1.iter().chain(p2.iter()).map(|&i| frh.item_hash(i)).collect();
    // The union must be deduplicated by *item* first; profiles are sorted
    // and item-disjoint representations, so merge-dedup on ids.
    let mut union: Vec<ItemId> = p1.iter().chain(p2.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    hashes.clear();
    hashes.extend(union.iter().map(|&i| frh.item_hash(i)));
    hashes.sort_unstable();
    hashes.dedup();
    union.len() - hashes.len()
}

/// Samples `seeds` hash functions and measures Theorem 1's quantities for
/// the pair `(p1, p2)` at hash range `b`.
pub fn collision_experiment(
    p1: &[ItemId],
    p2: &[ItemId],
    b: u32,
    seeds: std::ops::Range<u64>,
) -> CollisionExperiment {
    assert!(!seeds.is_empty(), "need at least one seed");
    let jaccard = Jaccard::similarity(p1, p2);
    let mut union: Vec<ItemId> = p1.iter().chain(p2.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    let ell = union.len();

    let total = seeds.end - seeds.start;
    let (mut equal, mut lower_sum, mut upper_sum, mut density_sum) = (0u64, 0.0f64, 0.0f64, 0.0f64);
    for seed in seeds {
        let frh = FastRandomHash::new(seed, b);
        if frh.user_hash(p1) == frh.user_hash(p2) {
            equal += 1;
        }
        let kappa = collisions(&frh, p1, p2) as f64;
        let density = if ell == 0 { 0.0 } else { kappa / ell as f64 };
        density_sum += density;
        if density < 1.0 {
            lower_sum += (jaccard - density) / (1.0 - density);
            upper_sum += (jaccard + density) / (1.0 - density);
        } else {
            lower_sum += 0.0;
            upper_sum += 1.0;
        }
    }
    CollisionExperiment {
        jaccard,
        ell,
        empirical: equal as f64 / total as f64,
        lower_bound: lower_sum / total as f64,
        upper_bound: upper_sum / total as f64,
        mean_collision_density: density_sum / total as f64,
    }
}

/// Theorem 2's Chernoff bound on the collision density: returns
/// `(empirical P[κ/ℓ < threshold], analytical lower bound, threshold)`
/// where `threshold = (1 + d)(ℓ − 1)/(2b)`.
pub fn theorem2_experiment(
    p1: &[ItemId],
    p2: &[ItemId],
    b: u32,
    d: f64,
    seeds: std::ops::Range<u64>,
) -> (f64, f64, f64) {
    assert!(d > 0.0, "d must be positive");
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut union: Vec<ItemId> = p1.iter().chain(p2.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    let ell = union.len() as f64;
    let threshold = (1.0 + d) * (ell - 1.0) / (2.0 * b as f64);

    let total = seeds.end - seeds.start;
    let below = seeds
        .filter(|&seed| {
            let frh = FastRandomHash::new(seed, b);
            let kappa = collisions(&frh, p1, p2) as f64;
            kappa / ell < threshold
        })
        .count();
    // 1 − (e^d / (1+d)^{1+d})^{ℓ(ℓ−1)/2b}  (Eq. 10)
    let exponent = ell * (ell - 1.0) / (2.0 * b as f64);
    let base = d.exp() / (1.0 + d).powf(1.0 + d);
    let bound = 1.0 - base.powf(exponent);
    (below as f64 / total as f64, bound, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlapping_profiles(ell_half: u32, overlap: u32) -> (Vec<u32>, Vec<u32>) {
        let p1: Vec<u32> = (0..ell_half).collect();
        let p2: Vec<u32> = (ell_half - overlap..2 * ell_half - overlap).collect();
        (p1, p2)
    }

    #[test]
    fn collision_count_is_zero_for_injective_hash() {
        // b = 2^22 over 20 items: collisions are essentially impossible.
        let frh = FastRandomHash::new(1, 1 << 22);
        let (p1, p2) = overlapping_profiles(10, 5);
        assert_eq!(collisions(&frh, &p1, &p2), 0);
    }

    #[test]
    fn collision_count_caps_at_ell_minus_range() {
        // b = 1: every item hashes to 1, so κ = ℓ − 1.
        let frh = FastRandomHash::new(2, 1);
        let (p1, p2) = overlapping_profiles(8, 4);
        assert_eq!(collisions(&frh, &p1, &p2), 12 - 1);
    }

    #[test]
    fn theorem1_sandwich_holds_empirically() {
        // The paper's running example scale: ℓ = 256, b = 4096.
        let (p1, p2) = overlapping_profiles(160, 64); // ℓ = 256, J = 64/256
        let exp = collision_experiment(&p1, &p2, 4096, 0..4000);
        assert_eq!(exp.ell, 256);
        assert!((exp.jaccard - 0.25).abs() < 1e-12);
        assert!(
            exp.empirical >= exp.lower_bound - 0.02,
            "P = {:.4} below mean lower bound {:.4}",
            exp.empirical,
            exp.lower_bound
        );
        assert!(
            exp.empirical <= exp.upper_bound + 0.02,
            "P = {:.4} above mean upper bound {:.4}",
            exp.empirical,
            exp.upper_bound
        );
        // And the headline claim: P tracks J up to the collision noise.
        assert!((exp.empirical - exp.jaccard).abs() < 3.0 * exp.mean_collision_density + 0.02);
    }

    #[test]
    fn theorem1_weak_bounds_match_paper_numerical_example() {
        // §III's numerical example: ℓ = 256, b = 4096 →
        // J − 0.078 ≤ P ≤ J + 0.234 with probability 0.998.
        // NOTE: the paper says it sets d = 0.5, but its own formulas only
        // reproduce all three published numbers with d = 1.5:
        //   κ/ℓ threshold = (1+d)(ℓ−1)/2b = 2.5·255/8192 ≈ 0.0778 (→ 0.078)
        //   upper margin  = 3·κ/ℓ ≈ 0.234
        //   Chernoff bound = 1 − (e^d/(1+d)^{1+d})^{ℓ(ℓ−1)/2b} ≈ 0.998
        // (with d = 0.5 the bound evaluates to 0.578). We reproduce the
        // published numbers; the discrepancy is recorded in EXPERIMENTS.md.
        let ell = 256.0f64;
        let b = 4096.0f64;
        let d = 1.5f64;
        let density = (1.0 + d) * (ell - 1.0) / (2.0 * b);
        assert!((density - 0.078).abs() < 0.001, "threshold {density:.4} ≠ 0.078");
        let upper_margin = 3.0 * density;
        assert!((upper_margin - 0.234).abs() < 0.002, "margin {upper_margin:.4} ≠ 0.234");
        let exponent = ell * (ell - 1.0) / (2.0 * b);
        let bound = 1.0 - (d.exp() / (1.0 + d).powf(1.0 + d)).powf(exponent);
        assert!((bound - 0.998).abs() < 0.001, "probability {bound:.4} ≠ 0.998");
    }

    #[test]
    fn disjoint_profiles_rarely_collide() {
        let p1: Vec<u32> = (0..50).collect();
        let p2: Vec<u32> = (1000..1050).collect();
        let exp = collision_experiment(&p1, &p2, 4096, 0..2000);
        assert_eq!(exp.jaccard, 0.0);
        // Only hash collisions can align them: bounded by the upper bound.
        assert!(exp.empirical <= exp.upper_bound + 0.02);
        assert!(exp.empirical < 0.1);
    }

    #[test]
    fn identical_profiles_always_collide() {
        let p: Vec<u32> = (0..64).collect();
        let exp = collision_experiment(&p, &p, 1024, 0..500);
        assert_eq!(exp.empirical, 1.0);
        assert_eq!(exp.jaccard, 1.0);
    }

    #[test]
    fn theorem2_bound_holds_empirically() {
        let (p1, p2) = overlapping_profiles(160, 64); // ℓ = 256
        let (empirical, bound, threshold) = theorem2_experiment(&p1, &p2, 4096, 1.5, 0..3000);
        assert!(threshold > 0.0);
        assert!(
            empirical >= bound - 0.02,
            "empirical {empirical:.4} violates Chernoff bound {bound:.4}"
        );
        // The paper's example promises probability ≥ 0.998 at these values.
        assert!(bound > 0.99, "analytic bound {bound:.4} weaker than the paper's example");
    }

    #[test]
    fn higher_b_reduces_collision_density() {
        let (p1, p2) = overlapping_profiles(100, 30);
        let low_b = collision_experiment(&p1, &p2, 256, 0..500);
        let high_b = collision_experiment(&p1, &p2, 8192, 0..500);
        assert!(high_b.mean_collision_density < low_b.mean_collision_density);
    }
}
