//! Steps 2 and 3 of C²: scheduling, local KNN and merging (§II-F, §II-G,
//! Algorithms 2 and 3) — the end-to-end [`ClusterAndConquer`] pipeline.

use crate::clustering::{cluster_dataset, Clustering};
use crate::config::{C2Config, ClusteringScheme};
use crate::frh::FastRandomHash;
use crate::minhash_variant::cluster_minhash;
use cnc_baselines::{local, BuildContext, KnnAlgorithm};
use cnc_dataset::{Dataset, UserId};
use cnc_graph::{KnnGraph, SharedKnnGraph};
use cnc_similarity::{SeededHash, SimilarityData};
use cnc_threadpool::{effective_threads, PriorityPool};
use std::time::{Duration, Instant};

/// Wall-clock durations of the pipeline phases.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Step 1: hashing + recursive splitting (plus fingerprint building
    /// when the backend is GoldFinger and `build` constructed it).
    pub clustering: Duration,
    /// Steps 2 + 3: per-cluster KNN and concurrent merging.
    pub local_knn: Duration,
    /// End-to-end duration.
    pub total: Duration,
}

/// Instrumentation of one C² run (drives Tables II, IV, V and Figs 6–8).
#[derive(Clone, Debug)]
pub struct C2Stats {
    /// Final number of clusters across all `t` configurations.
    pub num_clusters: usize,
    /// Number of recursive split operations performed.
    pub splits: usize,
    /// Final cluster sizes, sorted in decreasing order (Fig. 8 series).
    pub cluster_sizes_desc: Vec<usize>,
    /// Similarity computations performed during the run.
    pub comparisons: u64,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// A built KNN graph plus the run's instrumentation.
#[derive(Debug)]
pub struct C2Result {
    /// The approximate KNN graph.
    pub graph: KnnGraph,
    /// Run statistics.
    pub stats: C2Stats,
}

/// The Cluster-and-Conquer KNN-graph builder.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterAndConquer {
    config: C2Config,
}

impl ClusterAndConquer {
    /// Creates a builder from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`C2Config::validate`]).
    pub fn new(config: C2Config) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid C2Config: {msg}");
        }
        ClusterAndConquer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &C2Config {
        &self.config
    }

    /// Builds the KNN graph of `dataset`, materializing the similarity
    /// backend declared in the configuration.
    ///
    /// Fingerprint construction (for GoldFinger backends) is timed as part
    /// of the clustering phase, mirroring the paper's inclusion of all
    /// preprocessing in the reported wall-clock times. The build runs on
    /// the configured worker threads (bit-identical to a serial build).
    pub fn build(&self, dataset: &Dataset) -> C2Result {
        let start = Instant::now();
        let sim = SimilarityData::build_parallel(self.config.backend, dataset, self.config.threads);
        self.run(&self.config, dataset, &sim, start)
    }

    /// Builds the graph against an externally-provided similarity oracle
    /// (used by the experiment harness to share fingerprints between
    /// algorithms, as the paper does).
    pub fn build_with(&self, dataset: &Dataset, sim: &SimilarityData<'_>) -> C2Result {
        self.run(&self.config, dataset, sim, Instant::now())
    }

    /// Runs Step 1 (clustering) alone and returns the raw [`Clustering`].
    ///
    /// This is the entry point for external execution engines that schedule
    /// Steps 2 + 3 themselves — in particular `cnc-runtime`'s sharded
    /// map-reduce engine, whose `ShardedBuild::build_sharded` extension
    /// method (re-exported in the facade prelude) runs the resulting
    /// clusters on `W` worker shards and merges their partial neighbour
    /// lists in a concurrent reduce stage. (`build_sharded` lives in
    /// `cnc-runtime` rather than here because the runtime crate depends on
    /// this one; the trait keeps the call-site syntax
    /// `ClusterAndConquer::build_sharded(..)`.)
    pub fn cluster_step(&self, dataset: &Dataset) -> Clustering {
        Self::cluster(&self.config, dataset)
    }

    /// Per-cluster deterministic seeds for the greedy local solver, derived
    /// from the run seed exactly as [`ClusterAndConquer::build`] derives
    /// them — external engines reuse this so a sharded run solves every
    /// cluster identically to the single-process pipeline.
    pub fn job_seed(config: &C2Config, cluster_index: usize) -> u64 {
        SeededHash::new(config.seed ^ 0x5EED).hash_u64(cluster_index as u64)
    }

    /// Step 1 dispatcher.
    fn cluster(config: &C2Config, dataset: &Dataset) -> Clustering {
        match config.scheme {
            ClusteringScheme::FastRandomHash => {
                let functions = FastRandomHash::family(config.seed, config.t, config.b);
                cluster_dataset(dataset, &functions, config.max_cluster_size)
            }
            ClusteringScheme::MinHash => cluster_minhash(dataset, config.seed, config.t),
        }
    }

    fn run(
        &self,
        config: &C2Config,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        start: Instant,
    ) -> C2Result {
        let comparisons_before = sim.comparisons();
        let n = dataset.num_users();
        let threads = effective_threads(config.threads);

        // --- Step 1: clustering -----------------------------------------
        let clustering = Self::cluster(config, dataset);
        let clustering_elapsed = start.elapsed();

        // --- Steps 2 + 3: scheduled local KNN, merged on the fly --------
        let local_start = Instant::now();
        let shared = SharedKnnGraph::new(n, config.k);
        let threshold = config.brute_force_threshold();
        let cluster_sizes_desc = clustering.sizes_desc();
        let num_clusters = clustering.clusters.len();
        let splits = clustering.splits;

        let jobs: Vec<(u64, (u64, Vec<UserId>))> = clustering
            .clusters
            .into_iter()
            .enumerate()
            .map(|(index, users)| {
                // Deterministic per-cluster seed for the greedy solver.
                (users.len() as u64, (Self::job_seed(config, index), users))
            })
            .collect();
        PriorityPool::run(threads, jobs, |(seed, cluster)| {
            // Algorithm 2: brute force for small clusters, Hyrec above the
            // ρ·k² crossover of the two cost estimates.
            if cluster.len() < threshold {
                local::brute_force(&cluster, sim, &shared);
            } else {
                local::hyrec(&cluster, sim, &shared, config.rho, config.delta, seed);
            }
        });
        let local_elapsed = local_start.elapsed();

        C2Result {
            graph: shared.into_graph(),
            stats: C2Stats {
                num_clusters,
                splits,
                cluster_sizes_desc,
                comparisons: sim.comparisons() - comparisons_before,
                timings: PhaseTimings {
                    clustering: clustering_elapsed,
                    local_knn: local_elapsed,
                    total: start.elapsed(),
                },
            },
        }
    }
}

impl KnnAlgorithm for ClusterAndConquer {
    fn name(&self) -> &'static str {
        match self.config.scheme {
            ClusteringScheme::FastRandomHash => "C2",
            ClusteringScheme::MinHash => "C2/MinHash",
        }
    }

    /// Trait entry point: the context's `k`, `threads` and `seed` override
    /// the corresponding config fields, so harnesses drive all algorithms
    /// uniformly.
    fn build(&self, ctx: &BuildContext<'_>) -> KnnGraph {
        let config = C2Config { k: ctx.k, threads: ctx.threads, seed: ctx.seed, ..self.config };
        self.run(&config, ctx.dataset, ctx.sim, Instant::now()).graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;
    use cnc_graph::quality;
    use cnc_similarity::SimilarityBackend;

    fn test_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(77);
        cfg.num_users = 600;
        cfg.num_items = 500;
        cfg.communities = 10;
        cfg.mean_profile = 30.0;
        cfg.min_profile = 10;
        cfg.generate()
    }

    fn small_config() -> C2Config {
        C2Config {
            k: 10,
            b: 64,
            t: 4,
            max_cluster_size: 150,
            threads: 2,
            backend: SimilarityBackend::Raw,
            ..C2Config::default()
        }
    }

    fn exact_graph(ds: &Dataset, k: usize) -> KnnGraph {
        let sim = SimilarityData::build(SimilarityBackend::Raw, ds);
        let ctx = BuildContext { dataset: ds, sim: &sim, k, threads: 2, seed: 1 };
        cnc_baselines::BruteForce.build(&ctx)
    }

    #[test]
    fn produces_high_quality_graph() {
        let ds = test_dataset();
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.8, "C2 quality {q:.3} too low");
    }

    #[test]
    fn uses_fewer_comparisons_than_brute_force() {
        let ds = test_dataset();
        let n = ds.num_users() as u64;
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert!(
            result.stats.comparisons < n * (n - 1) / 2,
            "{} comparisons ≥ brute force",
            result.stats.comparisons
        );
        assert!(result.stats.comparisons > 0);
    }

    #[test]
    fn stats_are_populated() {
        let ds = test_dataset();
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert!(result.stats.num_clusters >= 4, "at least one cluster per function");
        assert_eq!(result.stats.cluster_sizes_desc.len(), result.stats.num_clusters);
        assert!(result.stats.timings.total >= result.stats.timings.local_knn);
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let ds = test_dataset();
        let config = C2Config { threads: 1, ..small_config() };
        let a = ClusterAndConquer::new(config).build(&ds);
        let b = ClusterAndConquer::new(config).build(&ds);
        for u in ds.users() {
            assert_eq!(
                a.graph.neighbors(u).sorted(),
                b.graph.neighbors(u).sorted(),
                "non-deterministic neighbourhood for user {u}"
            );
        }
        assert_eq!(a.stats.comparisons, b.stats.comparisons);
    }

    #[test]
    fn minhash_scheme_also_builds_a_graph() {
        let ds = test_dataset();
        let config = C2Config { scheme: ClusteringScheme::MinHash, ..small_config() };
        let result = ClusterAndConquer::new(config).build(&ds);
        assert_eq!(result.stats.splits, 0);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.5, "C2/MinHash quality {q:.3} surprisingly low");
    }

    #[test]
    fn more_hash_functions_do_not_reduce_quality() {
        let ds = test_dataset();
        let exact = exact_graph(&ds, 10);
        let q1 = {
            let config = C2Config { t: 1, ..small_config() };
            let r = ClusterAndConquer::new(config).build(&ds);
            quality(&r.graph, &exact, &ds)
        };
        let q8 = {
            let config = C2Config { t: 8, ..small_config() };
            let r = ClusterAndConquer::new(config).build(&ds);
            quality(&r.graph, &exact, &ds)
        };
        assert!(q8 >= q1 - 0.02, "t=8 quality {q8:.3} below t=1 quality {q1:.3}");
    }

    #[test]
    fn goldfinger_backend_works_end_to_end() {
        let ds = test_dataset();
        let config = C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 3 },
            ..small_config()
        };
        let result = ClusterAndConquer::new(config).build(&ds);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.7, "GoldFinger-backed C2 quality {q:.3} too low");
    }

    #[test]
    fn trait_entry_point_honours_context() {
        let ds = test_dataset();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 7, threads: 1, seed: 12 };
        let algo = ClusterAndConquer::new(small_config());
        let graph = KnnAlgorithm::build(&algo, &ctx);
        assert_eq!(graph.k(), 7);
        assert_eq!(KnnAlgorithm::name(&algo), "C2");
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::from_profiles(vec![], 0);
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert_eq!(result.graph.num_users(), 0);
        assert_eq!(result.stats.num_clusters, 0);
    }

    #[test]
    #[should_panic(expected = "invalid C2Config")]
    fn invalid_config_panics_at_construction() {
        ClusterAndConquer::new(C2Config { k: 0, ..C2Config::default() });
    }
}
