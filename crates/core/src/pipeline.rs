//! Steps 2 and 3 of C²: scheduling, local KNN and merging (§II-F, §II-G,
//! Algorithms 2 and 3) — the end-to-end [`ClusterAndConquer`] pipeline.

use crate::build_plan::{BuildPlan, ClusterCache, ClusterSolution, RebuildStats};
use crate::clustering::{cluster_dataset, Clustering};
use crate::config::{C2Config, ClusteringScheme};
use crate::frh::FastRandomHash;
use crate::minhash_variant::cluster_minhash;
use cnc_baselines::{local, BuildContext, KnnAlgorithm};
use cnc_dataset::{Dataset, UserId};
use cnc_graph::{KnnGraph, SharedKnnGraph};
use cnc_similarity::{SeededHash, SimilarityData};
use cnc_telemetry::Telemetry;
use cnc_threadpool::{effective_threads, PriorityPool};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall-clock durations of the pipeline phases.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Step 1: hashing + recursive splitting (plus fingerprint building
    /// when the backend is GoldFinger and `build` constructed it).
    pub clustering: Duration,
    /// Steps 2 + 3: per-cluster KNN and concurrent merging.
    pub local_knn: Duration,
    /// End-to-end duration.
    pub total: Duration,
}

/// Instrumentation of one C² run (drives Tables II, IV, V and Figs 6–8).
#[derive(Clone, Debug)]
pub struct C2Stats {
    /// Final number of clusters across all `t` configurations.
    pub num_clusters: usize,
    /// Number of recursive split operations performed.
    pub splits: usize,
    /// Final cluster sizes, sorted in decreasing order (Fig. 8 series).
    pub cluster_sizes_desc: Vec<usize>,
    /// Similarity computations performed during the run.
    pub comparisons: u64,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// A built KNN graph plus the run's instrumentation.
#[derive(Debug)]
pub struct C2Result {
    /// The approximate KNN graph.
    pub graph: KnnGraph,
    /// Run statistics.
    pub stats: C2Stats,
}

/// An incremental build's output: the graph + stats (comparisons count
/// only the *fresh* cluster solves), the cache covering every cluster of
/// this build (hand it to the next incremental build), and the
/// reuse figures.
#[derive(Debug)]
pub struct IncrementalResult {
    /// The graph and stats — bit-identical to a from-scratch build.
    pub result: C2Result,
    /// Per-cluster solutions of *this* build, keyed for the next one.
    pub cache: ClusterCache,
    /// How the build split between reused and re-solved clusters.
    pub rebuild: RebuildStats,
}

/// The Cluster-and-Conquer KNN-graph builder.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterAndConquer {
    config: C2Config,
}

impl ClusterAndConquer {
    /// Creates a builder from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`C2Config::validate`]).
    pub fn new(config: C2Config) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid C2Config: {msg}");
        }
        ClusterAndConquer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &C2Config {
        &self.config
    }

    /// Builds the KNN graph of `dataset`, materializing the similarity
    /// backend declared in the configuration.
    ///
    /// Fingerprint construction (for GoldFinger backends) is timed as part
    /// of the clustering phase, mirroring the paper's inclusion of all
    /// preprocessing in the reported wall-clock times. The build runs on
    /// the configured worker threads (bit-identical to a serial build).
    pub fn build(&self, dataset: &Dataset) -> C2Result {
        let start = Instant::now();
        let sim = SimilarityData::build_parallel(self.config.backend, dataset, self.config.threads);
        self.run(&self.config, dataset, &sim, start)
    }

    /// Builds the graph against an externally-provided similarity oracle
    /// (used by the experiment harness to share fingerprints between
    /// algorithms, as the paper does).
    pub fn build_with(&self, dataset: &Dataset, sim: &SimilarityData<'_>) -> C2Result {
        self.run(&self.config, dataset, sim, Instant::now())
    }

    /// Runs Step 1 (clustering) alone and returns the raw [`Clustering`].
    ///
    /// This is the entry point for external execution engines that schedule
    /// Steps 2 + 3 themselves — in particular `cnc-runtime`'s sharded
    /// map-reduce engine, whose `ShardedBuild::build_sharded` extension
    /// method (re-exported in the facade prelude) runs the resulting
    /// clusters on `W` worker shards and merges their partial neighbour
    /// lists in a concurrent reduce stage. (`build_sharded` lives in
    /// `cnc-runtime` rather than here because the runtime crate depends on
    /// this one; the trait keeps the call-site syntax
    /// `ClusterAndConquer::build_sharded(..)`.)
    pub fn cluster_step(&self, dataset: &Dataset) -> Clustering {
        Self::cluster(&self.config, dataset)
    }

    /// Per-cluster deterministic seeds for the greedy local solver, derived
    /// from the run seed exactly as [`ClusterAndConquer::build`] derives
    /// them — external engines reuse this so a sharded run solves every
    /// cluster identically to the single-process pipeline.
    pub fn job_seed(config: &C2Config, cluster_index: usize) -> u64 {
        SeededHash::new(config.seed ^ 0x5EED).hash_u64(cluster_index as u64)
    }

    /// Step 1 dispatcher.
    fn cluster(config: &C2Config, dataset: &Dataset) -> Clustering {
        match config.scheme {
            ClusteringScheme::FastRandomHash => {
                let functions = FastRandomHash::family(config.seed, config.t, config.b);
                cluster_dataset(dataset, &functions, config.max_cluster_size)
            }
            ClusteringScheme::MinHash => cluster_minhash(dataset, config.seed, config.t),
        }
    }

    /// Incrementally rebuilds the graph, re-solving **only** the clusters
    /// whose content hash misses `prev` (stages 1–4 of the
    /// [`BuildPlan`]); cached partial lists stand in for the rest. The
    /// graph is bit-identical to [`ClusterAndConquer::build`] on the same
    /// dataset, and `result.stats.comparisons` counts only the fresh
    /// solves (`prev`'s entries carry the rest) — both locked by
    /// `tests/incremental.rs`. Pass [`ClusterCache::new`] (empty) for the
    /// first build; feed the returned cache to the next call.
    pub fn build_incremental(&self, dataset: &Dataset, prev: &ClusterCache) -> IncrementalResult {
        let start = Instant::now();
        let sim = SimilarityData::build_parallel(self.config.backend, dataset, self.config.threads);
        self.run_incremental(dataset, &sim, prev, &[], start)
    }

    /// [`ClusterAndConquer::build_incremental`] against an external
    /// similarity oracle, additionally forcing the clusters of
    /// `force_dirty` users to re-solve (the serving layer passes the ids
    /// inserted since the last epoch). Timings start at the call (like
    /// [`ClusterAndConquer::build_with`], the oracle's construction is
    /// the caller's to account for).
    pub fn build_incremental_with(
        &self,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        prev: &ClusterCache,
        force_dirty: &[UserId],
    ) -> IncrementalResult {
        self.run_incremental(dataset, sim, prev, force_dirty, Instant::now())
    }

    fn run_incremental(
        &self,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        prev: &ClusterCache,
        force_dirty: &[UserId],
        start: Instant,
    ) -> IncrementalResult {
        let (result, extra) =
            self.execute_plan(&self.config, dataset, sim, start, Some((prev, force_dirty)));
        let (cache, rebuild) = extra.expect("incremental run must produce a cache");
        IncrementalResult { result, cache, rebuild }
    }

    fn run(
        &self,
        config: &C2Config,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        start: Instant,
    ) -> C2Result {
        self.execute_plan(config, dataset, sim, start, None).0
    }

    /// The body shared by [`ClusterAndConquer::build`] (every cluster
    /// dirty, no cache produced) and
    /// [`ClusterAndConquer::build_incremental`] — one solve loop so the
    /// two paths cannot drift apart (`tests/incremental.rs` locks their
    /// bit-identity).
    fn execute_plan(
        &self,
        config: &C2Config,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        start: Instant,
        incremental: Option<(&ClusterCache, &[UserId])>,
    ) -> (C2Result, Option<(ClusterCache, RebuildStats)>) {
        let telemetry = Telemetry::global();
        let mut build_span = telemetry.span("build");
        let comparisons_before = sim.comparisons();
        let n = dataset.num_users();
        let threads = effective_threads(config.threads);

        // --- Stages 1 + 2: assignment (+ content hashes when a cache is
        // in play; one-shot builds skip the fingerprint stage) ------------
        let mut plan = BuildPlan::assign(config, dataset);
        if incremental.is_some() {
            plan.fingerprint(dataset);
        }
        let clustering_elapsed = start.elapsed();

        // --- Stage 3: partition, then solve only the dirty clusters ------
        let local_start_ns = telemetry.stamp();
        let local_start = Instant::now();
        let (dirty, reused) = match incremental {
            Some((prev, force_dirty)) => {
                let part = plan.partition(prev, force_dirty);
                (part.dirty, part.reused)
            }
            None => ((0..plan.clusters().len()).collect(), Vec::new()),
        };
        let shared = SharedKnnGraph::new(n, config.k);
        let solutions: Option<Vec<Mutex<Option<ClusterSolution>>>> =
            incremental.map(|_| dirty.iter().map(|_| Mutex::new(None)).collect());
        let jobs: Vec<(u64, (usize, usize))> = dirty
            .iter()
            .enumerate()
            .map(|(slot, &index)| (plan.clusters()[index].len() as u64, (slot, index)))
            .collect();
        PriorityPool::run(threads, jobs, |(slot, index)| {
            // Algorithm 2: brute force for small clusters, Hyrec above the
            // ρ·k² crossover — the shared dispatch in
            // `cnc_baselines::local`.
            let users = &plan.clusters()[index];
            let (lists, comparisons) = local::solve_cluster_partial(
                users,
                sim,
                config.k,
                config.brute_force_threshold(),
                config.rho,
                config.delta,
                plan.seed(index),
            );
            for (i, &u) in users.iter().enumerate() {
                shared.merge_into(u, &lists[i]);
            }
            if let Some(slots) = &solutions {
                *slots[slot].lock().expect("solution slot poisoned") =
                    Some(plan.solution(index, lists, comparisons));
            }
        });

        // --- Stage 4: merge the cached partial lists; assemble the next
        // cache (incremental only) ----------------------------------------
        for (_, solution) in &reused {
            for (i, &u) in solution.users.iter().enumerate() {
                shared.merge_into(u, &solution.lists[i]);
            }
        }
        let extra = solutions.map(|slots| {
            let fresh: Vec<ClusterSolution> = slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("solution slot poisoned")
                        .expect("dirty cluster not solved")
                })
                .collect();
            ClusterCache::assemble(config, &reused, fresh, start.elapsed().as_secs_f64() * 1e3)
        });
        let local_elapsed = local_start.elapsed();
        let run_comparisons = sim.comparisons() - comparisons_before;

        // Span fed by the identical Duration that feeds the stats struct,
        // so stage timings cannot drift between the two accounts.
        telemetry.record_complete(
            "build.local_knn",
            local_start_ns,
            local_elapsed.as_nanos() as u64,
            vec![("comparisons", run_comparisons), ("clusters_solved", dirty.len() as u64)],
        );
        if telemetry.enabled() {
            build_span.attr("comparisons", run_comparisons);
            build_span.attr("users", n as u64);
            telemetry.counter("cnc_build_comparisons_total", &[]).add(run_comparisons);
        }

        let mut cluster_sizes_desc: Vec<usize> = plan.clusters().iter().map(Vec::len).collect();
        cluster_sizes_desc.sort_unstable_by(|a, b| b.cmp(a));
        let result = C2Result {
            graph: shared.into_graph(),
            stats: C2Stats {
                num_clusters: plan.clusters().len(),
                splits: plan.splits(),
                cluster_sizes_desc,
                comparisons: run_comparisons,
                timings: PhaseTimings {
                    clustering: clustering_elapsed,
                    local_knn: local_elapsed,
                    total: start.elapsed(),
                },
            },
        };
        (result, extra)
    }
}

impl KnnAlgorithm for ClusterAndConquer {
    fn name(&self) -> &'static str {
        match self.config.scheme {
            ClusteringScheme::FastRandomHash => "C2",
            ClusteringScheme::MinHash => "C2/MinHash",
        }
    }

    /// Trait entry point: the context's `k`, `threads` and `seed` override
    /// the corresponding config fields, so harnesses drive all algorithms
    /// uniformly.
    fn build(&self, ctx: &BuildContext<'_>) -> KnnGraph {
        let config = C2Config { k: ctx.k, threads: ctx.threads, seed: ctx.seed, ..self.config };
        self.run(&config, ctx.dataset, ctx.sim, Instant::now()).graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;
    use cnc_graph::quality;
    use cnc_similarity::SimilarityBackend;

    fn test_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(77);
        cfg.num_users = 600;
        cfg.num_items = 500;
        cfg.communities = 10;
        cfg.mean_profile = 30.0;
        cfg.min_profile = 10;
        cfg.generate()
    }

    fn small_config() -> C2Config {
        C2Config {
            k: 10,
            b: 64,
            t: 4,
            max_cluster_size: 150,
            threads: 2,
            backend: SimilarityBackend::Raw,
            ..C2Config::default()
        }
    }

    fn exact_graph(ds: &Dataset, k: usize) -> KnnGraph {
        let sim = SimilarityData::build(SimilarityBackend::Raw, ds);
        let ctx = BuildContext { dataset: ds, sim: &sim, k, threads: 2, seed: 1 };
        cnc_baselines::BruteForce.build(&ctx)
    }

    #[test]
    fn produces_high_quality_graph() {
        let ds = test_dataset();
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.8, "C2 quality {q:.3} too low");
    }

    #[test]
    fn uses_fewer_comparisons_than_brute_force() {
        let ds = test_dataset();
        let n = ds.num_users() as u64;
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert!(
            result.stats.comparisons < n * (n - 1) / 2,
            "{} comparisons ≥ brute force",
            result.stats.comparisons
        );
        assert!(result.stats.comparisons > 0);
    }

    #[test]
    fn stats_are_populated() {
        let ds = test_dataset();
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert!(result.stats.num_clusters >= 4, "at least one cluster per function");
        assert_eq!(result.stats.cluster_sizes_desc.len(), result.stats.num_clusters);
        assert!(result.stats.timings.total >= result.stats.timings.local_knn);
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let ds = test_dataset();
        let config = C2Config { threads: 1, ..small_config() };
        let a = ClusterAndConquer::new(config).build(&ds);
        let b = ClusterAndConquer::new(config).build(&ds);
        for u in ds.users() {
            assert_eq!(
                a.graph.neighbors(u).sorted(),
                b.graph.neighbors(u).sorted(),
                "non-deterministic neighbourhood for user {u}"
            );
        }
        assert_eq!(a.stats.comparisons, b.stats.comparisons);
    }

    #[test]
    fn minhash_scheme_also_builds_a_graph() {
        let ds = test_dataset();
        let config = C2Config { scheme: ClusteringScheme::MinHash, ..small_config() };
        let result = ClusterAndConquer::new(config).build(&ds);
        assert_eq!(result.stats.splits, 0);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.5, "C2/MinHash quality {q:.3} surprisingly low");
    }

    #[test]
    fn more_hash_functions_do_not_reduce_quality() {
        let ds = test_dataset();
        let exact = exact_graph(&ds, 10);
        let q1 = {
            let config = C2Config { t: 1, ..small_config() };
            let r = ClusterAndConquer::new(config).build(&ds);
            quality(&r.graph, &exact, &ds)
        };
        let q8 = {
            let config = C2Config { t: 8, ..small_config() };
            let r = ClusterAndConquer::new(config).build(&ds);
            quality(&r.graph, &exact, &ds)
        };
        assert!(q8 >= q1 - 0.02, "t=8 quality {q8:.3} below t=1 quality {q1:.3}");
    }

    #[test]
    fn goldfinger_backend_works_end_to_end() {
        let ds = test_dataset();
        let config = C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 3 },
            ..small_config()
        };
        let result = ClusterAndConquer::new(config).build(&ds);
        let exact = exact_graph(&ds, 10);
        let q = quality(&result.graph, &exact, &ds);
        assert!(q > 0.7, "GoldFinger-backed C2 quality {q:.3} too low");
    }

    #[test]
    fn trait_entry_point_honours_context() {
        let ds = test_dataset();
        let sim = SimilarityData::build(SimilarityBackend::Raw, &ds);
        let ctx = BuildContext { dataset: &ds, sim: &sim, k: 7, threads: 1, seed: 12 };
        let algo = ClusterAndConquer::new(small_config());
        let graph = KnnAlgorithm::build(&algo, &ctx);
        assert_eq!(graph.k(), 7);
        assert_eq!(KnnAlgorithm::name(&algo), "C2");
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::from_profiles(vec![], 0);
        let result = ClusterAndConquer::new(small_config()).build(&ds);
        assert_eq!(result.graph.num_users(), 0);
        assert_eq!(result.stats.num_clusters, 0);
    }

    #[test]
    #[should_panic(expected = "invalid C2Config")]
    fn invalid_config_panics_at_construction() {
        ClusterAndConquer::new(C2Config { k: 0, ..C2Config::default() });
    }
}
