//! FastRandomHash (paper §II-D).
//!
//! The scheme first projects each item `i ∈ I` onto a hash value
//! `h(i) ∈ ⟦1, b⟧` with a generative hash function, then defines the hash of
//! a user as the **minimum** over her profile: `H(u) = min_{i ∈ P_u} h(i)`
//! (Eq. (3)). The bounded range `⟦1, b⟧` (b = 4096 by default, vs the item
//! universe of up to 203 030 for MinHash) is the key design choice: it caps
//! the number of clusters, avoiding the fragmentation that cripples LSH on
//! sparse datasets — at the price of collisions and unbalanced clusters,
//! which recursive splitting absorbs.
//!
//! For the splitting mechanism, `H\η(u) = min_{i ∈ P_u, h(i) > η} h(i)`
//! re-hashes a user while ignoring every item hash at or below the cluster
//! index `η` being split.

use cnc_dataset::ItemId;
use cnc_similarity::SeededHash;

/// One FastRandomHash function: a generative item hash `h : I → ⟦1, b⟧`
/// plus the min-aggregation over profiles.
#[derive(Clone, Copy, Debug)]
pub struct FastRandomHash {
    hash: SeededHash,
    b: u32,
}

impl FastRandomHash {
    /// Creates a FastRandomHash with `b` clusters from `seed`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    pub fn new(seed: u64, b: u32) -> Self {
        assert!(b >= 1, "cluster count b must be at least 1");
        FastRandomHash { hash: SeededHash::new(seed), b }
    }

    /// Builds the `t` independent functions of a C² run from a root seed.
    pub fn family(root_seed: u64, t: usize, b: u32) -> Vec<FastRandomHash> {
        cnc_similarity::hash::family(root_seed, t)
            .into_iter()
            .map(|hash| FastRandomHash { hash, b })
            .collect()
    }

    /// The number of clusters `b` of this function's configuration.
    #[inline]
    pub fn b(&self) -> u32 {
        self.b
    }

    /// The generative item hash `h(i) ∈ ⟦1, b⟧`.
    #[inline(always)]
    pub fn item_hash(&self, item: ItemId) -> u32 {
        self.hash.hash_range(item, self.b)
    }

    /// `H(u) = min_{i ∈ P_u} h(i)` (Eq. (3)); `None` for an empty profile.
    #[inline]
    pub fn user_hash(&self, profile: &[ItemId]) -> Option<u32> {
        profile.iter().map(|&i| self.item_hash(i)).min()
    }

    /// `H\η(u) = min_{i ∈ P_u, h(i) > η} h(i)` — the splitting hash that
    /// ignores item hashes at or below the split cluster's index `η`.
    /// `None` when no item hashes above `η` (such users stay in the split
    /// cluster, §II-D).
    #[inline]
    pub fn user_hash_excluding(&self, profile: &[ItemId], eta: u32) -> Option<u32> {
        profile.iter().map(|&i| self.item_hash(i)).filter(|&h| h > eta).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_similarity::Jaccard;

    #[test]
    fn item_hash_is_in_one_to_b() {
        let frh = FastRandomHash::new(1, 16);
        for item in 0..1000u32 {
            let h = frh.item_hash(item);
            assert!((1..=16).contains(&h));
        }
    }

    #[test]
    fn user_hash_is_the_min_item_hash() {
        let frh = FastRandomHash::new(2, 64);
        let profile = [3u32, 99, 1024, 5000];
        let min = profile.iter().map(|&i| frh.item_hash(i)).min().unwrap();
        assert_eq!(frh.user_hash(&profile), Some(min));
    }

    #[test]
    fn empty_profile_has_no_hash() {
        let frh = FastRandomHash::new(3, 8);
        assert_eq!(frh.user_hash(&[]), None);
    }

    #[test]
    fn shared_items_can_align_users_paper_example() {
        // §II-D: two users sharing an item have non-zero probability of the
        // same hash. With a single shared item that achieves both minima,
        // equality is guaranteed.
        let frh = FastRandomHash::new(4, 4096);
        // Find an item with a very low hash to play the role of i3.
        let shared = (0..100_000u32).min_by_key(|&i| frh.item_hash(i)).unwrap();
        let pu = [shared, 11, 22];
        let pv = [shared, 33, 44];
        assert_eq!(frh.user_hash(&pu), frh.user_hash(&pv));
    }

    #[test]
    fn excluding_hash_only_keeps_values_above_eta() {
        let frh = FastRandomHash::new(5, 16);
        let profile: Vec<u32> = (0..200).collect();
        let full = frh.user_hash(&profile).unwrap();
        let after = frh.user_hash_excluding(&profile, full);
        if let Some(h) = after {
            assert!(h > full);
        }
        // Excluding everything yields None.
        assert_eq!(frh.user_hash_excluding(&profile, 16), None);
    }

    #[test]
    fn excluding_zero_equals_plain_hash() {
        let frh = FastRandomHash::new(6, 32);
        let profile = [7u32, 70, 700];
        assert_eq!(frh.user_hash_excluding(&profile, 0), frh.user_hash(&profile));
    }

    #[test]
    fn single_item_user_loses_hash_after_exclusion() {
        // "Users who have a single item (for whom H\η is undefined) …
        // remain in C" — the single item's hash is necessarily ≤ η when the
        // user sits in cluster η.
        let frh = FastRandomHash::new(7, 64);
        let item = [42u32];
        let eta = frh.user_hash(&item).unwrap();
        assert_eq!(frh.user_hash_excluding(&item, eta), None);
    }

    #[test]
    fn family_produces_distinct_configurations() {
        let fam = FastRandomHash::family(9, 8, 4096);
        assert_eq!(fam.len(), 8);
        let hashes: Vec<u32> = fam.iter().map(|f| f.item_hash(12345)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert!(distinct.len() > 1, "all functions hashed the item identically");
    }

    #[test]
    fn collision_probability_tracks_jaccard_theorem1_sanity() {
        // Statistical sanity check of Theorem 1 (precise bounds are
        // exercised in `theory`): for moderately similar users,
        // P[H(u1) = H(u2)] over the hash family stays near J(u1, u2).
        let pu: Vec<u32> = (0..64).collect();
        let pv: Vec<u32> = (32..96).collect(); // J = 32/96 = 1/3
        let j = Jaccard::similarity(&pu, &pv);
        let trials = 3000u64;
        let equal = (0..trials)
            .filter(|&s| {
                let frh = FastRandomHash::new(s, 4096);
                frh.user_hash(&pu) == frh.user_hash(&pv)
            })
            .count();
        let p = equal as f64 / trials as f64;
        // ℓ = 96, b = 4096 → collision slack ≈ ℓ/2b ≈ 0.012; allow noise.
        assert!((p - j).abs() < 0.05, "P = {p:.3} strays from J = {j:.3}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_b_panics() {
        FastRandomHash::new(1, 0);
    }
}
