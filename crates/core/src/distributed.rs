//! Distributed-deployment simulation (the paper's §VIII future work).
//!
//! "The general structure of Cluster-and-Conquer further makes it
//! particularly amenable to large-scale distributed deployments, in
//! particular within a map-reduce infrastructure." This module simulates
//! that deployment: clusters (the map tasks) are assigned to `W` workers
//! with the LPT heuristic (largest processing time first — the distributed
//! generalization of Step 2's largest-first queue), worker costs follow
//! Algorithm 2's similarity-count estimates, and the reduce phase's
//! communication volume is the per-cluster partial-KNN traffic of
//! Algorithm 3.
//!
//! The simulation answers the capacity-planning questions a deployment
//! would ask — parallel speed-up, load imbalance and shuffle volume — from
//! the clustering alone, without running the KNN computation.

use crate::clustering::Clustering;

/// Cost estimate of solving one cluster, in similarity computations —
/// Algorithm 2's model: brute force `|C|(|C|−1)/2` below the `ρ·k²`
/// crossover, greedy `ρ·k²·|C|/2` above.
pub fn cluster_cost(size: usize, k: usize, rho: usize) -> u64 {
    let n = size as u64;
    let brute = n * n.saturating_sub(1) / 2;
    if size < rho * k * k {
        brute
    } else {
        (rho * k * k) as u64 * n / 2
    }
}

/// A simulated assignment of clusters to workers.
#[derive(Clone, Debug)]
pub struct DeploymentPlan {
    /// `assignments[w]` = indices (into the clustering's cluster list) of
    /// the clusters mapped to worker `w`.
    pub assignments: Vec<Vec<usize>>,
    /// Estimated similarity computations per worker.
    pub worker_costs: Vec<u64>,
    /// Estimated entries (user, neighbour, sim) shipped in the reduce
    /// phase: `Σ_C |C| · k`.
    pub merge_traffic: u64,
}

impl DeploymentPlan {
    /// The bottleneck worker's cost (the map phase's makespan).
    pub fn makespan(&self) -> u64 {
        self.worker_costs.iter().copied().max().unwrap_or(0)
    }

    /// Total estimated work across all workers.
    pub fn total_cost(&self) -> u64 {
        self.worker_costs.iter().sum()
    }

    /// Estimated parallel speed-up over a single worker
    /// (`total / makespan`; ≤ the worker count).
    pub fn speedup(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == 0 {
            return 1.0;
        }
        self.total_cost() as f64 / makespan as f64
    }

    /// Load imbalance: makespan divided by the ideal per-worker share
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let ideal = self.total_cost() as f64 / self.worker_costs.len() as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        self.makespan() as f64 / ideal
    }
}

/// Plans a deployment of `clustering` over `workers` workers using LPT
/// (sort clusters by decreasing cost, assign each to the currently
/// least-loaded worker).
///
/// # Panics
/// Panics if `workers == 0`, `k == 0` or `rho == 0`.
pub fn plan_deployment(
    clustering: &Clustering,
    workers: usize,
    k: usize,
    rho: usize,
) -> DeploymentPlan {
    let sizes: Vec<usize> = clustering.clusters.iter().map(Vec::len).collect();
    plan_deployment_for(&sizes, workers, k, rho)
}

/// [`plan_deployment`] over bare cluster sizes — plan indices are
/// positions in `sizes`. This is the entry point for schedulers that plan
/// a *subset* of a clustering (the incremental engine plans only its
/// dirty clusters; `sizes[i]` is then the size of the i-th scheduled
/// cluster, and the caller maps plan indices back to global ones).
///
/// # Panics
/// Panics if `workers == 0`, `k == 0` or `rho == 0`.
pub fn plan_deployment_for(
    sizes: &[usize],
    workers: usize,
    k: usize,
    rho: usize,
) -> DeploymentPlan {
    assert!(workers > 0, "at least one worker is required");
    assert!(k > 0 && rho > 0, "k and rho must be positive");

    let mut indexed: Vec<(u64, usize)> =
        sizes.iter().enumerate().map(|(i, &size)| (cluster_cost(size, k, rho), i)).collect();
    indexed.sort_unstable_by(|a, b| b.cmp(a)); // decreasing cost, stable ids

    let mut assignments = vec![Vec::new(); workers];
    let mut worker_costs = vec![0u64; workers];
    for (cost, cluster) in indexed {
        // Least-loaded worker; ties to the lowest index for determinism.
        let w = (0..workers).min_by_key(|&w| (worker_costs[w], w)).unwrap();
        worker_costs[w] += cost;
        assignments[w].push(cluster);
    }

    let merge_traffic =
        sizes.iter().map(|&size| (size * k.min(size.saturating_sub(1))) as u64).sum();

    DeploymentPlan { assignments, worker_costs, merge_traffic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;

    fn clustering_with_sizes(sizes: &[usize]) -> Clustering {
        let mut next = 0u32;
        let clusters = sizes
            .iter()
            .map(|&s| {
                let c: Vec<u32> = (next..next + s as u32).collect();
                next += s as u32;
                c
            })
            .collect();
        Clustering { clusters, num_functions: 1, splits: 0, raw_cluster_counts: vec![sizes.len()] }
    }

    #[test]
    fn cost_model_matches_algorithm_2() {
        let (k, rho) = (30, 5);
        // Below ρ·k² = 4500: brute force.
        assert_eq!(cluster_cost(100, k, rho), 100 * 99 / 2);
        // Above: Hyrec bound ρ·k²·|C|/2.
        assert_eq!(cluster_cost(5000, k, rho), 4500u64 * 5000 / 2);
        // At the exact boundary the paper's rule (`<` not `≤`) picks the
        // greedy estimate, which exceeds brute force by n/2 — faithfully
        // reproduced here.
        assert_eq!(cluster_cost(4500, k, rho), 4500u64 * 4500 / 2);
    }

    #[test]
    fn every_cluster_is_assigned_exactly_once() {
        let clustering = clustering_with_sizes(&[50, 30, 20, 10, 5, 5, 5]);
        let plan = plan_deployment(&clustering, 3, 10, 5);
        let mut seen: Vec<usize> = plan.assignments.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_beats_naive_round_robin_on_skewed_sizes() {
        // One giant cluster plus many small ones: round-robin in submission
        // order can pair the giant with extra load; LPT isolates it.
        let clustering = clustering_with_sizes(&[10, 10, 10, 10, 10, 10, 200]);
        let plan = plan_deployment(&clustering, 2, 10, 5);
        // Round-robin by index: worker0 = {0,2,4,6}, worker1 = {1,3,5}.
        let rr_worker0: u64 = [0usize, 2, 4, 6]
            .iter()
            .map(|&i| cluster_cost(clustering.clusters[i].len(), 10, 5))
            .sum();
        assert!(
            plan.makespan() < rr_worker0,
            "LPT makespan {} not better than round-robin {}",
            plan.makespan(),
            rr_worker0
        );
    }

    #[test]
    fn makespan_bounds_hold() {
        let clustering = clustering_with_sizes(&[40, 35, 30, 25, 20, 15, 10, 5]);
        let plan = plan_deployment(&clustering, 4, 10, 5);
        let total = plan.total_cost();
        assert!(plan.makespan() as f64 >= total as f64 / 4.0 - 1e-9);
        assert!(plan.makespan() <= total);
        assert!(plan.speedup() <= 4.0 + 1e-9);
        assert!(plan.imbalance() >= 1.0 - 1e-9);
    }

    #[test]
    fn more_workers_do_not_increase_makespan() {
        let clustering = clustering_with_sizes(&[64, 32, 32, 16, 16, 16, 8, 8, 8, 8]);
        let m2 = plan_deployment(&clustering, 2, 10, 5).makespan();
        let m4 = plan_deployment(&clustering, 4, 10, 5).makespan();
        let m8 = plan_deployment(&clustering, 8, 10, 5).makespan();
        assert!(m4 <= m2);
        assert!(m8 <= m4);
    }

    #[test]
    fn merge_traffic_counts_partial_knn_entries() {
        let clustering = clustering_with_sizes(&[10, 4]);
        let plan = plan_deployment(&clustering, 2, 3, 5);
        // Cluster of 10 ships 10·3 entries; cluster of 4 ships 4·3.
        assert_eq!(plan.merge_traffic, 30 + 12);
    }

    #[test]
    fn merge_traffic_caps_at_cluster_degree() {
        // A cluster of 2 with k = 30 can only produce 1 neighbour per user.
        let clustering = clustering_with_sizes(&[2]);
        let plan = plan_deployment(&clustering, 1, 30, 5);
        assert_eq!(plan.merge_traffic, 2);
    }

    #[test]
    fn empty_clustering_yields_trivial_plan() {
        let clustering = clustering_with_sizes(&[]);
        let plan = plan_deployment(&clustering, 3, 10, 5);
        assert_eq!(plan.makespan(), 0);
        assert_eq!(plan.speedup(), 1.0);
        assert_eq!(plan.merge_traffic, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        plan_deployment(&clustering_with_sizes(&[1]), 0, 10, 5);
    }
}
