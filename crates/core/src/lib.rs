//! Cluster-and-Conquer (C²): the paper's primary contribution.
//!
//! C² builds an approximate KNN graph in three steps (§II-C):
//!
//! 1. **Clustering** ([`clustering`]): every user is hashed by `t`
//!    [`frh::FastRandomHash`] functions into `t × b` clusters; clusters
//!    larger than `N` are recursively split by re-hashing on the next item
//!    (§II-D);
//! 2. **Scheduling + local KNN** ([`pipeline`]): clusters are processed
//!    largest-first by a thread pool; each cluster is solved independently
//!    with brute force when `|C| < ρ·k²` and greedy Hyrec otherwise
//!    (Algorithm 2);
//! 3. **Merging** ([`pipeline`]): partial neighbourhoods are merged into
//!    each user's global bounded heap, reusing the already-computed
//!    similarity values (Algorithm 3).
//!
//! [`theory`] validates the analytical properties (Theorems 1 and 2)
//! empirically, and [`minhash_variant`] provides the C²/MinHash ablation of
//! Table IV.

pub mod build_plan;
pub mod clustering;
pub mod config;
pub mod distributed;
pub mod frh;
pub mod minhash_variant;
pub mod pipeline;
pub mod theory;

pub use build_plan::{BuildPlan, ClusterCache, ClusterSolution, RebuildStats};
pub use clustering::{cluster_dataset, Clustering};
pub use config::{C2Config, ClusteringScheme};
pub use distributed::{plan_deployment, DeploymentPlan};
pub use frh::FastRandomHash;
pub use pipeline::{C2Result, C2Stats, ClusterAndConquer, IncrementalResult, PhaseTimings};
