//! Configuration of a Cluster-and-Conquer run (paper §IV-C defaults).

use cnc_similarity::SimilarityBackend;

/// Which clustering scheme Step 1 uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusteringScheme {
    /// FastRandomHash with recursive splitting — the paper's contribution.
    FastRandomHash,
    /// `t` MinHash functions, one cluster per argmin item, **no** splitting
    /// — the Table IV ablation ("C²/MinHash").
    MinHash,
}

/// All knobs of a C² run. `Default` reproduces the paper's §IV-C setup.
/// Equality is field-wise — the distributed wire codec round-trips a
/// config bit-exactly and asserts it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C2Config {
    /// Neighbourhood size `k` (paper: 30).
    pub k: usize,
    /// Clusters per hash function `b` (paper: 4096).
    pub b: u32,
    /// Number of hash functions `t` (paper: 8; 15 for DBLP and Gowalla).
    pub t: usize,
    /// Maximum cluster size `N` before recursive splitting (paper: 2000;
    /// 4000 for MovieLens20M). `usize::MAX` disables splitting.
    pub max_cluster_size: usize,
    /// Hyrec iteration bound ρ inside clusters (paper: 5); also sets the
    /// brute-force/Hyrec switch at `|C| < ρ·k²` (Algorithm 2).
    pub rho: usize,
    /// Convergence threshold δ of the greedy local solver (paper: 0.001).
    pub delta: f64,
    /// Similarity backend (paper: 1024-bit GoldFinger; Table V ablates Raw).
    pub backend: SimilarityBackend,
    /// Step 1 scheme (Table IV ablates MinHash).
    pub scheme: ClusteringScheme,
    /// Worker threads; 0 = all available hardware threads.
    pub threads: usize,
    /// Root seed for hash functions and local random inits.
    pub seed: u64,
}

impl Default for C2Config {
    fn default() -> Self {
        C2Config {
            k: 30,
            b: 4096,
            t: 8,
            max_cluster_size: 2000,
            rho: 5,
            delta: 0.001,
            backend: SimilarityBackend::default(),
            scheme: ClusteringScheme::FastRandomHash,
            threads: 0,
            seed: 0xC2C2,
        }
    }
}

impl C2Config {
    /// The Algorithm 2 switch: clusters smaller than `ρ·k²` are solved by
    /// brute force, larger ones by Hyrec.
    pub fn brute_force_threshold(&self) -> usize {
        self.rho * self.k * self.k
    }

    /// Checks parameter sanity; called by the pipeline before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be positive".into());
        }
        if self.b == 0 {
            return Err("b must be positive".into());
        }
        if self.t == 0 {
            return Err("t must be positive".into());
        }
        if self.rho == 0 {
            return Err("rho must be positive".into());
        }
        if self.max_cluster_size < 2 {
            return Err("max_cluster_size must allow at least one pair".into());
        }
        if !(self.delta.is_finite() && self.delta >= 0.0) {
            return Err("delta must be finite and non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_4c() {
        let c = C2Config::default();
        assert_eq!(c.k, 30);
        assert_eq!(c.b, 4096);
        assert_eq!(c.t, 8);
        assert_eq!(c.max_cluster_size, 2000);
        assert_eq!(c.rho, 5);
        assert_eq!(c.scheme, ClusteringScheme::FastRandomHash);
        // ρ·k² = 4500 > N = 2000, so brute force is preferred by default
        // ("in order to privilege Brute Force", §IV-C).
        assert!(c.brute_force_threshold() > c.max_cluster_size);
        assert_eq!(c.brute_force_threshold(), 4500);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_parameters() {
        for (field, cfg) in [
            ("k", C2Config { k: 0, ..Default::default() }),
            ("b", C2Config { b: 0, ..Default::default() }),
            ("t", C2Config { t: 0, ..Default::default() }),
            ("rho", C2Config { rho: 0, ..Default::default() }),
            ("N", C2Config { max_cluster_size: 1, ..Default::default() }),
            ("delta", C2Config { delta: f64::NAN, ..Default::default() }),
        ] {
            assert!(cfg.validate().is_err(), "{field} should fail validation");
        }
    }
}
