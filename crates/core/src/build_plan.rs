//! The staged, dirty-tracking construction path: [`BuildPlan`] and
//! [`ClusterCache`].
//!
//! C²'s structural insight is that the KNN graph decomposes into
//! *independent* cluster solves (Algorithm 2: "The partial KNN graph of
//! each cluster … does not need to be synchronized with any other
//! computation"). A consequence the monolithic `build` entry points threw
//! away: when the dataset changes only a little between two builds — the
//! serving loop's situation, where an epoch absorbs a batch of streaming
//! inserts — most clusters are *byte-for-byte the same input* as last
//! time, so re-solving them re-derives partial lists that are already
//! known. This module makes the construction path explicit enough to skip
//! that work:
//!
//! 1. **Assign** ([`BuildPlan::assign`]): Step 1 exactly as
//!    [`ClusterAndConquer::build`] runs it — deterministic clustering via
//!    `cluster_step`, per-cluster solver seeds via `job_seed`.
//! 2. **Fingerprint** ([`BuildPlan::fingerprint`]): each cluster's
//!    membership is content-hashed — FNV-1a over the *sorted* member ids
//!    interleaved with per-user item-set digests (the snapshot checksum
//!    idiom of `cnc-serve`). The hash changes iff the membership or any
//!    member's item set changes, and is invariant under member reordering.
//! 3. **Partition** ([`BuildPlan::partition`]): clusters whose hash (and
//!    verified membership, and — for seed-sensitive greedy solves — solver
//!    seed) matches a [`ClusterCache`] entry are *reused*; the rest are
//!    *dirty* and must be solved.
//! 4. **Merge**: cached and fresh [`ClusterSolution`]s are merged into the
//!    graph by the executor (the in-process pipeline's `PriorityPool`, or
//!    `cnc-runtime`'s sharded reducers) — Algorithm 3's bounded-heap merge
//!    is order-independent, so the mixture is **bit-identical** to a
//!    from-scratch build (locked by `tests/incremental.rs`).
//!
//! Correctness is never entrusted to the hash alone: a lookup additionally
//! verifies the stored member list against the cluster's, so a 64-bit
//! collision between *different memberships* cannot smuggle a stale
//! solution into the graph. Item-set drift within an unchanged membership
//! is covered by the digests folded into the hash (collision probability
//! 2⁻⁶⁴ per cluster) — and never arises in the serving loop, where
//! existing profiles are immutable and inserted users are force-dirtied.

use crate::config::C2Config;
use crate::pipeline::ClusterAndConquer;
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::NeighborList;
use cnc_similarity::SimilarityBackend;
use cnc_telemetry::Telemetry;
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the workspace's shared integrity-hash
/// primitive (cluster content hashes here, snapshot section checksums in
/// `cnc-serve`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_bytes(FNV_OFFSET, bytes)
}

#[inline]
fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds a little-endian `u64` into a running FNV-1a hash.
#[inline]
fn fnv1a_u64(hash: u64, value: u64) -> u64 {
    fnv1a_bytes(hash, &value.to_le_bytes())
}

/// FNV-1a digest of one user's item set (profiles are sorted, so the
/// digest is canonical). Changes iff the item set changes.
pub fn profile_digest(profile: &[ItemId]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &item in profile {
        hash = fnv1a_u64(hash, item as u64);
    }
    hash
}

/// Content hash of one cluster: FNV-1a over `(member id, item-set digest)`
/// pairs in *sorted member order*, prefixed with the member count.
///
/// Invariant under member reordering; changes (w.h.p.) iff the membership
/// or any member's item set changes. `digests[u]` must hold
/// [`profile_digest`] of user `u`'s profile.
pub fn cluster_hash(users: &[UserId], digests: &[u64]) -> u64 {
    let mut sorted: Vec<UserId> = users.to_vec();
    sorted.sort_unstable();
    let mut hash = fnv1a_u64(FNV_OFFSET, sorted.len() as u64);
    for &u in &sorted {
        hash = fnv1a_u64(hash, u as u64);
        hash = fnv1a_u64(hash, digests[u as usize]);
    }
    hash
}

/// A token identifying every configuration field that can change what a
/// cluster solve computes (backend, bounds, seeds, clustering knobs).
/// A [`ClusterCache`] built under one token is unusable under another —
/// the lookup path treats it as empty.
pub fn config_token(config: &C2Config) -> u64 {
    let mut hash = FNV_OFFSET;
    for field in [
        config.k as u64,
        config.b as u64,
        config.t as u64,
        config.max_cluster_size as u64,
        config.rho as u64,
        config.delta.to_bits(),
        config.seed,
        match config.scheme {
            crate::config::ClusteringScheme::FastRandomHash => 0,
            crate::config::ClusteringScheme::MinHash => 1,
        },
        match config.backend {
            SimilarityBackend::Raw => 0,
            SimilarityBackend::GoldFinger { bits, seed } => {
                0x60_1DF1 ^ fnv1a_u64(fnv1a_u64(FNV_OFFSET, bits as u64), seed)
            }
        },
    ] {
        hash = fnv1a_u64(hash, field);
    }
    hash
}

/// One solved cluster, keyed for reuse across builds: the content hash,
/// the exact member list (in solve order, positionally aligned with
/// `lists`), the greedy seed the solve ran under, the partial neighbour
/// lists it produced, and the similarity computations it spent.
#[derive(Clone, Debug)]
pub struct ClusterSolution {
    /// The cluster's [`cluster_hash`] at solve time.
    pub hash: u64,
    /// Members, in the order the solver saw them.
    pub users: Vec<UserId>,
    /// The [`ClusterAndConquer::job_seed`] the solve ran under.
    pub seed: u64,
    /// One bounded partial list per member, aligned with `users`.
    pub lists: Vec<NeighborList>,
    /// Similarity computations this solve performed.
    pub comparisons: u64,
}

/// Per-cluster partial solutions from a prior build, keyed by content
/// hash. Identical memberships can recur across the `t` hash-function
/// configurations, so each hash maps to a *list* of solutions (typically
/// of length 1, or one per distinct greedy seed).
#[derive(Clone, Debug, Default)]
pub struct ClusterCache {
    config_token: u64,
    entries: HashMap<u64, Vec<ClusterSolution>>,
    len: usize,
}

impl ClusterCache {
    /// An empty cache bound to `config` (lookups from a build under a
    /// different configuration miss wholesale).
    pub fn new(config: &C2Config) -> Self {
        ClusterCache { config_token: config_token(config), entries: HashMap::new(), len: 0 }
    }

    /// The configuration token the cache was built under.
    pub fn config_token(&self) -> u64 {
        self.config_token
    }

    /// Number of cached cluster solutions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total comparisons the cached solves spent when they ran.
    pub fn total_comparisons(&self) -> u64 {
        self.entries.values().flatten().map(|s| s.comparisons).sum()
    }

    /// Recovery-path accounting check: a cache assembled by a build that
    /// retried, re-queued or replayed failed cluster solves must be
    /// indistinguishable from a fault-free build's — every scheduled
    /// cluster stored exactly once, the reuse split summing to the total,
    /// and each solution's partial lists aligned with its member list. A
    /// violation means a recovery path double-counted or dropped a solve;
    /// chaos tests call this after every surviving build.
    pub fn check_accounting(&self, rebuild: &RebuildStats) -> Result<(), String> {
        let stored: usize = self.entries.values().map(|v| v.len()).sum();
        if stored != self.len {
            return Err(format!("cache stores {stored} solutions but counts {}", self.len));
        }
        if rebuild.clusters_total != self.len {
            return Err(format!(
                "rebuild covers {} clusters but the cache holds {}",
                rebuild.clusters_total, self.len
            ));
        }
        if rebuild.clusters_resolved + rebuild.clusters_reused() != rebuild.clusters_total {
            return Err(format!(
                "{} resolved + {} reused != {} total",
                rebuild.clusters_resolved,
                rebuild.clusters_reused(),
                rebuild.clusters_total
            ));
        }
        for solution in self.entries.values().flatten() {
            if solution.lists.len() != solution.users.len() {
                return Err(format!(
                    "cluster {:016x} stores {} lists for {} members",
                    solution.hash,
                    solution.lists.len(),
                    solution.users.len()
                ));
            }
        }
        Ok(())
    }

    /// Records one solved cluster.
    pub fn insert(&mut self, solution: ClusterSolution) {
        self.entries.entry(solution.hash).or_default().push(solution);
        self.len += 1;
    }

    /// Iterates over every cached solution (unspecified order) — the
    /// snapshot writer's view of the cache.
    pub fn solutions(&self) -> impl Iterator<Item = &ClusterSolution> {
        self.entries.values().flatten()
    }

    /// Rebuilds a cache from a persisted token and solution set (the
    /// snapshot loader's inverse of [`ClusterCache::solutions`]). The
    /// token is stored verbatim, so a cache persisted under one
    /// configuration still misses wholesale under any other.
    pub fn from_parts(
        config_token: u64,
        solutions: impl IntoIterator<Item = ClusterSolution>,
    ) -> Self {
        let mut cache = ClusterCache { config_token, entries: HashMap::new(), len: 0 };
        for solution in solutions {
            cache.insert(solution);
        }
        cache
    }

    /// Assembles the next build's cache — reused solutions carried over,
    /// fresh ones absorbed — together with the build's [`RebuildStats`]:
    /// the stage-4 bookkeeping shared by the in-process pipeline and the
    /// sharded engine (one implementation, so the two executors cannot
    /// drift).
    pub fn assemble(
        config: &C2Config,
        reused: &[(usize, &ClusterSolution)],
        fresh: Vec<ClusterSolution>,
        rebuild_ms: f64,
    ) -> (ClusterCache, RebuildStats) {
        let mut cache = ClusterCache::new(config);
        for (_, solution) in reused {
            cache.insert((*solution).clone());
        }
        let resolved = fresh.len();
        for solution in fresh {
            cache.insert(solution);
        }
        let rebuild = RebuildStats::new(cache.len(), resolved, rebuild_ms);
        (cache, rebuild)
    }

    /// Looks up a reusable solution for a cluster with this `hash`, exact
    /// member list and solver seed. `seed_sensitive` is false for clusters
    /// the Algorithm-2 dispatch solves by brute force (the seed is unused
    /// there, so any seed's solution is bit-identical); greedy solves must
    /// match the seed exactly. Membership is verified entry-for-entry —
    /// the hash narrows the search, equality decides it.
    pub fn lookup(
        &self,
        hash: u64,
        users: &[UserId],
        seed: u64,
        seed_sensitive: bool,
    ) -> Option<&ClusterSolution> {
        self.entries
            .get(&hash)?
            .iter()
            .find(|s| s.users == users && (!seed_sensitive || s.seed == seed))
    }
}

/// How one rebuild split between reused and re-solved clusters — the
/// figure `cnc-serve` publishes per epoch and the serve bench records.
#[derive(Clone, Copy, Debug, Default)]
pub struct RebuildStats {
    /// Clusters in the build's clustering.
    pub clusters_total: usize,
    /// Clusters that had to be re-solved (dirty).
    pub clusters_resolved: usize,
    /// `1 - resolved/total`: the fraction of cluster solves skipped.
    pub reuse_ratio: f64,
    /// Wall-clock of the rebuild, milliseconds.
    pub rebuild_ms: f64,
}

impl RebuildStats {
    /// Stats for a build that resolved `resolved` of `total` clusters in
    /// `rebuild_ms` milliseconds.
    pub fn new(total: usize, resolved: usize, rebuild_ms: f64) -> Self {
        let reuse_ratio = if total == 0 { 0.0 } else { 1.0 - resolved as f64 / total as f64 };
        RebuildStats { clusters_total: total, clusters_resolved: resolved, reuse_ratio, rebuild_ms }
    }

    /// Clusters whose cached solution was reused.
    pub fn clusters_reused(&self) -> usize {
        self.clusters_total - self.clusters_resolved
    }
}

/// The partition stage 3 computes: which clusters must be solved, and
/// which cached solutions stand in for the rest.
pub struct PlanPartition<'a> {
    /// Indices (into the plan's cluster list) that must be re-solved.
    pub dirty: Vec<usize>,
    /// `(cluster index, cached solution)` pairs for every reused cluster.
    pub reused: Vec<(usize, &'a ClusterSolution)>,
}

/// The staged construction plan (module docs): Step-1 assignment plus the
/// per-cluster content hashes and solver seeds an incremental executor
/// needs to schedule only dirty clusters.
pub struct BuildPlan {
    config: C2Config,
    clusters: Vec<Vec<UserId>>,
    splits: usize,
    hashes: Vec<u64>,
    seeds: Vec<u64>,
    threshold: usize,
}

impl BuildPlan {
    /// **Stage 1** — assigns users to clusters, deterministically, exactly
    /// as [`ClusterAndConquer::build`] does (via `cluster_step`), and
    /// derives each cluster's solver seed (via `job_seed`).
    pub fn assign(config: &C2Config, dataset: &Dataset) -> BuildPlan {
        let mut span = Telemetry::global().span("build.assign");
        let clustering = ClusterAndConquer::new(*config).cluster_step(dataset);
        span.attr("clusters", clustering.clusters.len() as u64);
        span.attr("splits", clustering.splits as u64);
        let seeds = (0..clustering.clusters.len())
            .map(|index| ClusterAndConquer::job_seed(config, index))
            .collect();
        BuildPlan {
            config: *config,
            clusters: clustering.clusters,
            splits: clustering.splits,
            hashes: Vec::new(),
            seeds,
            threshold: config.brute_force_threshold(),
        }
    }

    /// **Stage 2** — content-hashes every cluster's membership. Per-user
    /// item-set digests are computed once and shared across the `t`
    /// configurations a user appears in. Idempotent.
    pub fn fingerprint(&mut self, dataset: &Dataset) {
        if self.hashes.len() == self.clusters.len() {
            return;
        }
        let mut span = Telemetry::global().span("build.fingerprint");
        let digests: Vec<u64> =
            dataset.iter().map(|(_, profile)| profile_digest(profile)).collect();
        self.hashes = self.clusters.iter().map(|users| cluster_hash(users, &digests)).collect();
        span.attr("clusters", self.hashes.len() as u64);
    }

    /// **Stage 3** — splits the clusters into dirty (must solve) and
    /// reused (cached solution stands in). Users in `force_dirty` mark
    /// their clusters dirty regardless of the hash — the serving layer
    /// passes the ids `DynamicIndex` absorbed since the last epoch, making
    /// "exactly the touched clusters" dirty even if a cache entry were to
    /// collide. A cache built under a different configuration token is
    /// treated as empty.
    ///
    /// # Panics
    /// Panics if [`BuildPlan::fingerprint`] has not run.
    pub fn partition<'a>(
        &self,
        cache: &'a ClusterCache,
        force_dirty: &[UserId],
    ) -> PlanPartition<'a> {
        assert_eq!(
            self.hashes.len(),
            self.clusters.len(),
            "fingerprint() must run before partition()"
        );
        let usable = cache.config_token() == config_token(&self.config);
        let max_forced = force_dirty.iter().copied().max().map_or(0, |u| u as usize + 1);
        let mut forced = vec![false; max_forced];
        for &u in force_dirty {
            forced[u as usize] = true;
        }
        let mut span = Telemetry::global().span("build.partition");
        let mut dirty = Vec::new();
        let mut reused = Vec::new();
        for (index, users) in self.clusters.iter().enumerate() {
            let touched = users.iter().any(|&u| (u as usize) < max_forced && forced[u as usize]);
            let hit = (usable && !touched)
                .then(|| {
                    cache.lookup(
                        self.hashes[index],
                        users,
                        self.seeds[index],
                        self.seed_sensitive(index),
                    )
                })
                .flatten();
            match hit {
                Some(solution) => reused.push((index, solution)),
                None => dirty.push(index),
            }
        }
        span.attr("dirty", dirty.len() as u64);
        span.attr("reused", reused.len() as u64);
        PlanPartition { dirty, reused }
    }

    /// The configuration the plan was assigned under.
    pub fn config(&self) -> &C2Config {
        &self.config
    }

    /// The clusters, in Step-1 emission order (solver-visible order).
    pub fn clusters(&self) -> &[Vec<UserId>] {
        &self.clusters
    }

    /// Recursive splits Step 1 performed.
    pub fn splits(&self) -> usize {
        self.splits
    }

    /// Per-cluster content hashes (empty until [`BuildPlan::fingerprint`]).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// The greedy solver seed of cluster `index`.
    pub fn seed(&self, index: usize) -> u64 {
        self.seeds[index]
    }

    /// True if cluster `index`'s solve depends on its seed — the
    /// Algorithm-2 dispatch sends it to the greedy solver rather than
    /// brute force. (Conservative: tiny greedy clusters that degenerate to
    /// brute force still count as sensitive, costing only reuse, never
    /// correctness.)
    pub fn seed_sensitive(&self, index: usize) -> bool {
        self.clusters[index].len() >= self.threshold
    }

    /// The solution a *fresh* solve of cluster `index` would be cached
    /// under, given the lists and comparison count the solver produced.
    pub fn solution(
        &self,
        index: usize,
        lists: Vec<NeighborList>,
        comparisons: u64,
    ) -> ClusterSolution {
        ClusterSolution {
            hash: self.hashes[index],
            users: self.clusters[index].clone(),
            seed: self.seeds[index],
            lists,
            comparisons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;

    fn dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(303);
        cfg.num_users = 200;
        cfg.num_items = 150;
        cfg.generate()
    }

    fn digests(ds: &Dataset) -> Vec<u64> {
        ds.iter().map(|(_, p)| profile_digest(p)).collect()
    }

    fn config() -> C2Config {
        C2Config { k: 6, b: 32, t: 2, threads: 1, ..C2Config::default() }
    }

    #[test]
    fn cluster_hash_is_order_invariant() {
        let ds = dataset();
        let d = digests(&ds);
        let a = cluster_hash(&[3, 9, 41, 7], &d);
        let b = cluster_hash(&[41, 7, 3, 9], &d);
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_hash_changes_with_membership_and_items() {
        let ds = dataset();
        let d = digests(&ds);
        let base = cluster_hash(&[1, 2, 3], &d);
        assert_ne!(base, cluster_hash(&[1, 2], &d), "dropped member");
        assert_ne!(base, cluster_hash(&[1, 2, 4], &d), "swapped member");
        // Same members, one changed item set.
        let mut d2 = d.clone();
        d2[2] = d2[2].wrapping_add(1);
        assert_ne!(base, cluster_hash(&[1, 2, 3], &d2), "changed item set");
    }

    #[test]
    fn profile_digest_tracks_the_item_set() {
        assert_eq!(profile_digest(&[1, 2, 3]), profile_digest(&[1, 2, 3]));
        assert_ne!(profile_digest(&[1, 2, 3]), profile_digest(&[1, 2]));
        assert_ne!(profile_digest(&[1, 2, 3]), profile_digest(&[1, 2, 4]));
        assert_ne!(profile_digest(&[]), profile_digest(&[0]));
    }

    #[test]
    fn config_token_separates_relevant_fields() {
        let base = config();
        assert_eq!(config_token(&base), config_token(&base));
        // Threads never change results — same token.
        assert_eq!(config_token(&base), config_token(&C2Config { threads: 4, ..base }));
        for changed in [
            C2Config { k: 7, ..base },
            C2Config { seed: base.seed + 1, ..base },
            C2Config { t: 3, ..base },
            C2Config { backend: SimilarityBackend::Raw, ..base },
        ] {
            assert_ne!(config_token(&base), config_token(&changed));
        }
    }

    #[test]
    fn cache_lookup_verifies_membership_and_seed() {
        let cfg = config();
        let mut cache = ClusterCache::new(&cfg);
        let solution = ClusterSolution {
            hash: 42,
            users: vec![1, 2, 3],
            seed: 7,
            lists: vec![NeighborList::new(3); 3],
            comparisons: 3,
        };
        cache.insert(solution);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(42, &[1, 2, 3], 7, true).is_some());
        assert!(cache.lookup(42, &[1, 2, 3], 8, true).is_none(), "seed mismatch");
        assert!(cache.lookup(42, &[1, 2, 3], 8, false).is_some(), "seed-insensitive");
        assert!(cache.lookup(42, &[1, 3, 2], 7, true).is_none(), "order mismatch");
        assert!(cache.lookup(41, &[1, 2, 3], 7, true).is_none(), "hash mismatch");
        assert_eq!(cache.total_comparisons(), 3);
    }

    #[test]
    fn plan_stages_partition_everything_dirty_on_an_empty_cache() {
        let ds = dataset();
        let cfg = config();
        let mut plan = BuildPlan::assign(&cfg, &ds);
        assert!(plan.hashes().is_empty());
        plan.fingerprint(&ds);
        assert_eq!(plan.hashes().len(), plan.clusters().len());
        let cache = ClusterCache::new(&cfg);
        let part = plan.partition(&cache, &[]);
        assert_eq!(part.dirty.len(), plan.clusters().len());
        assert!(part.reused.is_empty());
    }

    #[test]
    fn identical_rebuild_reuses_every_cluster() {
        let ds = dataset();
        let cfg = config();
        let mut plan = BuildPlan::assign(&cfg, &ds);
        plan.fingerprint(&ds);
        let mut cache = ClusterCache::new(&cfg);
        for index in 0..plan.clusters().len() {
            let k = cfg.k;
            let lists = vec![NeighborList::new(k); plan.clusters()[index].len()];
            cache.insert(plan.solution(index, lists, 1));
        }
        let mut replan = BuildPlan::assign(&cfg, &ds);
        replan.fingerprint(&ds);
        let part = replan.partition(&cache, &[]);
        assert!(part.dirty.is_empty(), "{} clusters unexpectedly dirty", part.dirty.len());
        assert_eq!(part.reused.len(), replan.clusters().len());

        // Forcing a user dirty overrides the cache for its clusters.
        let victim = replan.clusters()[0][0];
        let forced = replan.partition(&cache, &[victim]);
        assert!(!forced.dirty.is_empty());
        assert!(forced.dirty.iter().all(|&i| replan.clusters()[i].contains(&victim)
            || !forced.reused.iter().any(|&(r, _)| r == i)));

        // A cache from another configuration is ignored wholesale.
        let other = ClusterCache::new(&C2Config { seed: cfg.seed + 1, ..cfg });
        let missed = replan.partition(&other, &[]);
        assert_eq!(missed.dirty.len(), replan.clusters().len());
    }

    #[test]
    fn rebuild_stats_ratio() {
        let stats = RebuildStats::new(10, 3, 2.5);
        assert_eq!(stats.clusters_reused(), 7);
        assert!((stats.reuse_ratio - 0.7).abs() < 1e-12);
        assert_eq!(RebuildStats::new(0, 0, 0.0).reuse_ratio, 0.0);
    }
}
