//! The coordinator: executes the §VIII deployment plan across worker
//! *processes* and merges their shuffle streams into one graph.
//!
//! Topology per build: N spawned workers (LPT cluster assignment from
//! [`plan_deployment_for`]), R reducer threads in the coordinator (one
//! per reduce shard, merging with the bounded-heap `NeighborList::merge`
//! — order-independent, so any interleaving of worker streams yields
//! the bit-identical graph), one reader thread per worker draining its
//! stream, and the main thread owning every writer (commands never race).
//!
//! Recovery is PR 8's machinery at process granularity:
//!
//! * a dead worker is a caught worker panic — its undone clusters
//!   requeue on idle survivors, the in-flight cluster pays one attempt,
//!   and [`MAX_CLUSTER_ATTEMPTS`] deaths on the same cluster escalate
//!   to a typed [`DistribError::ClusterExhausted`];
//! * with **no** survivors the coordinator itself solves the remainder
//!   inline — the orchestrator recovery lane;
//! * transport sends retry injected IO under capped backoff
//!   ([`crate::transport::send_frame`]);
//! * the result is published like the serving writer: the graph is
//!   assembled only after *every* cluster completes, and
//!   [`DistribPublisher`] keeps the last good result live across
//!   failed rebuilds — a partial merge is unrepresentable.

use crate::error::DistribError;
use crate::transport::{self, send_frame, spawn_worker, SocketDir, Transport, WorkerLink};
use crate::wire::{
    self, decode_cluster_done, decode_stats, read_frame, Assignment, WorkerWireStats, FRAME_BYE,
    FRAME_CLUSTER_DONE, FRAME_FINISH, FRAME_IDLE, FRAME_SPANS, FRAME_STATS,
};
use cnc_baselines::local::solve_cluster_partial;
use cnc_core::distributed::plan_deployment_for;
use cnc_core::{BuildPlan, C2Config, ClusterAndConquer};
use cnc_dataset::{Dataset, UserId};
use cnc_faults::{backoff, catch_injected, Faults, Site};
use cnc_graph::{KnnGraph, NeighborList};
use cnc_runtime::{partition_of, ReducePartition};
use cnc_similarity::SimilarityData;
use cnc_telemetry::{wire as telemetry_wire, Telemetry};
use std::cell::OnceCell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::process::Child;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many worker processes may die on one cluster before the build
/// fails typed — the process-level analogue of the engine's
/// per-cluster solve-attempt bound.
pub const MAX_CLUSTER_ATTEMPTS: u32 = 3;

/// Retry bound for the coordinator's inline recovery solves; outlasts
/// any injectable failure budget (span ≤ 12).
const INLINE_SOLVE_ATTEMPTS: u32 = 16;

/// Chaos hook: kill worker `worker` (SIGKILL) after it reports
/// `after_clusters` completed clusters — the kill-a-worker-mid-build
/// test drives recovery through exactly the path a crashed machine
/// would.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    /// Which worker to kill.
    pub worker: usize,
    /// After how many of its `ClusterDone` frames.
    pub after_clusters: usize,
}

/// Configuration of a distributed build.
#[derive(Clone, Debug)]
pub struct DistribConfig {
    /// Worker processes to spawn (≥ 1; 1 is the degenerate
    /// single-worker case, still a real child process).
    pub processes: usize,
    /// Reduce shards merged in the coordinator; 0 = one per process.
    pub reduce_shards: usize,
    /// Byte transport between coordinator and workers.
    pub transport: Transport,
    /// Ship `SpanRecord`s back and merge them into the coordinator's
    /// collector (one combined Chrome trace).
    pub telemetry: bool,
    /// Fault plan armed in every worker process
    /// ([`cnc_faults::FaultPlan::spec`] form).
    pub faults_spec: Option<String>,
    /// Worker binary; `None` re-execs the current executable (which
    /// must call [`crate::maybe_run_worker`] first thing in `main`).
    pub worker_program: Option<PathBuf>,
    /// Chaos hook (tests): kill a worker mid-build.
    pub kill: Option<KillSpec>,
}

impl Default for DistribConfig {
    fn default() -> Self {
        DistribConfig {
            processes: 2,
            reduce_shards: 0,
            transport: Transport::default(),
            telemetry: false,
            faults_spec: None,
            worker_program: None,
            kill: None,
        }
    }
}

impl DistribConfig {
    /// The actual reduce shard count (0 resolves to the process count).
    pub fn effective_reduce_shards(&self) -> usize {
        if self.reduce_shards == 0 {
            self.processes.max(1)
        } else {
            self.reduce_shards
        }
    }
}

/// Per-process outcome in the report.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcExit {
    /// Sent `FRAME_BYE` and exited cleanly.
    Clean,
    /// Died mid-build (killed, injected exit, stream error) — carries
    /// the reader's diagnosis.
    Dead(String),
}

/// One worker process's contribution.
#[derive(Clone, Debug)]
pub struct ProcStats {
    /// Worker ordinal.
    pub worker: usize,
    /// OS process id.
    pub pid: u32,
    /// End-of-job counters (absent for dead workers).
    pub wire: Option<WorkerWireStats>,
    /// How the process ended.
    pub exit: ProcExit,
}

/// What a distributed build measured.
#[derive(Clone, Debug)]
pub struct DistribReport {
    /// Worker processes spawned.
    pub processes: usize,
    /// Reduce shards merged in the coordinator.
    pub reduce_shards: usize,
    /// Transport used.
    pub transport: Transport,
    /// Users in the dataset.
    pub num_users: usize,
    /// Clusters in the build plan.
    pub clusters_total: usize,
    /// Worker processes that died mid-build.
    pub worker_deaths: usize,
    /// Cluster assignments requeued off dead workers.
    pub requeued_clusters: u64,
    /// Clusters the coordinator solved inline (no survivors left).
    pub recovered_inline: u64,
    /// Transport send retries, coordinator + all workers.
    pub transport_retries: u64,
    /// Faults injected across worker processes (their own registries).
    pub worker_injected: u64,
    /// Remote span records merged into the coordinator's collector.
    pub remote_spans: usize,
    /// Similarity comparisons across all fresh solves.
    pub comparisons: u64,
    /// Per-process outcomes.
    pub workers: Vec<ProcStats>,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// A completed distributed build.
#[derive(Debug)]
pub struct DistribResult {
    /// The KNN graph — bit-identical to the single-process build.
    pub graph: KnnGraph,
    /// Build measurements.
    pub report: DistribReport,
}

/// Events the per-worker reader threads feed the main loop. Records
/// themselves bypass this channel (readers route them straight to the
/// reducers); per-sender FIFO ordering guarantees every `Done` of a
/// worker is processed before its `Dead`.
enum Event {
    Done { worker: usize, cluster: u32, comparisons: u64 },
    Idle { worker: usize },
    Stats { worker: usize, stats: WorkerWireStats },
    Spans { count: usize },
    Bye { worker: usize },
    Dead { worker: usize, detail: String },
}

/// Kills and reaps every child still running when dropped, so an early
/// error return never leaks worker processes.
struct Reaper {
    children: Vec<Arc<Mutex<Child>>>,
}

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &self.children {
            let mut child = child.lock().unwrap_or_else(|p| p.into_inner());
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The distributed runtime: spawn, execute, merge.
pub struct DistribRuntime {
    config: DistribConfig,
}

impl DistribRuntime {
    /// A runtime with the given configuration.
    pub fn new(config: DistribConfig) -> DistribRuntime {
        DistribRuntime { config }
    }

    /// This runtime's configuration.
    pub fn config(&self) -> &DistribConfig {
        &self.config
    }

    /// Mutable configuration access — a publisher reconfigures between
    /// rebuilds (fleet size, transport, chaos) without losing last-good.
    pub fn config_mut(&mut self) -> &mut DistribConfig {
        &mut self.config
    }

    /// Runs one distributed build. On success the graph is complete (a
    /// partial merge is never returned); on error the caller's last
    /// good result — see [`DistribPublisher`] — stays live.
    pub fn execute(&self, dataset: &Dataset, c2: &C2Config) -> Result<DistribResult, DistribError> {
        let wall_start = Instant::now();
        let telemetry = Telemetry::global();
        let mut span = telemetry.span("distrib.build");
        let coord_retries_base = transport::transport_retries();

        let processes = self.config.processes.max(1);
        let reduce_shards = self.config.effective_reduce_shards();
        let transport_kind = self.config.transport;
        let n = dataset.num_users();
        let k = c2.k;

        let mut plan = BuildPlan::assign(c2, dataset);
        plan.fingerprint(dataset);
        let total = plan.clusters().len();
        span.attr("clusters", total as u64);
        span.attr("processes", processes as u64);

        let empty_report = |wall| DistribReport {
            processes,
            reduce_shards,
            transport: transport_kind,
            num_users: n,
            clusters_total: total,
            worker_deaths: 0,
            requeued_clusters: 0,
            recovered_inline: 0,
            transport_retries: 0,
            worker_injected: 0,
            remote_spans: 0,
            comparisons: 0,
            workers: Vec::new(),
            wall,
        };
        if total == 0 {
            return Ok(DistribResult {
                graph: KnnGraph::new(n, k),
                report: empty_report(wall_start.elapsed()),
            });
        }

        let sizes: Vec<usize> = plan.clusters().iter().map(|c| c.len()).collect();
        let deploy = plan_deployment_for(&sizes, processes, k, c2.rho);
        let partition = Arc::new(ReducePartition::new(n, reduce_shards));

        // --- Reducer threads: one per shard, merging record batches ---
        let mut shard_txs: Vec<Sender<Vec<(UserId, NeighborList)>>> =
            Vec::with_capacity(reduce_shards);
        let mut reducer_handles = Vec::with_capacity(reduce_shards);
        for r in 0..reduce_shards {
            let (tx, rx) = mpsc::channel::<Vec<(UserId, NeighborList)>>();
            shard_txs.push(tx);
            let part = Arc::clone(&partition);
            reducer_handles.push(std::thread::spawn(move || reduce_loop(r, rx, part, k)));
        }

        // --- Spawn workers, one reader thread each ---
        let program = match &self.config.worker_program {
            Some(p) => p.clone(),
            None => std::env::current_exe()
                .map_err(|source| DistribError::Spawn { worker: 0, source })?,
        };
        let sock_dir = match transport_kind {
            Transport::Socket => Some(
                SocketDir::create().map_err(|source| DistribError::Spawn { worker: 0, source })?,
            ),
            Transport::Pipe => None,
        };
        let (event_tx, event_rx) = mpsc::channel::<Event>();
        let mut writers = Vec::with_capacity(processes);
        let mut pids = Vec::with_capacity(processes);
        let mut children = Vec::with_capacity(processes);
        let mut reader_handles = Vec::with_capacity(processes);
        for w in 0..processes {
            let WorkerLink { worker, pid, child, writer, reader } =
                spawn_worker(&program, transport_kind, sock_dir.as_ref().map(SocketDir::path), w)?;
            debug_assert_eq!(worker, w);
            writers.push(writer);
            pids.push(pid);
            children.push(Arc::clone(&child));
            let events = event_tx.clone();
            let txs = shard_txs.clone();
            reader_handles.push(std::thread::spawn(move || {
                reader_loop(w, reader, child, k, reduce_shards, txs, events)
            }));
        }
        drop(event_tx);
        let reaper = Reaper { children: children.clone() };

        // --- Coordinator-side build state ---
        let mut send_seq: u64 = 0;
        let mut coord_key = move || {
            send_seq += 1;
            send_seq
        };
        let mut done = vec![false; total];
        let mut attempts = vec![0u32; total];
        let mut done_count = 0usize;
        let mut pool: VecDeque<Assignment> = VecDeque::new();
        let mut holding: Vec<VecDeque<Assignment>> = vec![VecDeque::new(); processes];
        let mut alive = vec![true; processes];
        let mut idle = vec![false; processes];
        let mut finish_sent = vec![false; processes];
        let mut terminated = vec![false; processes];
        let mut wire_stats: Vec<Option<WorkerWireStats>> = vec![None; processes];
        let mut exits: Vec<ProcExit> = vec![ProcExit::Clean; processes];
        let mut done_by = vec![0usize; processes];
        let mut kill_pending = self.config.kill;
        let mut worker_deaths = 0usize;
        let mut requeued_clusters = 0u64;
        let mut recovered_inline = 0u64;
        let mut remote_spans = 0usize;
        let mut comparisons_total = 0u64;
        let inline_sim: OnceCell<SimilarityData<'_>> = OnceCell::new();

        // Job preambles. The assignment is tracked in `holding` *before*
        // the send: if the send fails the worker is (or is about to be)
        // dead, and the Dead event requeues everything it held.
        for w in 0..processes {
            let assignments: Vec<Assignment> = deploy.assignments[w]
                .iter()
                .map(|&c| Assignment { cluster: c as u32, attempt: 0 })
                .collect();
            holding[w].extend(assignments.iter().copied());
            let payload = wire::encode_job(
                w as u32,
                processes as u32,
                reduce_shards as u32,
                self.config.telemetry,
                self.config.faults_spec.as_deref(),
                c2,
                dataset,
                &assignments,
            );
            let _ = send_frame(&mut writers[w], wire::FRAME_JOB, &payload, coord_key());
        }

        // --- Main event loop ---
        loop {
            if done_count == total {
                for w in 0..processes {
                    if alive[w] && idle[w] && !finish_sent[w] {
                        let _ = send_frame(&mut writers[w], FRAME_FINISH, &[], coord_key());
                        finish_sent[w] = true;
                    }
                }
            } else if !pool.is_empty() {
                let idle_now: Vec<usize> =
                    (0..processes).filter(|&w| alive[w] && idle[w] && !finish_sent[w]).collect();
                if !idle_now.is_empty() {
                    let share = pool.len().div_ceil(idle_now.len());
                    for w in idle_now {
                        if pool.is_empty() {
                            break;
                        }
                        let take = share.min(pool.len());
                        let batch: Vec<Assignment> = pool.drain(..take).collect();
                        let payload = wire::encode_add_clusters(&batch);
                        match send_frame(
                            &mut writers[w],
                            wire::FRAME_ADD_CLUSTERS,
                            &payload,
                            coord_key(),
                        ) {
                            Ok(()) => {
                                idle[w] = false;
                                holding[w].extend(batch);
                            }
                            Err(_) => {
                                // The worker is dying; its reader will say so.
                                for a in batch.into_iter().rev() {
                                    pool.push_front(a);
                                }
                            }
                        }
                    }
                } else if alive.iter().all(|a| !a) {
                    // --- Inline recovery lane: no survivors left ---
                    let sim = inline_sim.get_or_init(|| {
                        SimilarityData::build_parallel(c2.backend, dataset, c2.threads)
                    });
                    while let Some(Assignment { cluster, .. }) = pool.pop_front() {
                        let c = cluster as usize;
                        if done[c] {
                            continue;
                        }
                        let comparisons = solve_inline(&plan, sim, c2, c, &shard_txs)?;
                        done[c] = true;
                        done_count += 1;
                        comparisons_total += comparisons;
                        recovered_inline += 1;
                    }
                    continue;
                }
            }

            if terminated.iter().all(|&t| t) {
                if done_count == total {
                    break;
                }
                if pool.is_empty() {
                    return Err(DistribError::Protocol {
                        detail: "all workers gone with clusters unaccounted".into(),
                    });
                }
                continue; // back to the inline recovery branch
            }

            let event = event_rx.recv().map_err(|_| DistribError::Protocol {
                detail: "event channel closed with workers outstanding".into(),
            })?;
            match event {
                Event::Done { worker, cluster, comparisons } => {
                    if let Some(pos) = holding[worker].iter().position(|a| a.cluster == cluster) {
                        holding[worker].remove(pos);
                    }
                    let c = cluster as usize;
                    if c < total && !done[c] {
                        done[c] = true;
                        done_count += 1;
                        comparisons_total += comparisons;
                    }
                    done_by[worker] += 1;
                    if let Some(kill) = kill_pending {
                        if kill.worker == worker && done_by[worker] >= kill.after_clusters {
                            kill_pending = None;
                            let mut child =
                                children[worker].lock().unwrap_or_else(|p| p.into_inner());
                            let _ = child.kill();
                        }
                    }
                }
                Event::Idle { worker } => idle[worker] = true,
                Event::Stats { worker, stats } => wire_stats[worker] = Some(stats),
                Event::Spans { count } => remote_spans += count,
                Event::Bye { worker } => {
                    alive[worker] = false;
                    idle[worker] = false;
                    terminated[worker] = true;
                }
                Event::Dead { worker, detail } => {
                    if terminated[worker] {
                        continue;
                    }
                    alive[worker] = false;
                    idle[worker] = false;
                    terminated[worker] = true;
                    worker_deaths += 1;
                    exits[worker] = ProcExit::Dead(detail);
                    // The in-flight cluster (FIFO ⇒ the front) pays the
                    // attempt; everything else requeues at its old count.
                    if let Some(first) = holding[worker].pop_front() {
                        let c = first.cluster as usize;
                        attempts[c] += 1;
                        if attempts[c] >= MAX_CLUSTER_ATTEMPTS {
                            return Err(DistribError::ClusterExhausted {
                                cluster: c,
                                attempts: attempts[c],
                            });
                        }
                        requeued_clusters += 1;
                        pool.push_front(Assignment {
                            cluster: first.cluster,
                            attempt: attempts[c],
                        });
                    }
                    while let Some(rest) = holding[worker].pop_front() {
                        requeued_clusters += 1;
                        pool.push_back(Assignment {
                            cluster: rest.cluster,
                            attempt: attempts[rest.cluster as usize],
                        });
                    }
                }
            }
        }

        // --- Assembly: exactly the in-process engine's concatenation ---
        for handle in reader_handles {
            let _ = handle.join();
        }
        drop(shard_txs);
        let mut graph = KnnGraph::new(n, k);
        for (r, handle) in reducer_handles.into_iter().enumerate() {
            let lists = handle.join().map_err(|_| DistribError::Protocol {
                detail: format!("reduce shard {r} panicked"),
            })?;
            for (&user, list) in partition.owned[r].iter().zip(lists) {
                *graph.neighbors_mut(user) = list;
            }
        }
        drop(reaper); // children all exited; reap them

        let workers: Vec<ProcStats> = (0..processes)
            .map(|w| ProcStats {
                worker: w,
                pid: pids[w],
                wire: wire_stats[w],
                exit: exits[w].clone(),
            })
            .collect();
        let transport_retries = (transport::transport_retries() - coord_retries_base)
            + workers
                .iter()
                .filter_map(|p| p.wire.as_ref())
                .map(|s| s.transport_retries)
                .sum::<u64>();
        let worker_injected =
            workers.iter().filter_map(|p| p.wire.as_ref()).map(|s| s.injected).sum::<u64>();

        if telemetry.enabled() {
            telemetry.counter("cnc_distrib_worker_deaths_total", &[]).add(worker_deaths as u64);
            telemetry.counter("cnc_distrib_requeued_clusters_total", &[]).add(requeued_clusters);
            telemetry.counter("cnc_distrib_inline_recovered_total", &[]).add(recovered_inline);
        }
        span.attr("worker_deaths", worker_deaths as u64);
        span.attr("comparisons", comparisons_total);

        Ok(DistribResult {
            graph,
            report: DistribReport {
                worker_deaths,
                requeued_clusters,
                recovered_inline,
                transport_retries,
                worker_injected,
                remote_spans,
                comparisons: comparisons_total,
                workers,
                wall: wall_start.elapsed(),
                ..empty_report(Duration::ZERO)
            },
        })
    }
}

/// Solves one cluster in the coordinator (recovery lane) and routes its
/// lists to the reducers. Retries injected solve panics under backoff.
fn solve_inline(
    plan: &BuildPlan,
    sim: &SimilarityData<'_>,
    c2: &C2Config,
    cluster: usize,
    shard_txs: &[Sender<Vec<(UserId, NeighborList)>>],
) -> Result<u64, DistribError> {
    let faults = Faults::global();
    let users = &plan.clusters()[cluster];
    let job_seed = ClusterAndConquer::job_seed(c2, cluster);
    let threshold = c2.brute_force_threshold();
    let mut attempt = 0;
    let (lists, comparisons) = loop {
        let outcome = catch_injected(AssertUnwindSafe(|| {
            faults.panic_on(Site::SolveCluster, cluster as u64);
            solve_cluster_partial(users, sim, c2.k, threshold, c2.rho, c2.delta, job_seed)
        }));
        match outcome {
            Ok(solved) => break solved,
            Err(_) => {
                attempt += 1;
                if attempt >= INLINE_SOLVE_ATTEMPTS {
                    return Err(DistribError::ClusterExhausted { cluster, attempts: attempt });
                }
                backoff(attempt, 20, 2_000);
            }
        }
    };
    let reduce_shards = shard_txs.len();
    let mut batches: Vec<Vec<(UserId, NeighborList)>> = vec![Vec::new(); reduce_shards];
    for (&user, list) in users.iter().zip(lists) {
        if !list.is_empty() {
            batches[partition_of(user, reduce_shards)].push((user, list));
        }
    }
    for (shard, batch) in batches.into_iter().enumerate() {
        if !batch.is_empty() {
            let _ = shard_txs[shard].send(batch);
        }
    }
    Telemetry::global().record_complete(
        "distrib.recover.inline",
        0,
        0,
        vec![("cluster", cluster as u64), ("comparisons", comparisons)],
    );
    Ok(comparisons)
}

/// One reduce shard: merges record batches into the shard's partition
/// with the bounded-heap merge (route- and order-independent).
fn reduce_loop(
    r: usize,
    rx: Receiver<Vec<(UserId, NeighborList)>>,
    partition: Arc<ReducePartition>,
    k: usize,
) -> Vec<NeighborList> {
    let mut lists: Vec<NeighborList> = vec![NeighborList::new(k); partition.owned[r].len()];
    while let Ok(batch) = rx.recv() {
        for (user, partial) in batch {
            lists[partition.local_index[user as usize] as usize].merge(&partial);
        }
    }
    lists
}

/// Drains one worker's stream: records go straight to the reducers,
/// everything else becomes an [`Event`]. Returns when the worker says
/// goodbye or the stream dies — reaping the child either way, so exit
/// status is part of the death diagnosis.
fn reader_loop(
    worker: usize,
    mut reader: Box<dyn std::io::Read + Send>,
    child: Arc<Mutex<Child>>,
    k: usize,
    reduce_shards: usize,
    shard_txs: Vec<Sender<Vec<(UserId, NeighborList)>>>,
    events: Sender<Event>,
) {
    let telemetry = Telemetry::global();
    let reap = |child: &Arc<Mutex<Child>>| -> String {
        let mut child = child.lock().unwrap_or_else(|p| p.into_inner());
        match child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("wait failed: {e}"),
        }
    };
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => match frame.kind {
                FRAME_CLUSTER_DONE => match decode_cluster_done(&frame.payload, k) {
                    Ok(done) if done.groups.iter().all(|(s, _)| (*s as usize) < reduce_shards) => {
                        for (shard, records) in done.groups {
                            let batch: Vec<(UserId, NeighborList)> =
                                records.into_iter().map(|(u, _hash, list)| (u, list)).collect();
                            let _ = shard_txs[shard as usize].send(batch);
                        }
                        let _ = events.send(Event::Done {
                            worker,
                            cluster: done.cluster,
                            comparisons: done.comparisons,
                        });
                    }
                    Ok(_) => {
                        let status = reap(&child);
                        let _ = events.send(Event::Dead {
                            worker,
                            detail: format!("shard out of range ({status})"),
                        });
                        return;
                    }
                    Err(e) => {
                        let status = reap(&child);
                        let _ = events.send(Event::Dead {
                            worker,
                            detail: format!("bad cluster frame: {e} ({status})"),
                        });
                        return;
                    }
                },
                FRAME_IDLE => {
                    let _ = events.send(Event::Idle { worker });
                }
                FRAME_SPANS => match telemetry_wire::read_records(&mut frame.payload.as_slice()) {
                    Ok(records) => {
                        let count =
                            telemetry_wire::merge_remote(telemetry, records, worker as u64 + 1);
                        let _ = events.send(Event::Spans { count });
                    }
                    Err(e) => {
                        let status = reap(&child);
                        let _ = events.send(Event::Dead {
                            worker,
                            detail: format!("bad spans frame: {e} ({status})"),
                        });
                        return;
                    }
                },
                FRAME_STATS => match decode_stats(&frame.payload) {
                    Ok(stats) => {
                        let _ = events.send(Event::Stats { worker, stats });
                    }
                    Err(e) => {
                        let status = reap(&child);
                        let _ = events.send(Event::Dead {
                            worker,
                            detail: format!("bad stats frame: {e} ({status})"),
                        });
                        return;
                    }
                },
                FRAME_BYE => {
                    reap(&child);
                    let _ = events.send(Event::Bye { worker });
                    return;
                }
                other => {
                    let status = reap(&child);
                    let _ = events.send(Event::Dead {
                        worker,
                        detail: format!("unexpected frame kind {other} ({status})"),
                    });
                    return;
                }
            },
            Ok(None) => {
                let status = reap(&child);
                let _ =
                    events.send(Event::Dead { worker, detail: format!("stream EOF ({status})") });
                return;
            }
            Err(e) => {
                let status = reap(&child);
                let _ = events
                    .send(Event::Dead { worker, detail: format!("stream error: {e} ({status})") });
                return;
            }
        }
    }
}

/// Publishes distributed builds like the serving writer: the last good
/// result stays live across failed rebuilds, and readers never observe
/// a partial merge (one is unrepresentable — [`DistribRuntime::execute`]
/// assembles only complete builds).
pub struct DistribPublisher {
    runtime: DistribRuntime,
    last_good: Mutex<Option<Arc<DistribResult>>>,
}

impl DistribPublisher {
    /// A publisher over the given runtime.
    pub fn new(runtime: DistribRuntime) -> DistribPublisher {
        DistribPublisher { runtime, last_good: Mutex::new(None) }
    }

    /// The runtime.
    pub fn runtime(&self) -> &DistribRuntime {
        &self.runtime
    }

    /// Mutable runtime access (see [`DistribRuntime::config_mut`]).
    pub fn runtime_mut(&mut self) -> &mut DistribRuntime {
        &mut self.runtime
    }

    /// Rebuilds; on success the new result becomes current, on failure
    /// the previous result stays live and the failure is counted
    /// (`cnc_distrib_rebuild_failures_total`).
    pub fn rebuild(
        &self,
        dataset: &Dataset,
        c2: &C2Config,
    ) -> Result<Arc<DistribResult>, DistribError> {
        match self.runtime.execute(dataset, c2) {
            Ok(result) => {
                let result = Arc::new(result);
                *self.last_good.lock().unwrap_or_else(|p| p.into_inner()) =
                    Some(Arc::clone(&result));
                Ok(result)
            }
            Err(e) => {
                let telemetry = Telemetry::global();
                if telemetry.enabled() {
                    telemetry.counter("cnc_distrib_rebuild_failures_total", &[]).add(1);
                }
                Err(e)
            }
        }
    }

    /// The last successfully published result.
    pub fn current(&self) -> Option<Arc<DistribResult>> {
        self.last_good.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_shards_default_to_process_count() {
        let mut config = DistribConfig { processes: 4, ..DistribConfig::default() };
        assert_eq!(config.effective_reduce_shards(), 4);
        config.reduce_shards = 2;
        assert_eq!(config.effective_reduce_shards(), 2);
    }

    #[test]
    fn empty_dataset_builds_without_spawning() {
        let dataset = Dataset::from_profiles(Vec::new(), 0);
        let c2 = C2Config { k: 4, b: 8, t: 2, threads: 1, ..C2Config::default() };
        let runtime = DistribRuntime::new(DistribConfig::default());
        let result = runtime.execute(&dataset, &c2).unwrap();
        assert_eq!(result.graph.num_users(), 0);
        assert_eq!(result.report.clusters_total, 0);
        assert_eq!(result.report.worker_deaths, 0);
    }

    #[test]
    fn publisher_starts_empty() {
        let publisher = DistribPublisher::new(DistribRuntime::new(DistribConfig::default()));
        assert!(publisher.current().is_none());
    }
}
