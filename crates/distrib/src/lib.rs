//! cnc-distrib: the §VIII deployment plan as real processes.
//!
//! The in-process engine proved the map/shuffle/reduce decomposition
//! over threads; this crate runs the *same* decomposition over worker
//! **processes** — the bench binary re-exec'd in `--distrib-worker`
//! mode — with the shuffle spill codec as the wire format. Map workers
//! solve their assigned clusters and ship partial neighbour lists
//! (cluster content hash on every record) to remote reduce shards; the
//! coordinator merges the partitions and publishes like the serving
//! writer. Because the codec is lossless (raw `f32` bits) and the
//! bounded-heap merge is order-independent, the distributed graph is
//! **bit-identical** to [`cnc_core::ClusterAndConquer::build`] —
//! `tests/distrib.rs` pins that over processes × shards × transports,
//! including with a worker killed mid-build.
//!
//! The single-process `Runtime` is the degenerate case: one process,
//! one shard, no wire.
//!
//! # Joining a build
//!
//! Any binary that a coordinator may use as a worker calls
//! [`maybe_run_worker`] first thing in `main`, before touching stdout:
//!
//! ```no_run
//! // first line of main(), before touching stdout:
//! cnc_distrib::maybe_run_worker(); // never returns in worker mode
//! ```

pub mod coordinator;
pub mod error;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{
    DistribConfig, DistribPublisher, DistribReport, DistribResult, DistribRuntime, KillSpec,
    ProcExit, ProcStats, MAX_CLUSTER_ATTEMPTS,
};
pub use error::DistribError;
pub use transport::Transport;
pub use worker::{maybe_run_worker, run_worker, MAX_SOLVE_ATTEMPTS};
