//! The coordinator↔worker frame protocol.
//!
//! Every message is one *frame*: `[kind: u8][len: u32 LE][payload]`.
//! Neighbour-list payloads inside `ClusterDone` frames reuse the shuffle
//! spill codec verbatim ([`write_record`]/[`read_record`]: 16-byte
//! header carrying the source cluster's content hash, 8 bytes per
//! neighbour, raw `f32` bits) — the spill format *is* the wire format,
//! so a distributed merge is bit-identical to a spilled local one by
//! construction.
//!
//! Frames are the unit of atomicity: a worker that dies mid-frame
//! leaves a truncated stream, the coordinator's reader fails the decode
//! and treats the worker as dead, and none of the partial frame's
//! records are merged. Completed frames already buffered in the pipe
//! still drain after the death, so a cluster is merged exactly once or
//! not at all.

use cnc_core::C2Config;
use cnc_core::ClusteringScheme;
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::NeighborList;
use cnc_runtime::shuffle::{read_record, write_record};
use cnc_similarity::SimilarityBackend;
use std::io::{self, Read};

/// Bumped on any incompatible change; both ends verify it.
pub const PROTOCOL_VERSION: u32 = 1;

/// Coordinator → worker: the job preamble (config + dataset + initial
/// cluster assignment).
pub const FRAME_JOB: u8 = 1;
/// Coordinator → worker: more clusters (requeued from a dead peer).
pub const FRAME_ADD_CLUSTERS: u8 = 2;
/// Coordinator → worker: drain and exit cleanly.
pub const FRAME_FINISH: u8 = 3;
/// Worker → coordinator: one solved cluster's routed partial lists.
pub const FRAME_CLUSTER_DONE: u8 = 10;
/// Worker → coordinator: queue drained, awaiting a command.
pub const FRAME_IDLE: u8 = 11;
/// Worker → coordinator: buffered `SpanRecord`s (telemetry on).
pub const FRAME_SPANS: u8 = 12;
/// Worker → coordinator: end-of-job counters.
pub const FRAME_STATS: u8 = 13;
/// Worker → coordinator: clean shutdown marker.
pub const FRAME_BYE: u8 = 14;

/// Decoder guard: larger payloads are corruption, not data.
const MAX_PAYLOAD: u32 = 1 << 30;

/// One decoded frame.
#[derive(Debug)]
pub struct Frame {
    /// `FRAME_*` kind tag.
    pub kind: u8,
    /// Raw payload (kind-specific encoding).
    pub payload: Vec<u8>,
}

/// Reads one frame. `Ok(None)` on clean EOF *before* the first header
/// byte; any mid-frame truncation is an error.
pub fn read_frame<R: Read>(input: &mut R) -> io::Result<Option<Frame>> {
    let mut first = [0u8; 1];
    match input.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let kind = first[0];
    kind_guard(kind)?;
    let mut len = [0u8; 4];
    input.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_PAYLOAD {
        return Err(corrupt("frame payload length out of range"));
    }
    let mut payload = vec![0u8; len as usize];
    input.read_exact(&mut payload)?;
    Ok(Some(Frame { kind, payload }))
}

fn kind_guard(kind: u8) -> io::Result<()> {
    match kind {
        FRAME_JOB | FRAME_ADD_CLUSTERS | FRAME_FINISH | FRAME_CLUSTER_DONE | FRAME_IDLE
        | FRAME_SPANS | FRAME_STATS | FRAME_BYE => Ok(()),
        other => Err(corrupt(&format!("unknown frame kind {other}"))),
    }
}

/// Frames a payload for the wire (header + body in one buffer, so the
/// transport writes it with a single `write_all`).
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("distrib wire: {what}"))
}

// --- primitive helpers ---------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_exact_array<R: Read, const N: usize>(input: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u8<R: Read>(input: &mut R) -> io::Result<u8> {
    Ok(read_exact_array::<R, 1>(input)?[0])
}

fn read_u32<R: Read>(input: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_exact_array(input)?))
}

fn read_u64<R: Read>(input: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_exact_array(input)?))
}

// --- C2Config codec ------------------------------------------------------

fn put_config(out: &mut Vec<u8>, c2: &C2Config) {
    put_u64(out, c2.k as u64);
    put_u32(out, c2.b);
    put_u64(out, c2.t as u64);
    put_u64(out, c2.max_cluster_size as u64);
    put_u64(out, c2.rho as u64);
    put_u64(out, c2.delta.to_bits());
    match c2.backend {
        SimilarityBackend::Raw => out.push(0),
        SimilarityBackend::GoldFinger { bits, seed } => {
            out.push(1);
            put_u64(out, bits as u64);
            put_u64(out, seed);
        }
    }
    out.push(match c2.scheme {
        ClusteringScheme::FastRandomHash => 0,
        ClusteringScheme::MinHash => 1,
    });
    put_u64(out, c2.threads as u64);
    put_u64(out, c2.seed);
}

fn read_config<R: Read>(input: &mut R) -> io::Result<C2Config> {
    let k = read_u64(input)? as usize;
    let b = read_u32(input)?;
    let t = read_u64(input)? as usize;
    let max_cluster_size = read_u64(input)? as usize;
    let rho = read_u64(input)? as usize;
    let delta = f64::from_bits(read_u64(input)?);
    let backend = match read_u8(input)? {
        0 => SimilarityBackend::Raw,
        1 => {
            let bits = read_u64(input)? as usize;
            let seed = read_u64(input)?;
            SimilarityBackend::GoldFinger { bits, seed }
        }
        other => return Err(corrupt(&format!("unknown backend tag {other}"))),
    };
    let scheme = match read_u8(input)? {
        0 => ClusteringScheme::FastRandomHash,
        1 => ClusteringScheme::MinHash,
        other => return Err(corrupt(&format!("unknown scheme tag {other}"))),
    };
    let threads = read_u64(input)? as usize;
    let seed = read_u64(input)?;
    Ok(C2Config { k, b, t, max_cluster_size, rho, delta, backend, scheme, threads, seed })
}

// --- Dataset codec -------------------------------------------------------

fn put_dataset(out: &mut Vec<u8>, dataset: &Dataset) {
    put_u32(out, dataset.num_users() as u32);
    put_u32(out, dataset.num_items() as u32);
    for user in 0..dataset.num_users() as UserId {
        let profile = dataset.profile(user);
        put_u32(out, profile.len() as u32);
        for &item in profile {
            put_u32(out, item);
        }
    }
}

fn read_dataset<R: Read>(input: &mut R) -> io::Result<Dataset> {
    let num_users = read_u32(input)? as usize;
    let num_items = read_u32(input)?;
    let mut profiles: Vec<Vec<ItemId>> = Vec::with_capacity(num_users);
    for _ in 0..num_users {
        let len = read_u32(input)? as usize;
        let mut profile = Vec::with_capacity(len);
        for _ in 0..len {
            profile.push(read_u32(input)?);
        }
        profiles.push(profile);
    }
    Ok(Dataset::from_profiles(profiles, num_items))
}

// --- Job / AddClusters ---------------------------------------------------

/// The decoded `FRAME_JOB` preamble.
#[derive(Debug)]
pub struct JobFrame {
    /// This worker's ordinal in `0..processes`.
    pub worker: u32,
    /// Total worker processes in the build.
    pub processes: u32,
    /// Reduce shard count (routing arity for [`Assignment`] outputs).
    pub reduce_shards: u32,
    /// Whether to record spans and ship them back at finish.
    pub telemetry: bool,
    /// Fault plan to arm, in [`cnc_faults::FaultPlan::spec`] form.
    pub faults_spec: Option<String>,
    /// The build configuration (decoded exactly; both sides re-derive
    /// the same `BuildPlan` from it).
    pub config: C2Config,
    /// The dataset (profiles cross the wire; the worker re-clusters).
    pub dataset: Dataset,
    /// Initial cluster assignment.
    pub assignments: Vec<Assignment>,
}

/// One assigned cluster: the *global* cluster index plus the
/// coordinator-tracked attempt number (how many processes have already
/// died on it — the `worker.exit` schedule is keyed on this, see
/// [`cnc_faults::Faults::inject_at`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Index into the build plan's cluster list.
    pub cluster: u32,
    /// Prior failed attempts at this cluster, across all processes.
    pub attempt: u32,
}

fn put_assignments(out: &mut Vec<u8>, assignments: &[Assignment]) {
    put_u32(out, assignments.len() as u32);
    for a in assignments {
        put_u32(out, a.cluster);
        put_u32(out, a.attempt);
    }
}

fn read_assignments<R: Read>(input: &mut R) -> io::Result<Vec<Assignment>> {
    let count = read_u32(input)?;
    if count > MAX_PAYLOAD / 8 {
        return Err(corrupt("assignment count out of range"));
    }
    let mut assignments = Vec::with_capacity(count.min(65_536) as usize);
    for _ in 0..count {
        let cluster = read_u32(input)?;
        let attempt = read_u32(input)?;
        assignments.push(Assignment { cluster, attempt });
    }
    Ok(assignments)
}

/// Encodes a `FRAME_JOB` payload.
#[allow(clippy::too_many_arguments)]
pub fn encode_job(
    worker: u32,
    processes: u32,
    reduce_shards: u32,
    telemetry: bool,
    faults_spec: Option<&str>,
    config: &C2Config,
    dataset: &Dataset,
    assignments: &[Assignment],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + dataset.num_users() * 8);
    put_u32(&mut out, PROTOCOL_VERSION);
    put_u32(&mut out, worker);
    put_u32(&mut out, processes);
    put_u32(&mut out, reduce_shards);
    out.push(u8::from(telemetry));
    let spec = faults_spec.unwrap_or("");
    put_u32(&mut out, spec.len() as u32);
    out.extend_from_slice(spec.as_bytes());
    put_config(&mut out, config);
    put_dataset(&mut out, dataset);
    put_assignments(&mut out, assignments);
    out
}

/// Decodes a `FRAME_JOB` payload.
pub fn decode_job(payload: &[u8]) -> io::Result<JobFrame> {
    let input = &mut &payload[..];
    let version = read_u32(input)?;
    if version != PROTOCOL_VERSION {
        return Err(corrupt(&format!(
            "protocol version mismatch: coordinator {version}, worker {PROTOCOL_VERSION}"
        )));
    }
    let worker = read_u32(input)?;
    let processes = read_u32(input)?;
    let reduce_shards = read_u32(input)?;
    let telemetry = read_u8(input)? != 0;
    let spec_len = read_u32(input)? as usize;
    let mut spec = vec![0u8; spec_len];
    input.read_exact(&mut spec)?;
    let faults_spec = if spec.is_empty() {
        None
    } else {
        Some(String::from_utf8(spec).map_err(|_| corrupt("faults spec not UTF-8"))?)
    };
    let config = read_config(input)?;
    let dataset = read_dataset(input)?;
    let assignments = read_assignments(input)?;
    Ok(JobFrame {
        worker,
        processes,
        reduce_shards,
        telemetry,
        faults_spec,
        config,
        dataset,
        assignments,
    })
}

/// Encodes a `FRAME_ADD_CLUSTERS` payload.
pub fn encode_add_clusters(assignments: &[Assignment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + assignments.len() * 8);
    put_assignments(&mut out, assignments);
    out
}

/// Decodes a `FRAME_ADD_CLUSTERS` payload.
pub fn decode_add_clusters(payload: &[u8]) -> io::Result<Vec<Assignment>> {
    read_assignments(&mut &payload[..])
}

// --- ClusterDone ---------------------------------------------------------

/// Decoded spill records bound for one reduce shard:
/// `(user, cluster content hash, partial list)` exactly as the spill
/// codec frames them.
pub type ShardRecords = Vec<(UserId, u64, NeighborList)>;

/// One solved cluster, decoded: per-shard groups of spill records.
#[derive(Debug)]
pub struct ClusterDone {
    /// Global cluster index.
    pub cluster: u32,
    /// Similarity comparisons the solve cost.
    pub comparisons: u64,
    /// `(reduce shard, records)` groups.
    pub groups: Vec<(u32, ShardRecords)>,
}

/// Encodes a `FRAME_CLUSTER_DONE` payload. `groups[shard]` holds the
/// partial lists routed to that shard (empty groups are skipped).
pub fn encode_cluster_done(
    cluster: u32,
    comparisons: u64,
    cluster_hash: u64,
    groups: &[Vec<(UserId, NeighborList)>],
) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    put_u32(&mut out, cluster);
    put_u64(&mut out, comparisons);
    let occupied = groups.iter().filter(|g| !g.is_empty()).count();
    put_u32(&mut out, occupied as u32);
    for (shard, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        put_u32(&mut out, shard as u32);
        put_u32(&mut out, group.len() as u32);
        for (user, list) in group {
            write_record(&mut out, *user, cluster_hash, list)?;
        }
    }
    Ok(out)
}

/// Decodes a `FRAME_CLUSTER_DONE` payload (`k` bounds list lengths, as
/// in spill replay).
pub fn decode_cluster_done(payload: &[u8], k: usize) -> io::Result<ClusterDone> {
    let input = &mut &payload[..];
    let cluster = read_u32(input)?;
    let comparisons = read_u64(input)?;
    let n_groups = read_u32(input)?;
    let mut groups = Vec::with_capacity(n_groups.min(1024) as usize);
    for _ in 0..n_groups {
        let shard = read_u32(input)?;
        let count = read_u32(input)?;
        let mut records = Vec::with_capacity(count.min(65_536) as usize);
        for _ in 0..count {
            match read_record(input, k)? {
                Some(record) => records.push(record),
                None => return Err(corrupt("cluster-done record truncated")),
            }
        }
        groups.push((shard, records));
    }
    Ok(ClusterDone { cluster, comparisons, groups })
}

// --- Stats ---------------------------------------------------------------

/// End-of-job counters a worker reports before `FRAME_BYE`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerWireStats {
    /// Clusters solved (and shipped) by this process.
    pub clusters: u64,
    /// Similarity comparisons across its solves.
    pub comparisons: u64,
    /// In-process solve retries (caught injected panics).
    pub solve_retries: u64,
    /// Transport send retries (injected IO absorbed by backoff).
    pub transport_retries: u64,
    /// Total faults injected in this process.
    pub injected: u64,
    /// Wall time spent solving, in nanoseconds.
    pub busy_ns: u64,
}

/// Encodes a `FRAME_STATS` payload.
pub fn encode_stats(stats: &WorkerWireStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    put_u64(&mut out, stats.clusters);
    put_u64(&mut out, stats.comparisons);
    put_u64(&mut out, stats.solve_retries);
    put_u64(&mut out, stats.transport_retries);
    put_u64(&mut out, stats.injected);
    put_u64(&mut out, stats.busy_ns);
    out
}

/// Decodes a `FRAME_STATS` payload.
pub fn decode_stats(payload: &[u8]) -> io::Result<WorkerWireStats> {
    let input = &mut &payload[..];
    Ok(WorkerWireStats {
        clusters: read_u64(input)?,
        comparisons: read_u64(input)?,
        solve_retries: read_u64(input)?,
        transport_retries: read_u64(input)?,
        injected: read_u64(input)?,
        busy_ns: read_u64(input)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        Dataset::from_profiles(
            vec![vec![0, 2, 5], vec![1, 2], vec![], vec![5, 6, 7, 8], vec![3]],
            9,
        )
    }

    fn sample_config() -> C2Config {
        C2Config {
            k: 7,
            b: 128,
            t: 3,
            max_cluster_size: 50,
            backend: SimilarityBackend::GoldFinger { bits: 256, seed: 99 },
            scheme: ClusteringScheme::MinHash,
            threads: 2,
            seed: 1234,
            ..C2Config::default()
        }
    }

    #[test]
    fn job_round_trips_config_dataset_and_assignment() {
        let dataset = sample_dataset();
        let c2 = sample_config();
        let assignments =
            vec![Assignment { cluster: 4, attempt: 0 }, Assignment { cluster: 9, attempt: 2 }];
        let payload = encode_job(
            1,
            4,
            2,
            true,
            Some("seed=5,p=0.1,sites=worker.exit"),
            &c2,
            &dataset,
            &assignments,
        );
        let job = decode_job(&payload).unwrap();
        assert_eq!(job.worker, 1);
        assert_eq!(job.processes, 4);
        assert_eq!(job.reduce_shards, 2);
        assert!(job.telemetry);
        assert_eq!(job.faults_spec.as_deref(), Some("seed=5,p=0.1,sites=worker.exit"));
        assert_eq!(job.config, c2);
        assert_eq!(job.dataset, dataset, "dataset crosses the wire bit-exactly");
        assert_eq!(job.assignments, assignments);
    }

    #[test]
    fn job_rejects_version_mismatch_and_truncation() {
        let payload = encode_job(0, 1, 1, false, None, &sample_config(), &sample_dataset(), &[]);
        let mut wrong = payload.clone();
        wrong[0] = wrong[0].wrapping_add(1);
        assert!(decode_job(&wrong).is_err());
        for cut in [3usize, 17, payload.len() - 1] {
            assert!(decode_job(&payload[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn cluster_done_round_trips_spill_records() {
        let k = 4;
        let mut a = NeighborList::new(k);
        a.insert(3, 0.25);
        a.insert(9, 0.75);
        let mut b = NeighborList::new(k);
        b.insert(1, f32::from_bits(0x3F80_0001)); // oddball bits stay exact
        let groups = vec![vec![(0u32, a.clone())], vec![], vec![(2u32, b.clone())]];
        let payload = encode_cluster_done(7, 5_000, 0xDEAD_BEEF, &groups).unwrap();
        let done = decode_cluster_done(&payload, k).unwrap();
        assert_eq!(done.cluster, 7);
        assert_eq!(done.comparisons, 5_000);
        assert_eq!(done.groups.len(), 2, "empty shard groups are skipped");
        let (shard0, records0) = &done.groups[0];
        assert_eq!(*shard0, 0);
        assert_eq!(records0[0].0, 0);
        assert_eq!(records0[0].1, 0xDEAD_BEEF, "content hash attributes the record");
        assert_eq!(records0[0].2.sorted(), a.sorted());
        let (shard2, records2) = &done.groups[1];
        assert_eq!(*shard2, 2);
        assert_eq!(records2[0].2.sorted(), b.sorted());
    }

    #[test]
    fn frames_round_trip_and_reject_junk() {
        let bytes = frame_bytes(FRAME_IDLE, &[]);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(frame.kind, FRAME_IDLE);
        assert!(frame.payload.is_empty());

        // Clean EOF before a header: None, not an error.
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        // Mid-frame truncation: error.
        let long = frame_bytes(FRAME_STATS, &encode_stats(&WorkerWireStats::default()));
        assert!(read_frame(&mut &long[..long.len() - 1]).is_err());
        // Unknown kind: error.
        let junk = frame_bytes(99, &[]);
        assert!(read_frame(&mut junk.as_slice()).is_err());
    }

    #[test]
    fn stats_and_add_clusters_round_trip() {
        let stats = WorkerWireStats {
            clusters: 3,
            comparisons: 1_000,
            solve_retries: 2,
            transport_retries: 5,
            injected: 7,
            busy_ns: 123_456,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);

        let add = vec![Assignment { cluster: 11, attempt: 1 }];
        assert_eq!(decode_add_clusters(&encode_add_clusters(&add)).unwrap(), add);
    }
}
