//! Typed failures of the distributed build — the process-level
//! analogues of [`cnc_runtime::ShuffleError`].

use std::io;

/// Why a distributed build failed. Everything here is *post-recovery*:
/// transient transport faults retry under backoff, dead workers requeue
/// on survivors, and a coordinator with no workers left solves inline —
/// these variants are what remains when those lanes are exhausted.
#[derive(Debug)]
pub enum DistribError {
    /// A worker process failed to spawn or to connect its transport.
    Spawn {
        /// The worker ordinal.
        worker: usize,
        /// The underlying error.
        source: io::Error,
    },
    /// A genuine (non-injected) stream error: the wire may hold a
    /// partial frame, so the write is not retried.
    Transport {
        /// What was being written.
        context: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A frame send failed every attempt of its backoff loop.
    TransportExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error.
        last: io::Error,
    },
    /// The peer spoke the protocol wrong (bad frame, bad sequence,
    /// version mismatch).
    Protocol {
        /// What was violated.
        detail: String,
    },
    /// One cluster killed [`crate::MAX_CLUSTER_ATTEMPTS`] worker
    /// processes — the build-level escalation of a per-cluster fault,
    /// mirroring the in-process engine's solve-attempt bound.
    ClusterExhausted {
        /// The global cluster index.
        cluster: usize,
        /// Processes that died on it.
        attempts: u32,
    },
}

impl std::fmt::Display for DistribError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistribError::Spawn { worker, source } => {
                write!(f, "worker {worker} failed to start: {source}")
            }
            DistribError::Transport { context, source } => {
                write!(f, "transport failed during {context}: {source}")
            }
            DistribError::TransportExhausted { attempts, last } => write!(
                f,
                "transport send failed after {attempts} attempts (capped backoff): {last}"
            ),
            DistribError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            DistribError::ClusterExhausted { cluster, attempts } => {
                write!(f, "cluster {cluster} killed {attempts} worker processes; giving up")
            }
        }
    }
}

impl std::error::Error for DistribError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistribError::Spawn { source, .. } | DistribError::Transport { source, .. } => {
                Some(source)
            }
            DistribError::TransportExhausted { last, .. } => Some(last),
            DistribError::Protocol { .. } | DistribError::ClusterExhausted { .. } => None,
        }
    }
}

impl From<io::Error> for DistribError {
    fn from(source: io::Error) -> DistribError {
        DistribError::Transport { context: "stream", source }
    }
}
