//! The worker side: a re-exec'd binary that joins a build.
//!
//! A worker receives the job preamble (config + dataset + initial
//! clusters), *recomputes* the build plan locally — `BuildPlan::assign`
//! and `fingerprint` are deterministic in `(config, dataset)`, so only
//! cluster **indices** ever cross the wire and the coordinator's
//! content hashes match the worker's by construction — then solves its
//! queue FIFO, routing each cluster's partial lists to reduce shards
//! with [`partition_of`] and shipping them as one atomic
//! `FRAME_CLUSTER_DONE`.
//!
//! Recovery mirrors the in-process engine's map workers: each solve
//! runs under [`catch_injected`] with up to [`MAX_SOLVE_ATTEMPTS`]
//! in-process tries; the cross-process `worker.exit` site is consulted
//! *before* the solve with the coordinator-tracked attempt number
//! ([`Faults::inject_at`]) and a drawn fault is an immediate
//! `process::exit` — no goodbye frame, the coordinator sees EOF.

use crate::error::DistribError;
use crate::transport::{self, send_frame, EXIT_INJECTED};
use crate::wire::{
    self, decode_add_clusters, decode_job, read_frame, Assignment, WorkerWireStats, FRAME_BYE,
    FRAME_CLUSTER_DONE, FRAME_FINISH, FRAME_IDLE, FRAME_SPANS, FRAME_STATS,
};
use cnc_baselines::local::solve_cluster_partial;
use cnc_core::{BuildPlan, ClusterAndConquer};
use cnc_faults::{backoff, catch_injected, silence_injected_panics, FaultPlan, Faults, Site};
use cnc_graph::NeighborList;
use cnc_runtime::partition_of;
use cnc_similarity::SimilarityData;
use cnc_telemetry::Telemetry;
use std::collections::VecDeque;
use std::io::Write;
use std::time::Instant;

/// In-process retry bound per cluster solve — the same bound as the
/// engine's map workers; exceeding it kills the process (the
/// coordinator requeues).
pub const MAX_SOLVE_ATTEMPTS: u32 = 3;

/// Checks the environment/arguments for worker mode and, if present,
/// runs the worker protocol and **never returns**. Binaries that a
/// distributed coordinator may re-exec (the bench binaries, the distrib
/// test runner) call this first thing in `main`, before touching stdout.
pub fn maybe_run_worker() {
    let flagged = std::env::args().any(|a| a == "--distrib-worker")
        || std::env::var_os(transport::ENV_WORKER).is_some();
    if flagged {
        run_worker();
    }
}

/// Runs the worker protocol over the environment-resolved connection
/// and exits the process.
pub fn run_worker() -> ! {
    let code = match worker_loop() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("cnc-distrib worker failed: {e}");
            1
        }
    };
    std::process::exit(code)
}

fn protocol(detail: impl Into<String>) -> DistribError {
    DistribError::Protocol { detail: detail.into() }
}

fn worker_loop() -> Result<(), DistribError> {
    silence_injected_panics();
    let (mut reader, mut writer) = transport::worker_connection()?;

    let frame = read_frame(&mut reader)?.ok_or_else(|| protocol("EOF before job frame"))?;
    if frame.kind != wire::FRAME_JOB {
        return Err(protocol(format!("expected job frame, got kind {}", frame.kind)));
    }
    let job = decode_job(&frame.payload)?;
    if let Some(spec) = &job.faults_spec {
        let plan = FaultPlan::parse(spec).map_err(protocol)?;
        // Keep the plan armed for the process lifetime.
        std::mem::forget(Faults::global().arm(plan));
    }
    let telemetry = Telemetry::global();
    if job.telemetry {
        telemetry.enable(true);
    }

    let c2 = job.config;
    let dataset = job.dataset;
    let mut plan = BuildPlan::assign(&c2, &dataset);
    plan.fingerprint(&dataset);
    let sim = SimilarityData::build_parallel(c2.backend, &dataset, c2.threads);
    let reduce_shards = job.reduce_shards as usize;
    let threshold = c2.brute_force_threshold();

    // Frame ordinals key the send-side fault schedule, salted by worker
    // so schedules draw independently across processes.
    let mut send_seq: u64 = (job.worker as u64 + 1) << 40;
    let faults = Faults::global();
    let mut queue: VecDeque<Assignment> = job.assignments.into();
    let mut stats = WorkerWireStats::default();
    let job_start = Instant::now();

    loop {
        let Some(Assignment { cluster, attempt }) = queue.pop_front() else {
            send_seq += 1;
            send_frame(&mut writer, FRAME_IDLE, &[], send_seq)?;
            let frame = read_frame(&mut reader)?.ok_or_else(|| protocol("EOF awaiting command"))?;
            match frame.kind {
                wire::FRAME_ADD_CLUSTERS => queue.extend(decode_add_clusters(&frame.payload)?),
                FRAME_FINISH => break,
                other => return Err(protocol(format!("unexpected command kind {other}"))),
            }
            continue;
        };

        // The cross-process death site: the coordinator owns the attempt
        // counter, so a re-exec'd successor skips the drawn budget.
        if faults.inject_at(Site::WorkerExit, cluster as u64, attempt).is_some() {
            std::process::exit(EXIT_INJECTED);
        }

        let users = &plan.clusters()[cluster as usize];
        let cluster_hash = plan.hashes().get(cluster as usize).copied().unwrap_or(0);
        let job_seed = ClusterAndConquer::job_seed(&c2, cluster as usize);

        let solve_start = Instant::now();
        let mut solve_attempt = 0;
        let (lists, comparisons) = loop {
            let outcome = catch_injected(std::panic::AssertUnwindSafe(|| {
                faults.panic_on(Site::SolveCluster, cluster as u64);
                solve_cluster_partial(users, &sim, c2.k, threshold, c2.rho, c2.delta, job_seed)
            }));
            match outcome {
                Ok(solved) => break solved,
                Err(_injected) => {
                    solve_attempt += 1;
                    stats.solve_retries += 1;
                    if solve_attempt >= MAX_SOLVE_ATTEMPTS {
                        // Out of in-process budget: die and let the
                        // coordinator requeue (process = worker).
                        return Err(protocol(format!(
                            "cluster {cluster} exhausted {MAX_SOLVE_ATTEMPTS} solve attempts"
                        )));
                    }
                    backoff(solve_attempt, 20, 2_000);
                }
            }
        };
        let busy = solve_start.elapsed();

        // Route per reduce shard; empty lists are dropped at the source,
        // exactly like the in-process shuffle.
        let mut groups: Vec<Vec<(u32, NeighborList)>> = vec![Vec::new(); reduce_shards];
        for (&user, list) in users.iter().zip(lists) {
            if !list.is_empty() {
                groups[partition_of(user, reduce_shards)].push((user, list));
            }
        }
        let payload = wire::encode_cluster_done(cluster, comparisons, cluster_hash, &groups)?;
        send_seq += 1;
        send_frame(&mut writer, FRAME_CLUSTER_DONE, &payload, send_seq)?;

        stats.clusters += 1;
        stats.comparisons += comparisons;
        stats.busy_ns += busy.as_nanos() as u64;
        telemetry.record_complete(
            "distrib.solve.cluster",
            telemetry.stamp().saturating_sub(busy.as_nanos() as u64),
            busy.as_nanos() as u64,
            vec![("cluster", cluster as u64), ("comparisons", comparisons)],
        );
    }

    // Finish: ship the timeline, the counters, and a clean goodbye.
    if job.telemetry {
        telemetry.record_complete(
            "distrib.worker.process",
            0,
            job_start.elapsed().as_nanos() as u64,
            vec![("worker", job.worker as u64), ("clusters", stats.clusters)],
        );
        let records = telemetry.span_records();
        let payload = cnc_telemetry::wire::encode_records(&records);
        send_seq += 1;
        send_frame(&mut writer, FRAME_SPANS, &payload, send_seq)?;
    }
    stats.transport_retries = transport::transport_retries();
    stats.injected = faults.injected_total();
    send_seq += 1;
    send_frame(&mut writer, FRAME_STATS, &wire::encode_stats(&stats), send_seq)?;
    send_seq += 1;
    send_frame(&mut writer, FRAME_BYE, &[], send_seq)?;
    writer.flush().map_err(DistribError::from)?;
    drop(reader);
    Ok(())
}
