//! Process spawning and byte transport between coordinator and workers.
//!
//! Two transports, one protocol: `Pipe` talks over the child's
//! stdin/stdout (portable, zero setup), `Socket` over a Unix domain
//! socket whose path the coordinator passes down via environment (the
//! child's stdio stays free for logging). Both carry the same frame
//! stream; `tests/distrib.rs` pins bit-identical graphs across them.
//!
//! Every frame write passes a `transport.send` fault gate *before* any
//! byte reaches the wire, and injected failures retry under capped
//! backoff — the same recovery contract as spill IO ([`SEND_ATTEMPTS`]
//! = 16 outlasts any injectable budget, span ≤ 12). A *genuine* write
//! error is not retried: the stream may hold a partial frame, so the
//! caller gets a typed error and treats the peer as lost.

use crate::error::DistribError;
use crate::wire::frame_bytes;
use cnc_faults::{backoff, Faults, Site};
use cnc_runtime::shuffle::note_retry;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable that flips a spawned binary into worker mode
/// (see [`crate::maybe_run_worker`]).
pub const ENV_WORKER: &str = "CNC_DISTRIB_WORKER";

/// Environment variable carrying the Unix socket path for `Socket`
/// transport; absent means pipe transport over stdin/stdout.
pub const ENV_SOCKET: &str = "CNC_DISTRIB_SOCKET";

/// Exit code of a worker killed by an injected `worker.exit` fault.
pub const EXIT_INJECTED: i32 = 17;

/// Retry budget for one frame send; outlasts any injectable failure
/// budget, so injected transport faults are always absorbed.
pub const SEND_ATTEMPTS: u32 = 16;

/// How long the coordinator waits for a spawned worker to connect its
/// socket before declaring the spawn failed.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// How the coordinator and workers exchange frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The worker's stdin/stdout, inherited from `Command` pipes.
    #[default]
    Pipe,
    /// A per-worker Unix domain socket (path passed via [`ENV_SOCKET`]).
    Socket,
}

impl Transport {
    /// The transport's flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Pipe => "pipe",
            Transport::Socket => "socket",
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Transport, String> {
        match s {
            "pipe" => Ok(Transport::Pipe),
            "socket" => Ok(Transport::Socket),
            other => Err(format!("unknown transport {other:?} (expected pipe|socket)")),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-lifetime count of transport send retries (injected faults
/// absorbed by backoff). Workers report theirs over the wire; the
/// coordinator takes a delta around each build.
static TRANSPORT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Current process's transport retry count.
pub fn transport_retries() -> u64 {
    TRANSPORT_RETRIES.load(Ordering::Relaxed)
}

/// Sends one frame: fault gate (with retries) first, then a single
/// `write_all` + flush. `fault_key` identifies the send for the seeded
/// schedule — the coordinator and each worker key by their own frame
/// ordinals, salted per direction.
pub fn send_frame<W: Write>(
    out: &mut W,
    kind: u8,
    payload: &[u8],
    fault_key: u64,
) -> Result<(), DistribError> {
    let faults = Faults::global();
    let mut attempt = 0;
    loop {
        match faults.inject_io(Site::TransportSend, fault_key) {
            Ok(()) => break,
            Err(last) => {
                attempt += 1;
                if attempt >= SEND_ATTEMPTS {
                    return Err(DistribError::TransportExhausted { attempts: attempt, last });
                }
                TRANSPORT_RETRIES.fetch_add(1, Ordering::Relaxed);
                note_retry("transport.send");
                backoff(attempt, 20, 2_000);
            }
        }
    }
    let bytes = frame_bytes(kind, payload);
    out.write_all(&bytes)
        .and_then(|()| out.flush())
        .map_err(|source| DistribError::Transport { context: "frame write", source })
}

/// One spawned worker process and its byte streams. The child handle is
/// shared so the coordinator's main loop can kill it (chaos hook) while
/// the reader thread waits on it.
pub struct WorkerLink {
    /// The worker's ordinal.
    pub worker: usize,
    /// OS process id (reporting).
    pub pid: u32,
    /// Shared child handle (kill/wait).
    pub child: Arc<Mutex<Child>>,
    /// Coordinator → worker byte stream.
    pub writer: Box<dyn Write + Send>,
    /// Worker → coordinator byte stream.
    pub reader: Box<dyn Read + Send>,
}

/// Spawns worker `worker` running `program` in worker mode over the
/// given transport. For `Socket`, `sock_dir` hosts the per-worker
/// socket files.
pub fn spawn_worker(
    program: &Path,
    transport: Transport,
    sock_dir: Option<&Path>,
    worker: usize,
) -> Result<WorkerLink, DistribError> {
    let spawn_err = |source| DistribError::Spawn { worker, source };
    let mut command = Command::new(program);
    command.arg("--distrib-worker").env(ENV_WORKER, "1").stderr(Stdio::inherit());
    match transport {
        Transport::Pipe => {
            command.stdin(Stdio::piped()).stdout(Stdio::piped());
            let mut child = command.spawn().map_err(spawn_err)?;
            let writer = child.stdin.take().expect("piped stdin");
            let reader = child.stdout.take().expect("piped stdout");
            let pid = child.id();
            Ok(WorkerLink {
                worker,
                pid,
                child: Arc::new(Mutex::new(child)),
                writer: Box::new(writer),
                reader: Box::new(io::BufReader::new(reader)),
            })
        }
        Transport::Socket => {
            #[cfg(unix)]
            {
                use std::os::unix::net::UnixListener;
                let dir = sock_dir.expect("socket transport requires a socket dir");
                let path = dir.join(format!("worker-{worker}.sock"));
                let listener = UnixListener::bind(&path).map_err(spawn_err)?;
                listener.set_nonblocking(true).map_err(spawn_err)?;
                command.env(ENV_SOCKET, &path).stdin(Stdio::null()).stdout(Stdio::inherit());
                let mut child = command.spawn().map_err(spawn_err)?;
                let pid = child.id();
                let stream = accept_with_timeout(&listener, &mut child, worker)?;
                let writer = stream.try_clone().map_err(spawn_err)?;
                Ok(WorkerLink {
                    worker,
                    pid,
                    child: Arc::new(Mutex::new(child)),
                    writer: Box::new(writer),
                    reader: Box::new(io::BufReader::new(stream)),
                })
            }
            #[cfg(not(unix))]
            {
                let _ = sock_dir;
                Err(DistribError::Protocol {
                    detail: "socket transport requires a Unix platform".into(),
                })
            }
        }
    }
}

#[cfg(unix)]
fn accept_with_timeout(
    listener: &std::os::unix::net::UnixListener,
    child: &mut Child,
    worker: usize,
) -> Result<std::os::unix::net::UnixStream, DistribError> {
    let deadline = Instant::now() + ACCEPT_TIMEOUT;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|source| DistribError::Spawn { worker, source })?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // A child that died before connecting will never accept.
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(DistribError::Spawn {
                        worker,
                        source: io::Error::other(format!(
                            "worker exited before connecting: {status}"
                        )),
                    });
                }
                if Instant::now() >= deadline {
                    return Err(DistribError::Spawn {
                        worker,
                        source: io::Error::new(
                            io::ErrorKind::TimedOut,
                            "worker never connected its socket",
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(DistribError::Spawn { worker, source: e }),
        }
    }
}

/// The worker side of the connection, resolved from the environment:
/// [`ENV_SOCKET`] set → connect the socket; otherwise stdin/stdout.
pub fn worker_connection() -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    match std::env::var_os(ENV_SOCKET) {
        Some(path) => {
            #[cfg(unix)]
            {
                use std::os::unix::net::UnixStream;
                let stream = UnixStream::connect(PathBuf::from(path))?;
                let writer = stream.try_clone()?;
                Ok((Box::new(io::BufReader::new(stream)), Box::new(writer)))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(io::Error::other("socket transport requires a Unix platform"))
            }
        }
        None => Ok((Box::new(io::BufReader::new(io::stdin())), Box::new(io::stdout()))),
    }
}

/// A self-cleaning temp directory for socket files (mirrors the spill
/// layer's `SpillDir`).
pub struct SocketDir {
    path: PathBuf,
}

impl SocketDir {
    /// Creates a fresh process-unique directory under the system tmp.
    pub fn create() -> io::Result<SocketDir> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let ordinal = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("cnc-distrib-{}-{ordinal}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(SocketDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SocketDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_faults::FaultPlan;
    use std::sync::Mutex as StdMutex;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn send_frame_retries_injected_faults_and_delivers() {
        let _serial = lock();
        let faults = Faults::global();
        // span ≤ 12 < SEND_ATTEMPTS: every injected schedule is absorbed.
        let plan = FaultPlan::new(31, 1.0).with_span(12).only(&[Site::TransportSend]);
        let _guard = faults.arm(plan);
        let before = transport_retries();
        let mut out = Vec::new();
        send_frame(&mut out, crate::wire::FRAME_IDLE, &[], 5).unwrap();
        assert!(transport_retries() > before, "p=1 must have cost retries");
        let frame = crate::wire::read_frame(&mut out.as_slice()).unwrap().unwrap();
        assert_eq!(frame.kind, crate::wire::FRAME_IDLE);
    }

    #[test]
    fn send_frame_without_faults_is_clean() {
        let _serial = lock();
        let mut out = Vec::new();
        send_frame(&mut out, crate::wire::FRAME_BYE, &[1, 2, 3], 0).unwrap();
        let frame = crate::wire::read_frame(&mut out.as_slice()).unwrap().unwrap();
        assert_eq!(frame.kind, crate::wire::FRAME_BYE);
        assert_eq!(frame.payload, vec![1, 2, 3]);
    }

    #[test]
    fn socket_dir_cleans_up() {
        let dir = SocketDir::create().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn transport_parses_and_displays() {
        assert_eq!("pipe".parse::<Transport>().unwrap(), Transport::Pipe);
        assert_eq!("socket".parse::<Transport>().unwrap(), Transport::Socket);
        assert!("carrier-pigeon".parse::<Transport>().is_err());
        assert_eq!(Transport::Socket.to_string(), "socket");
    }
}
