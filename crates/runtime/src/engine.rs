//! The sharded map-reduce engine.
//!
//! Execution model (one in-process shard per would-be map worker):
//!
//! ```text
//!            ┌────────────┐   bounded channel    ┌─────────────┐
//!  cluster → │ worker 0   │ ─────────────────┐   │             │
//!  queues    │ worker 1   │ ─────────────────┼──▶│  reducer    │→ KnnGraph
//!  (LPT)     │   ...      │ ─────────────────┘   │ (Algorithm 3)│
//!            │ worker W-1 │    PartialChunk      └─────────────┘
//!            └────────────┘
//! ```
//!
//! Workers drain their own LPT queue largest-first (the distributed
//! generalization of Step 2's priority queue); when a queue runs dry the
//! worker steals the smallest queued cluster from the most-loaded peer.
//! Every solved cluster is shipped as one [`PartialChunk`] through a
//! bounded channel; the reducer merges chunks into per-user bounded heaps
//! (Algorithm 3) *while the map phase is still running*.
//!
//! Because [`NeighborList`] keeps the top-k under a strict total order on
//! `(similarity, user)`, the merge is order-independent: a sharded build
//! produces byte-for-byte the same graph as the single-process pipeline on
//! the same configuration and seed (asserted by `tests/sharded.rs`).

use crate::config::{RuntimeConfig, StealPolicy};
use crate::report::{RuntimeReport, WorkerStats};
use cnc_baselines::local;
use cnc_core::distributed::cluster_cost;
use cnc_core::{plan_deployment, C2Config, ClusterAndConquer, DeploymentPlan};
use cnc_dataset::{Dataset, UserId};
use cnc_graph::{KnnGraph, NeighborList};
use cnc_similarity::SimilarityData;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

/// One solved cluster's partial neighbourhoods, en route to the reducer.
struct PartialChunk {
    /// Pairs `(user, partial list)`; empty lists are dropped at the source.
    entries: Vec<(UserId, NeighborList)>,
}

/// A built graph plus the measured execution record.
#[derive(Debug)]
pub struct ShardedResult {
    /// The approximate KNN graph (identical to the single-process build's).
    pub graph: KnnGraph,
    /// Measured per-worker and reduce-stage figures, with the plan inside.
    pub report: RuntimeReport,
}

/// The per-worker cluster queues plus the bookkeeping stealing needs.
struct JobQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Predicted cost still queued per worker (stale reads are fine — it
    /// only ranks steal victims).
    remaining: Vec<AtomicU64>,
    costs: Vec<u64>,
    policy: StealPolicy,
}

impl JobQueues {
    fn new(plan: &DeploymentPlan, costs: Vec<u64>, policy: StealPolicy) -> Self {
        // Each worker's LPT assignment is already in decreasing-cost order
        // (clusters are assigned globally largest-first), so popping from
        // the front preserves Step 2's largest-first schedule per shard.
        let queues: Vec<Mutex<VecDeque<usize>>> = plan
            .assignments
            .iter()
            .map(|clusters| Mutex::new(clusters.iter().copied().collect()))
            .collect();
        // Sum `remaining` from the same `costs` vector the pops subtract,
        // not from `plan.worker_costs`: steal()'s termination needs the
        // counters to reach exactly 0 once the queues drain, which a
        // second, independently computed cost model could silently break.
        let remaining = plan
            .assignments
            .iter()
            .map(|clusters| AtomicU64::new(clusters.iter().map(|&c| costs[c]).sum()))
            .collect();
        JobQueues { queues, remaining, costs, policy }
    }

    /// Next cluster from the worker's own queue (largest first).
    fn pop_own(&self, worker: usize) -> Option<usize> {
        let cluster = self.queues[worker].lock().pop_front()?;
        self.remaining[worker].fetch_sub(self.costs[cluster], Ordering::Relaxed);
        Some(cluster)
    }

    /// Steals the *smallest* queued cluster from the most-loaded peer.
    fn steal(&self, thief: usize) -> Option<usize> {
        if self.policy == StealPolicy::Disabled {
            return None;
        }
        loop {
            // Rank victims by predicted work remaining, best first.
            let mut victims: Vec<(u64, usize)> = self
                .remaining
                .iter()
                .enumerate()
                .filter(|&(w, _)| w != thief)
                .map(|(w, r)| (r.load(Ordering::Relaxed), w))
                .filter(|&(r, _)| r > 0)
                .collect();
            if victims.is_empty() {
                return None;
            }
            victims.sort_unstable_by(|a, b| b.cmp(a));
            for (_, victim) in victims {
                let stolen = self.queues[victim].lock().pop_back();
                if let Some(cluster) = stolen {
                    self.remaining[victim].fetch_sub(self.costs[cluster], Ordering::Relaxed);
                    return Some(cluster);
                }
            }
            // Every candidate's queue emptied between the load and the
            // lock; the owners' pending `fetch_sub`s will zero the stale
            // counters, so looping re-reads them until none remain.
        }
    }
}

/// The sharded map-reduce execution engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`RuntimeConfig::validate`]).
    pub fn new(config: RuntimeConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid RuntimeConfig: {msg}");
        }
        Runtime { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Builds the KNN graph of `dataset` under `c2` on `W` worker shards,
    /// materializing the similarity backend declared in the configuration.
    ///
    /// # Panics
    /// Panics if `c2` is invalid.
    pub fn execute(&self, dataset: &Dataset, c2: &C2Config) -> ShardedResult {
        let start = Instant::now();
        let sim = SimilarityData::build(c2.backend, dataset);
        self.execute_with(dataset, &sim, c2, start)
    }

    /// Builds the graph against an externally-provided similarity oracle
    /// (shares fingerprints across runs, as the bench harness does).
    pub fn execute_with(
        &self,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        c2: &C2Config,
        start: Instant,
    ) -> ShardedResult {
        let comparisons_before = sim.comparisons();
        let workers = self.config.effective_workers();
        let n = dataset.num_users();

        // --- Step 1: clustering (identical to the in-process pipeline) ---
        let clustering = ClusterAndConquer::new(*c2).cluster_step(dataset);
        let clustering_wall = start.elapsed();
        let splits = clustering.splits;

        // --- Plan: the §VIII LPT simulation becomes the real schedule ----
        let plan = plan_deployment(&clustering, workers, c2.k, c2.rho);
        let clusters = clustering.clusters;
        let costs: Vec<u64> =
            clusters.iter().map(|c| cluster_cost(c.len(), c2.k, c2.rho)).collect();
        let queues = JobQueues::new(&plan, costs, self.config.steal);

        // --- Map + reduce, overlapped ------------------------------------
        let map_reduce_start = Instant::now();
        let threshold = c2.brute_force_threshold();
        let (sender, receiver) =
            std::sync::mpsc::sync_channel::<PartialChunk>(self.config.channel_capacity);

        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        let mut graph_and_shuffle: Option<(KnnGraph, u64)> = None;
        std::thread::scope(|scope| {
            let reducer = scope.spawn(|| reduce_stage(receiver, n, c2.k));
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let sender = sender.clone();
                    let queues = &queues;
                    let clusters = &clusters;
                    scope.spawn(move || map_worker(w, queues, clusters, sim, c2, threshold, sender))
                })
                .collect();
            // The reducer finishes when every sender hangs up; drop the
            // original handle so only live workers keep the channel open.
            drop(sender);
            for handle in handles {
                worker_stats.push(handle.join().expect("map worker panicked"));
            }
            graph_and_shuffle = Some(reducer.join().expect("reducer panicked"));
        });
        let (graph, shuffle_entries) = graph_and_shuffle.expect("reduce stage did not run");
        let map_reduce_wall = map_reduce_start.elapsed();

        ShardedResult {
            graph,
            report: RuntimeReport {
                num_clusters: clusters.len(),
                plan,
                workers: worker_stats,
                shuffle_entries,
                splits,
                comparisons: sim.comparisons() - comparisons_before,
                clustering_wall,
                map_reduce_wall,
                total_wall: start.elapsed(),
            },
        }
    }
}

/// One map shard: drain own queue largest-first, then steal, then hang up.
fn map_worker(
    worker: usize,
    queues: &JobQueues,
    clusters: &[Vec<UserId>],
    sim: &SimilarityData<'_>,
    c2: &C2Config,
    threshold: usize,
    sender: SyncSender<PartialChunk>,
) -> WorkerStats {
    let mut stats = WorkerStats {
        worker,
        clusters: Vec::new(),
        busy: std::time::Duration::ZERO,
        solved_cost: 0,
        shuffle_entries: 0,
        stolen: 0,
    };
    loop {
        let (cluster, stolen) = match queues.pop_own(worker) {
            Some(c) => (c, false),
            None => match queues.steal(worker) {
                Some(c) => (c, true),
                None => break,
            },
        };
        let busy_start = Instant::now();
        let users = &clusters[cluster];
        // Algorithm 2: brute force for small clusters, Hyrec above the
        // ρ·k² crossover — exactly the single-process dispatch.
        let lists = if users.len() < threshold {
            local::brute_force_partial(users, sim, c2.k)
        } else {
            local::hyrec_partial(
                users,
                sim,
                c2.k,
                c2.rho,
                c2.delta,
                ClusterAndConquer::job_seed(c2, cluster),
            )
        };
        let entries: Vec<(UserId, NeighborList)> =
            users.iter().copied().zip(lists).filter(|(_, list)| !list.is_empty()).collect();
        stats.shuffle_entries += entries.iter().map(|(_, l)| l.len() as u64).sum::<u64>();
        stats.clusters.push(cluster);
        stats.solved_cost += queues.costs[cluster];
        stats.stolen += usize::from(stolen);
        // Stop the busy clock before shipping: blocking on a full channel
        // is reducer back-pressure, not map work, and must not inflate
        // `measured_speedup`.
        stats.busy += busy_start.elapsed();
        if !entries.is_empty() {
            sender.send(PartialChunk { entries }).expect("reducer hung up early");
        }
    }
    stats
}

/// The reduce stage: Algorithm 3's bounded-heap merge, running concurrently
/// with the map phase. Returns the graph and the received entry count.
fn reduce_stage(receiver: Receiver<PartialChunk>, n: usize, k: usize) -> (KnnGraph, u64) {
    let mut graph = KnnGraph::new(n, k);
    let mut shuffle_entries = 0u64;
    for chunk in receiver {
        for (user, partial) in &chunk.entries {
            shuffle_entries += partial.len() as u64;
            graph.neighbors_mut(*user).merge(partial);
        }
    }
    (graph, shuffle_entries)
}

/// Sharded construction as a method on [`ClusterAndConquer`].
///
/// Lives here (not in `cnc-core`) because the runtime depends on the core
/// crate; importing this trait — or the facade prelude, which re-exports
/// it — makes `builder.build_sharded(&dataset, &runtime_config)` available.
pub trait ShardedBuild {
    /// Builds the KNN graph on `runtime.workers` map-reduce shards.
    fn build_sharded(&self, dataset: &Dataset, runtime: &RuntimeConfig) -> ShardedResult;
}

impl ShardedBuild for ClusterAndConquer {
    fn build_sharded(&self, dataset: &Dataset, runtime: &RuntimeConfig) -> ShardedResult {
        Runtime::new(*runtime).execute(dataset, self.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;
    use cnc_similarity::SimilarityBackend;

    fn test_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(77);
        cfg.num_users = 500;
        cfg.num_items = 400;
        cfg.communities = 8;
        cfg.mean_profile = 25.0;
        cfg.min_profile = 8;
        cfg.generate()
    }

    fn test_config() -> C2Config {
        C2Config {
            k: 8,
            b: 64,
            t: 3,
            max_cluster_size: 120,
            backend: SimilarityBackend::Raw,
            seed: 41,
            threads: 1,
            ..C2Config::default()
        }
    }

    #[test]
    fn sharded_graph_equals_single_process_graph() {
        let ds = test_dataset();
        let single = ClusterAndConquer::new(test_config()).build(&ds);
        for workers in [1usize, 3] {
            let sharded =
                Runtime::new(RuntimeConfig::with_workers(workers)).execute(&ds, &test_config());
            for u in ds.users() {
                assert_eq!(
                    sharded.graph.neighbors(u).sorted(),
                    single.graph.neighbors(u).sorted(),
                    "user {u} differs with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn every_cluster_is_executed_exactly_once() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(4)).execute(&ds, &test_config());
        let mut executed: Vec<usize> =
            result.report.workers.iter().flat_map(|w| w.clusters.iter().copied()).collect();
        executed.sort_unstable();
        let expected: Vec<usize> = (0..result.report.num_clusters).collect();
        assert_eq!(executed, expected);
    }

    #[test]
    fn disabled_stealing_executes_the_plan_verbatim() {
        let ds = test_dataset();
        let config =
            RuntimeConfig { workers: 4, steal: StealPolicy::Disabled, ..RuntimeConfig::default() };
        let result = Runtime::new(config).execute(&ds, &test_config());
        assert_eq!(result.report.stolen_clusters(), 0);
        let executed = result.report.executed_assignments();
        for (w, planned) in result.report.plan.assignments.iter().enumerate() {
            let mut planned = planned.clone();
            planned.sort_unstable();
            assert_eq!(executed[w], planned, "worker {w} deviated from the plan");
        }
    }

    #[test]
    fn measured_shuffle_matches_predicted_merge_traffic() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(3)).execute(&ds, &test_config());
        assert_eq!(result.report.shuffle_entries, result.report.plan.merge_traffic);
        let sent: u64 = result.report.workers.iter().map(|w| w.shuffle_entries).sum();
        assert_eq!(sent, result.report.shuffle_entries, "sent and received entries differ");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        let report = &result.report;
        assert!(report.comparisons > 0);
        assert!(report.total_wall >= report.map_reduce_wall);
        assert!(report.measured_speedup() >= 1.0 - 1e-9);
        assert!(report.measured_imbalance() >= 1.0 - 1e-9);
        let solved: u64 = report.workers.iter().map(|w| w.solved_cost).sum();
        assert_eq!(solved, report.plan.total_cost());
    }

    #[test]
    fn tiny_channel_capacity_still_completes() {
        let ds = test_dataset();
        let config = RuntimeConfig { workers: 3, channel_capacity: 1, ..RuntimeConfig::default() };
        let single = ClusterAndConquer::new(test_config()).build(&ds);
        let sharded = Runtime::new(config).execute(&ds, &test_config());
        for u in ds.users() {
            assert_eq!(sharded.graph.neighbors(u).sorted(), single.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::from_profiles(vec![], 0);
        let result = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        assert_eq!(result.graph.num_users(), 0);
        assert_eq!(result.report.shuffle_entries, 0);
        assert_eq!(result.report.num_clusters, 0);
    }

    #[test]
    fn build_sharded_extension_matches_runtime_execute() {
        let ds = test_dataset();
        let builder = ClusterAndConquer::new(test_config());
        let via_trait = builder.build_sharded(&ds, &RuntimeConfig::with_workers(2));
        let via_engine = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        for u in ds.users() {
            assert_eq!(
                via_trait.graph.neighbors(u).sorted(),
                via_engine.graph.neighbors(u).sorted()
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid RuntimeConfig")]
    fn invalid_runtime_config_panics() {
        Runtime::new(RuntimeConfig { channel_capacity: 0, ..RuntimeConfig::default() });
    }
}
