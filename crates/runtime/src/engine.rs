//! The sharded map-reduce engine.
//!
//! Execution model (one in-process shard per would-be map worker or
//! reducer):
//!
//! ```text
//!            ┌────────────┐  R bounded channels  ┌─────────────┐
//!  cluster → │ worker 0   │ ──┬───────────────┬─▶│ reducer 0   │─┐
//!  queues    │ worker 1   │ ──┼───┐    ┌──────┼─▶│ reducer 1   │ ├→ KnnGraph
//!  (LPT)     │   ...      │ ──┘   │    │      │  │   ...       │ │ (partition
//!            │ worker W-1 │ ──────┴────┴──────┴─▶│ reducer R-1 │─┘  concat)
//!            └────────────┘      Chunk | Spill   └─────────────┘
//!                  │                                    ▲
//!                  └── spill files (one per stream) ────┘
//! ```
//!
//! Workers drain their own LPT queue largest-first (the distributed
//! generalization of Step 2's priority queue); when a queue runs dry the
//! worker steals **half** the most-loaded peer's remaining queue (the
//! victim keeps its larger-cost front half).
//! Every solved cluster's partial lists are hash-partitioned by user
//! ([`partition_of`]) and shipped per reduce shard — through that shard's
//! bounded channel, or (above the [`SpillMode`] threshold) appended to the
//! stream's spill file, whose replay handle is delivered after the map
//! phase. Each reducer merges its user partition into per-user bounded
//! heaps (Algorithm 3) *while the map phase is still running*; the final
//! graph is assembled by concatenating the partitions.
//!
//! Because [`NeighborList`] keeps the top-k under a strict total order on
//! `(similarity, user)` and the spill codec is lossless, the merge is
//! order- and route-independent: every `(workers, reduce_shards, spill)`
//! combination produces byte-for-byte the same graph as the
//! single-process pipeline on the same configuration and seed (asserted
//! by `tests/shuffle.rs`).

use crate::config::{RuntimeConfig, SpillMode, StealPolicy};
use crate::report::{ReduceStats, RuntimeReport, WorkerStats};
use crate::shuffle::{
    encoded_len, note_retry, partition_of, replay_spill, FinishedSpill, ReducePartition, SpillDir,
    SpillWriter,
};
use cnc_baselines::local;
use cnc_core::build_plan::{BuildPlan, ClusterCache, ClusterSolution, RebuildStats};
use cnc_core::distributed::{cluster_cost, plan_deployment_for};
use cnc_core::{C2Config, ClusterAndConquer, DeploymentPlan};
use cnc_dataset::{Dataset, UserId};
use cnc_faults::{Faults, Site};
use cnc_graph::{KnnGraph, NeighborList};
use cnc_similarity::{GoldFinger, SimilarityData};
use cnc_telemetry::{SpanRecord, Telemetry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// In-build solve attempts per cluster (first try + bounded
/// re-executions after caught panics). A cluster that panics this many
/// times aborts the build — the layer above (the serving writer) keeps
/// its last good epoch and retries the whole publish with backoff, by
/// which point a transient fault schedule has drained its budget.
const MAX_SOLVE_ATTEMPTS: u32 = 3;

/// Caught solve panics a map worker absorbs before it is declared dead.
/// A dead worker's remaining queue stays claimable: surviving peers
/// steal it half-at-a-time, and whatever nobody claims is swept by the
/// orchestrator's recovery lane after the workers join.
const WORKER_PANIC_BUDGET: u32 = 2;

/// One message on a reduce shard's channel.
enum ShuffleMessage {
    /// Partial lists routed in memory: pairs `(user, partial list)`, all
    /// owned by the receiving shard; empty lists are dropped at the source.
    Chunk {
        /// `BuildPlan` content hash of the source cluster (0 when the
        /// build never fingerprinted, i.e. a one-shot run).
        cluster_hash: u64,
        /// True when the lists come from a prior build's cluster cache
        /// rather than a fresh map-stage solve.
        reused: bool,
        /// The routed `(user, partial list)` pairs.
        entries: Vec<(UserId, NeighborList)>,
    },
    /// A sealed spill file to replay; sent once the map phase is over.
    Spill(PathBuf),
}

/// A built graph plus the measured execution record.
#[derive(Debug)]
pub struct ShardedResult {
    /// The approximate KNN graph (identical to the single-process build's).
    pub graph: KnnGraph,
    /// Measured per-worker and per-reducer figures, with the plan inside.
    pub report: RuntimeReport,
}

/// An incremental sharded build's output: graph + report, plus the
/// cluster cache covering every cluster of this build (feed it to the
/// next call) and the reuse figures.
#[derive(Debug)]
pub struct IncrementalShardedResult {
    /// The approximate KNN graph — bit-identical to a from-scratch build.
    pub graph: KnnGraph,
    /// Measured figures; `report.comparisons` covers only fresh solves.
    pub report: RuntimeReport,
    /// Per-cluster solutions of *this* build (reused entries carried
    /// over, dirty ones refreshed); `cache.total_comparisons()` equals a
    /// from-scratch build's comparison count.
    pub cache: ClusterCache,
    /// How the build split between reused and re-solved clusters.
    pub rebuild: RebuildStats,
}

/// The per-worker cluster queues plus the bookkeeping stealing needs.
struct JobQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Predicted cost still queued per worker (stale reads are fine — it
    /// only ranks steal victims).
    remaining: Vec<AtomicU64>,
    costs: Vec<u64>,
    policy: StealPolicy,
}

impl JobQueues {
    fn new(plan: &DeploymentPlan, costs: Vec<u64>, policy: StealPolicy) -> Self {
        // Each worker's LPT assignment is already in decreasing-cost order
        // (clusters are assigned globally largest-first), so popping from
        // the front preserves Step 2's largest-first schedule per shard.
        let mut queues: Vec<Mutex<VecDeque<usize>>> = plan
            .assignments
            .iter()
            .map(|clusters| Mutex::new(clusters.iter().copied().collect()))
            .collect();
        // Sum `remaining` from the same `costs` vector the pops subtract,
        // not from `plan.worker_costs`: steal()'s termination needs the
        // counters to reach exactly 0 once the queues drain, which a
        // second, independently computed cost model could silently break.
        let mut remaining: Vec<AtomicU64> = plan
            .assignments
            .iter()
            .map(|clusters| AtomicU64::new(clusters.iter().map(|&c| costs[c]).sum()))
            .collect();
        // One extra, initially empty lane: the orchestrator's recovery
        // sweep steals into it after the workers join, so clusters a dead
        // worker left behind are executed even with zero survivors.
        queues.push(Mutex::new(VecDeque::new()));
        remaining.push(AtomicU64::new(0));
        JobQueues { queues, remaining, costs, policy }
    }

    /// The extra lane the orchestrator's recovery sweep pops and steals
    /// on after the worker threads have joined.
    fn recovery_lane(&self) -> usize {
        self.queues.len() - 1
    }

    /// Whether any queue still holds unexecuted work. Read after the
    /// worker joins (which synchronize the relaxed counters), so `true`
    /// means dead workers left clusters behind.
    fn any_remaining(&self) -> bool {
        self.remaining.iter().any(|r| r.load(Ordering::Relaxed) > 0)
    }

    /// Returns a cluster whose solve panicked to the front of `worker`'s
    /// queue for re-execution (failed clusters retry before the backlog).
    /// The cost is credited back *before* the cluster is published,
    /// mirroring `steal`'s ordering, so a racing peer never sees queued
    /// work the counters cannot cover.
    fn requeue(&self, worker: usize, cluster: usize) {
        self.remaining[worker].fetch_add(self.costs[cluster], Ordering::Relaxed);
        self.queues[worker].lock().push_front(cluster);
    }

    /// Next cluster from the worker's own queue (largest first).
    fn pop_own(&self, worker: usize) -> Option<usize> {
        let cluster = self.queues[worker].lock().pop_front()?;
        self.remaining[worker].fetch_sub(self.costs[cluster], Ordering::Relaxed);
        Some(cluster)
    }

    /// Steals **half** the most-loaded peer's remaining queue (ROADMAP
    /// PR-2 follow-up: adaptive steal granularity). The victim keeps its
    /// larger-cost front half; the stolen tail — still in decreasing-cost
    /// order — yields its largest cluster for immediate execution while
    /// the rest is queued on the thief (where peers may re-steal it).
    /// Returns `(execute now, also queued on the thief)`.
    fn steal(&self, thief: usize) -> Option<(usize, Vec<usize>)> {
        if self.policy == StealPolicy::Disabled {
            return None;
        }
        self.steal_impl(thief)
    }

    /// [`JobQueues::steal`] minus the policy gate: the recovery lane
    /// redistributes a dead worker's leftovers even under
    /// [`StealPolicy::Disabled`] — the policy governs load balancing,
    /// not crash recovery.
    fn steal_forced(&self, thief: usize) -> Option<(usize, Vec<usize>)> {
        self.steal_impl(thief)
    }

    fn steal_impl(&self, thief: usize) -> Option<(usize, Vec<usize>)> {
        loop {
            // Rank victims by predicted work remaining, best first.
            let mut victims: Vec<(u64, usize)> = self
                .remaining
                .iter()
                .enumerate()
                .filter(|&(w, _)| w != thief)
                .map(|(w, r)| (r.load(Ordering::Relaxed), w))
                .filter(|&(r, _)| r > 0)
                .collect();
            if victims.is_empty() {
                return None;
            }
            victims.sort_unstable_by(|a, b| b.cmp(a));
            for (_, victim) in victims {
                let stolen: Vec<usize> = {
                    let mut queue = self.queues[victim].lock();
                    let keep = queue.len() / 2;
                    queue.split_off(keep).into_iter().collect()
                };
                if stolen.is_empty() {
                    continue;
                }
                let stolen_cost: u64 = stolen.iter().map(|&c| self.costs[c]).sum();
                self.remaining[victim].fetch_sub(stolen_cost, Ordering::Relaxed);
                let first = stolen[0];
                let queued = stolen[1..].to_vec();
                if !queued.is_empty() {
                    // Credit the thief *before* publishing the clusters so
                    // a racing peer never sees work it cannot account for.
                    let queued_cost: u64 = queued.iter().map(|&c| self.costs[c]).sum();
                    self.remaining[thief].fetch_add(queued_cost, Ordering::Relaxed);
                    self.queues[thief].lock().extend(queued.iter().copied());
                }
                return Some((first, queued));
            }
            // Every candidate's queue emptied between the load and the
            // lock; the owners' pending `fetch_sub`s will zero the stale
            // counters, so looping re-reads them until none remain.
        }
    }
}

/// Everything a map worker needs, bundled so the thread spawn stays tidy.
struct MapContext<'a> {
    queues: &'a JobQueues,
    /// The full cluster list (global indices).
    clusters: &'a [Vec<UserId>],
    /// Plan-local index → global cluster index. A from-scratch build
    /// schedules everything (`scheduled[i] == i`); an incremental build
    /// schedules only its dirty clusters.
    scheduled: &'a [usize],
    /// Per-global-cluster content hashes (empty when the build never
    /// fingerprinted; records then carry hash 0).
    hashes: &'a [u64],
    /// Where incremental builds collect the fresh cache-keyed
    /// [`ClusterSolution`]s (`None` for one-shot builds).
    solutions: Option<&'a Mutex<Vec<ClusterSolution>>>,
    sim: &'a SimilarityData<'a>,
    c2: &'a C2Config,
    threshold: usize,
    reduce_shards: usize,
    spill: SpillMode,
    spill_dir: Option<&'a SpillDir>,
    /// Per-scheduled-cluster *failed* solve attempts, shared across
    /// workers: a cluster may be requeued and retried anywhere, but its
    /// total failure budget is [`MAX_SOLVE_ATTEMPTS`] per build.
    attempts: &'a [AtomicU32],
    /// Set when a cluster exhausts its attempts: every worker bails out
    /// of its loop so the build fails fast as a unit.
    abort: &'a AtomicBool,
}

/// The sharded map-reduce execution engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`RuntimeConfig::validate`]).
    pub fn new(config: RuntimeConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid RuntimeConfig: {msg}");
        }
        Runtime { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Builds the KNN graph of `dataset` under `c2` on `W` worker shards,
    /// materializing the similarity backend declared in the configuration
    /// (GoldFinger fingerprints are built in parallel on the map workers).
    ///
    /// # Panics
    /// Panics if `c2` is invalid.
    pub fn execute(&self, dataset: &Dataset, c2: &C2Config) -> ShardedResult {
        let start = Instant::now();
        let sim =
            SimilarityData::build_parallel(c2.backend, dataset, self.config.effective_workers());
        self.execute_with(dataset, &sim, c2, start)
    }

    /// Builds the graph against a pre-built, shared fingerprint set — one
    /// `GoldFinger::build` amortized across runs and bench repetitions
    /// instead of re-hashing the full dataset per execution (ROADMAP:
    /// "share one `SimilarityData` fingerprint build across workers").
    ///
    /// # Panics
    /// Panics if the fingerprints don't cover `dataset`'s users, or if
    /// `c2.backend` is not the GoldFinger configuration the shared build
    /// was made with — a silent mismatch would produce a graph
    /// inconsistent with the configuration the plan and report claim.
    pub fn execute_shared(
        &self,
        dataset: &Dataset,
        c2: &C2Config,
        goldfinger: Arc<GoldFinger>,
    ) -> ShardedResult {
        validate_shared(dataset, c2, &goldfinger);
        let start = Instant::now();
        let sim = SimilarityData::from_goldfinger(goldfinger);
        self.execute_with(dataset, &sim, c2, start)
    }

    /// Builds the graph against an externally-provided similarity oracle
    /// (shares fingerprints across runs, as the bench harness does).
    pub fn execute_with(
        &self,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        c2: &C2Config,
        start: Instant,
    ) -> ShardedResult {
        self.execute_inner(dataset, sim, c2, start, None).0
    }

    /// Incrementally rebuilds on the sharded engine, scheduling **only**
    /// the clusters whose `BuildPlan` content hash misses `prev`; cached
    /// partial lists are replayed straight into the reduce stage. Users in
    /// `force_dirty` (the serving layer passes the ids inserted since the
    /// last epoch) mark their clusters dirty regardless. The graph is
    /// bit-identical to [`Runtime::execute`] on the same dataset, and
    /// `report.comparisons` counts only the fresh solves — locked by
    /// `tests/incremental.rs`. Pass an empty cache for the first build.
    ///
    /// # Panics
    /// Panics if `c2` is invalid.
    pub fn execute_incremental(
        &self,
        dataset: &Dataset,
        c2: &C2Config,
        prev: &ClusterCache,
        force_dirty: &[UserId],
    ) -> IncrementalShardedResult {
        let start = Instant::now();
        let sim =
            SimilarityData::build_parallel(c2.backend, dataset, self.config.effective_workers());
        let (result, extra) =
            self.execute_inner(dataset, &sim, c2, start, Some((prev, force_dirty)));
        let (cache, rebuild) = extra.expect("incremental run must produce a cache");
        IncrementalShardedResult { graph: result.graph, report: result.report, cache, rebuild }
    }

    /// [`Runtime::execute_incremental`] against a pre-built, shared
    /// fingerprint set (see [`Runtime::execute_shared`]) — the serving
    /// engine's rebuild path, where one fingerprint build is shared
    /// between construction and the published epoch's query kernels.
    ///
    /// # Panics
    /// Panics on the same fingerprint mismatches as
    /// [`Runtime::execute_shared`].
    pub fn execute_incremental_shared(
        &self,
        dataset: &Dataset,
        c2: &C2Config,
        goldfinger: Arc<GoldFinger>,
        prev: &ClusterCache,
        force_dirty: &[UserId],
    ) -> IncrementalShardedResult {
        validate_shared(dataset, c2, &goldfinger);
        let start = Instant::now();
        let sim = SimilarityData::from_goldfinger(goldfinger);
        let (result, extra) =
            self.execute_inner(dataset, &sim, c2, start, Some((prev, force_dirty)));
        let (cache, rebuild) = extra.expect("incremental run must produce a cache");
        IncrementalShardedResult { graph: result.graph, report: result.report, cache, rebuild }
    }

    /// The engine shared by every entry point: stages 1–2 build (and, when
    /// incremental, fingerprint) the [`BuildPlan`]; stage 3 schedules the
    /// dirty clusters over the map shards while cached solutions replay
    /// into the reducers; stage 4 is the order-independent bounded-heap
    /// merge the reducers already implement.
    fn execute_inner(
        &self,
        dataset: &Dataset,
        sim: &SimilarityData<'_>,
        c2: &C2Config,
        start: Instant,
        incremental: Option<(&ClusterCache, &[UserId])>,
    ) -> (ShardedResult, Option<(ClusterCache, RebuildStats)>) {
        let telemetry = Telemetry::global();
        let comparisons_before = sim.comparisons();
        let workers = self.config.effective_workers();
        let reduce_shards = self.config.effective_reduce_shards();
        let n = dataset.num_users();

        // --- Stages 1 + 2: assignment (+ content hashes when a cache is
        // in play), identical to the in-process pipeline ------------------
        let mut plan = BuildPlan::assign(c2, dataset);
        if incremental.is_some() {
            plan.fingerprint(dataset);
        }
        let clustering_wall = start.elapsed();
        let splits = plan.splits();
        let clusters = plan.clusters();

        // --- Stage 3: partition into dirty (scheduled) and reused --------
        let (scheduled, reused): (Vec<usize>, Vec<(usize, &ClusterSolution)>) = match incremental {
            Some((prev, force_dirty)) => {
                let part = plan.partition(prev, force_dirty);
                (part.dirty, part.reused)
            }
            None => ((0..clusters.len()).collect(), Vec::new()),
        };

        // --- Plan: the §VIII LPT simulation becomes the real schedule,
        // over the scheduled (dirty) subset only --------------------------
        let sizes: Vec<usize> = scheduled.iter().map(|&i| clusters[i].len()).collect();
        let deploy = plan_deployment_for(&sizes, workers, c2.k, c2.rho);
        let costs: Vec<u64> = sizes.iter().map(|&s| cluster_cost(s, c2.k, c2.rho)).collect();
        let queues = JobQueues::new(&deploy, costs, self.config.steal);

        // --- Reduce partitioning: a total disjoint cover of the users ----
        // Concatenating the per-shard outputs reassembles the graph
        // without a merge; the same helper routes the distributed wire.
        let ReducePartition { owned, local_index } = ReducePartition::new(n, reduce_shards);

        // The cleanup-on-drop guard lives on this stack frame: a panicking
        // worker unwinds through the thread scope and still removes the
        // spill dir and everything in it.
        let spill_dir = match self.config.spill {
            SpillMode::Off => None,
            _ => Some(SpillDir::create().expect("failed to create spill dir")),
        };
        let spill_dir_path = spill_dir.as_ref().map(|d| d.path().to_path_buf());

        // --- Map + reduce, overlapped; cached solutions replayed ---------
        let map_reduce_start_ns = telemetry.stamp();
        let map_reduce_start = Instant::now();
        let solutions = incremental.map(|_| Mutex::new(Vec::with_capacity(scheduled.len())));
        let attempts: Vec<AtomicU32> = (0..scheduled.len()).map(|_| AtomicU32::new(0)).collect();
        let abort = AtomicBool::new(false);
        let ctx = MapContext {
            queues: &queues,
            clusters,
            scheduled: &scheduled,
            hashes: plan.hashes(),
            solutions: solutions.as_ref(),
            sim,
            c2,
            threshold: c2.brute_force_threshold(),
            reduce_shards,
            spill: self.config.spill,
            spill_dir: spill_dir.as_ref(),
            attempts: &attempts,
            abort: &abort,
        };

        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        let mut reduce_outputs: Vec<(Vec<NeighborList>, ReduceStats)> =
            Vec::with_capacity(reduce_shards);
        let mut reused_entries = 0u64;
        std::thread::scope(|scope| {
            let (senders, receivers): (Vec<SyncSender<ShuffleMessage>>, Vec<_>) = (0
                ..reduce_shards)
                .map(|_| std::sync::mpsc::sync_channel(self.config.channel_capacity))
                .unzip();
            let reducer_handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(r, receiver)| {
                    let owned_users = &owned[r][..];
                    let local_index = &local_index[..];
                    scope.spawn(move || reduce_shard(r, receiver, owned_users, local_index, c2.k))
                })
                .collect();
            let worker_handles: Vec<_> = (0..workers)
                .map(|w| {
                    let senders = senders.clone();
                    let ctx = &ctx;
                    scope.spawn(move || map_worker(w, ctx, senders, false))
                })
                .collect();
            // Stage 4, cached half: replay reused partial lists into the
            // reduce stage while the map workers solve the dirty clusters
            // (the bounded-heap merge is order-independent, so mixing the
            // streams is safe; back-pressure on a full channel only slows
            // this replay loop, never deadlocks — the reducers keep
            // draining).
            for (_, solution) in &reused {
                let mut routed: Vec<Vec<(UserId, NeighborList)>> = vec![Vec::new(); reduce_shards];
                for (&user, list) in solution.users.iter().zip(&solution.lists) {
                    if !list.is_empty() {
                        routed[partition_of(user, reduce_shards)].push((user, list.clone()));
                    }
                }
                for (shard, entries) in routed.into_iter().enumerate() {
                    if entries.is_empty() {
                        continue;
                    }
                    reused_entries += entries.iter().map(|(_, l)| l.len() as u64).sum::<u64>();
                    senders[shard]
                        .send(ShuffleMessage::Chunk {
                            cluster_hash: solution.hash,
                            reused: true,
                            entries,
                        })
                        .expect("reducer hung up early");
                }
            }
            // Once a worker is done its spill streams are sealed; hand the
            // replay handles to the owning reducers, then hang up so the
            // channels close and the reducers can finish. A worker that
            // *unwound* (a cluster exhausted its solve attempts, or a
            // genuine bug) fails the whole build — but only after every
            // thread has joined and the leftover sweep is skipped, so the
            // unwind re-raised below is the build's single failure.
            let mut build_panic: Option<Box<dyn std::any::Any + Send>> = None;
            let deliver = |(stats, spill_files): (WorkerStats, Vec<Option<FinishedSpill>>),
                           worker_stats: &mut Vec<WorkerStats>| {
                worker_stats.push(stats);
                for (shard, file) in spill_files.into_iter().enumerate() {
                    if let Some(file) = file {
                        senders[shard]
                            .send(ShuffleMessage::Spill(file.path))
                            .expect("reducer hung up early");
                    }
                }
            };
            for handle in worker_handles {
                match handle.join() {
                    Ok(output) => deliver(output, &mut worker_stats),
                    Err(payload) => build_panic = Some(payload),
                }
            }
            // Dead workers (panic budget spent) may have left clusters
            // behind that nobody stole; sweep them on this thread through
            // the reserved recovery lane — forced stealing, so the sweep
            // works even under `StealPolicy::Disabled` or with zero
            // surviving workers.
            if build_panic.is_none() && queues.any_remaining() {
                match catch_unwind(AssertUnwindSafe(|| {
                    map_worker(queues.recovery_lane(), &ctx, senders.clone(), true)
                })) {
                    Ok(output) => deliver(output, &mut worker_stats),
                    Err(payload) => build_panic = Some(payload),
                }
            }
            drop(senders);
            if let Some(payload) = build_panic {
                // Reducers drain their closed channels and finish; the
                // scope joins them as this unwinds.
                resume_unwind(payload);
            }
            for handle in reducer_handles {
                reduce_outputs.push(handle.join().expect("reducer panicked"));
            }
        });
        drop(spill_dir); // all spill files removed before the build returns

        // --- Assembly: concatenate the reduce partitions -----------------
        let mut graph = KnnGraph::new(n, c2.k);
        let mut shuffle_entries = 0u64;
        let mut reducer_stats: Vec<ReduceStats> = Vec::with_capacity(reduce_shards);
        for (r, (lists, stats)) in reduce_outputs.into_iter().enumerate() {
            shuffle_entries += stats.entries - stats.reused_entries;
            for (&user, list) in owned[r].iter().zip(lists) {
                *graph.neighbors_mut(user) = list;
            }
            reducer_stats.push(stats);
        }
        let map_reduce_wall = map_reduce_start.elapsed();

        // The next build's cache: reused solutions carried over, fresh
        // ones collected from the map workers.
        let extra = solutions.map(|fresh| {
            let (cache, rebuild) = ClusterCache::assemble(
                c2,
                &reused,
                fresh.into_inner(),
                start.elapsed().as_secs_f64() * 1e3,
            );
            debug_assert_eq!(cache.len(), clusters.len());
            (cache, rebuild)
        });

        let report = RuntimeReport {
            num_clusters: scheduled.len(),
            clusters_total: clusters.len(),
            num_users: n,
            plan: deploy,
            workers: worker_stats,
            reducers: reducer_stats,
            shuffle_entries,
            reused_entries,
            spill: self.config.spill,
            spill_dir: spill_dir_path,
            splits,
            comparisons: sim.comparisons() - comparisons_before,
            clustering_wall,
            map_reduce_wall,
            total_wall: start.elapsed(),
        };
        if cfg!(debug_assertions) {
            report.check_invariants().expect("runtime report accounting violated");
        }
        // Stage spans, synthesized from the joined stats so span durations
        // and the report are fed by the identical values. Built for the
        // debug cross-check even when telemetry is off; published (with
        // the stage counters) only when it is on.
        if telemetry.enabled() || cfg!(debug_assertions) {
            let records = stage_span_records(telemetry, &report, map_reduce_start_ns);
            if cfg!(debug_assertions) {
                report
                    .check_telemetry(&records)
                    .expect("synthesized telemetry spans drifted from the report");
            }
            if telemetry.enabled() {
                let parent = telemetry.collector().record_complete(
                    "build.map_reduce",
                    map_reduce_start_ns,
                    map_reduce_wall.as_nanos() as u64,
                    vec![
                        ("shuffle_entries", report.shuffle_entries),
                        ("reused_entries", report.reused_entries),
                    ],
                );
                for mut record in records {
                    record.parent = parent;
                    telemetry.submit(record);
                }
                telemetry.counter("cnc_build_comparisons_total", &[]).add(report.comparisons);
                telemetry.counter("cnc_shuffle_entries_total", &[]).add(report.shuffle_entries);
                telemetry.counter("cnc_spill_bytes_total", &[]).add(report.total_spill_bytes());
                telemetry.counter("cnc_steals_total", &[]).add(report.stolen_clusters() as u64);
            }
        }
        (ShardedResult { graph, report }, extra)
    }
}

/// One `map.worker` span per worker and one `reduce.shard` span per
/// reducer, synthesized from the joined stats: durations and comparison
/// attributions ARE the stats' values (not independently re-measured), so
/// [`RuntimeReport::check_telemetry`]'s exact equalities hold by
/// construction — the debug assert catches any future drift between the
/// two accounts. Synthetic thread ids keep worker and reducer lanes apart
/// in a Perfetto view.
fn stage_span_records(
    telemetry: &Telemetry,
    report: &RuntimeReport,
    start_ns: u64,
) -> Vec<SpanRecord> {
    let mut records = Vec::with_capacity(report.workers.len() + report.reducers.len());
    for w in &report.workers {
        records.push(SpanRecord {
            name: "map.worker",
            id: telemetry.next_span_id(),
            parent: 0,
            thread: 1_000 + w.worker as u64,
            start_ns,
            dur_ns: w.busy.as_nanos() as u64,
            attrs: vec![
                ("comparisons", w.comparisons),
                ("shuffle_entries", w.shuffle_entries),
                ("spilled_bytes", w.spilled_bytes),
                ("stolen", w.stolen as u64),
                ("clusters", w.clusters.len() as u64),
            ],
        });
    }
    for r in &report.reducers {
        records.push(SpanRecord {
            name: "reduce.shard",
            id: telemetry.next_span_id(),
            parent: 0,
            thread: 2_000 + r.shard as u64,
            start_ns,
            dur_ns: r.busy.as_nanos() as u64,
            attrs: vec![("entries", r.entries), ("spilled_bytes", r.spilled_bytes)],
        });
    }
    records
}

/// The fingerprint-set validation [`Runtime::execute_shared`] and
/// [`Runtime::execute_incremental_shared`] share.
///
/// # Panics
/// Panics if the fingerprints don't cover `dataset`'s users, or if
/// `c2.backend` is not the GoldFinger configuration the shared build was
/// made with — a silent mismatch would produce a graph inconsistent with
/// the configuration the plan and report claim.
fn validate_shared(dataset: &Dataset, c2: &C2Config, goldfinger: &GoldFinger) {
    assert_eq!(
        goldfinger.num_users(),
        dataset.num_users(),
        "shared fingerprints must cover the dataset"
    );
    match c2.backend {
        cnc_similarity::SimilarityBackend::GoldFinger { bits, seed } => assert_eq!(
            (bits, seed),
            (goldfinger.bits(), goldfinger.seed()),
            "shared fingerprints must match the configured backend"
        ),
        cnc_similarity::SimilarityBackend::Raw => {
            panic!("execute_shared requires a GoldFinger backend, config says Raw")
        }
    }
}

/// The stable stream identity `(worker, shard)` presents to the fault
/// registry — the recovery lane reuses dead workers' indices never, so
/// the hash stays collision-free across a build.
fn spill_fault_base(worker: usize, shard: usize) -> u64 {
    ((worker as u64) << 32 | shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One map shard: drain own queue largest-first, then steal, then hang up.
/// Returns the worker's stats and its sealed spill streams (one slot per
/// reduce shard).
///
/// Failure handling, from the inside out:
/// * each cluster solve runs under `catch_unwind`; a panicking solve
///   (injected at `solve.cluster`, or genuine) is **requeued** at the
///   front of this worker's queue, bounded by [`MAX_SOLVE_ATTEMPTS`]
///   failed attempts per cluster per build — exhaustion aborts the build
///   by re-raising the final payload;
/// * a worker that catches [`WORKER_PANIC_BUDGET`] panics is declared
///   *dead* and returns early; its remaining queue stays claimable by
///   stealing peers and, failing that, the orchestrator's recovery lane
///   (`recovery = true`, which steals even under `StealPolicy::Disabled`
///   and never dies — only the attempts bound stops it);
/// * a spill stream whose create/append exhausts its internal retries is
///   marked broken and the traffic **reroutes through the in-memory
///   channel** — the graph is transport-independent, so degrading the
///   route never changes the result.
fn map_worker(
    worker: usize,
    ctx: &MapContext<'_>,
    senders: Vec<SyncSender<ShuffleMessage>>,
    recovery: bool,
) -> (WorkerStats, Vec<Option<FinishedSpill>>) {
    let mut stats = WorkerStats {
        worker,
        clusters: Vec::new(),
        busy: Duration::ZERO,
        solved_cost: 0,
        shuffle_entries: 0,
        spilled_entries: 0,
        spilled_bytes: 0,
        stolen: 0,
        comparisons: 0,
        requeued: 0,
        spill_rerouted: 0,
    };
    // Per-algorithm solve-latency histograms, resolved once per worker
    // (never in the cluster loop) and only when telemetry is on.
    let telemetry = Telemetry::global();
    let solve_hists = telemetry.enabled().then(|| {
        (
            telemetry.histogram("cnc_cluster_solve_ns", &[("algo", "brute")]),
            telemetry.histogram("cnc_cluster_solve_ns", &[("algo", "greedy")]),
        )
    });
    // Per reduce shard: encoded bytes shipped so far (drives `Auto`),
    // the lazily-created spill stream, and whether the stream has been
    // declared broken (hard create/append failure → route in memory).
    let mut shipped_bytes: Vec<u64> = vec![0; ctx.reduce_shards];
    let mut spills: Vec<Option<SpillWriter>> = (0..ctx.reduce_shards).map(|_| None).collect();
    let mut spill_broken: Vec<bool> = vec![false; ctx.reduce_shards];
    // Clusters this worker lifted from a peer (half-queue steals park the
    // batch's tail in the own queue; marking attributes them when popped).
    let mut stolen_mark: Vec<bool> = vec![false; ctx.scheduled.len()];
    // Caught solve panics so far — the worker's life budget.
    let mut caught = 0u32;
    let faults = Faults::global();
    loop {
        if ctx.abort.load(Ordering::Relaxed) {
            break; // another worker exhausted a cluster's attempts
        }
        let (cluster, stolen) = match ctx.queues.pop_own(worker) {
            Some(c) => (c, stolen_mark[c]),
            None => {
                let lifted = if recovery {
                    ctx.queues.steal_forced(worker)
                } else {
                    ctx.queues.steal(worker)
                };
                match lifted {
                    Some((first, queued)) => {
                        for c in queued {
                            stolen_mark[c] = true;
                        }
                        (first, true)
                    }
                    None => break,
                }
            }
        };
        let busy_start = Instant::now();
        let global = ctx.scheduled[cluster];
        let users = &ctx.clusters[global];
        let cluster_hash = ctx.hashes.get(global).copied().unwrap_or(0);
        // Algorithm 2: brute force for small clusters, Hyrec above the
        // ρ·k² crossover — the shared dispatch of `cnc_baselines::local`,
        // exactly the single-process pipeline's branch. Seeds key off the
        // *global* cluster index, so a subset schedule solves every
        // cluster identically to a full one.
        //
        // The solve is panic-isolated. The injection fires *before* the
        // solver touches anything and the solver is pure (its only output
        // is the return value), so a caught attempt leaves no partial
        // state: re-executing elsewhere yields the identical lists, and
        // failed attempts burn zero comparisons.
        let solved = catch_unwind(AssertUnwindSafe(|| {
            if faults.armed() {
                faults.panic_on(Site::SolveCluster, global as u64);
            }
            local::solve_cluster_partial(
                users,
                ctx.sim,
                ctx.c2.k,
                ctx.threshold,
                ctx.c2.rho,
                ctx.c2.delta,
                ClusterAndConquer::job_seed(ctx.c2, global),
            )
        }));
        let (lists, comparisons) = match solved {
            Ok(output) => output,
            Err(payload) => {
                stats.busy += busy_start.elapsed();
                let failures = ctx.attempts[cluster].fetch_add(1, Ordering::Relaxed) + 1;
                if failures >= MAX_SOLVE_ATTEMPTS {
                    // Out of budget: fail the whole build with the final
                    // payload (typed `InjectedPanic` under injection, the
                    // genuine payload otherwise). The layer above — the
                    // serving writer — keeps its last good epoch and
                    // retries the publish.
                    ctx.abort.store(true, Ordering::Relaxed);
                    resume_unwind(payload);
                }
                if stolen {
                    stolen_mark[cluster] = true;
                }
                stats.requeued += 1;
                ctx.queues.requeue(worker, cluster);
                caught += 1;
                if telemetry.enabled() {
                    telemetry.counter("cnc_requeued_clusters_total", &[]).add(1);
                }
                if !recovery && caught >= WORKER_PANIC_BUDGET {
                    // This worker is dead. Its queue (including the
                    // cluster just requeued) outlives it: peers steal it,
                    // the recovery lane sweeps the rest.
                    if telemetry.enabled() {
                        telemetry.counter("cnc_worker_deaths_total", &[]).add(1);
                    }
                    break;
                }
                continue;
            }
        };
        stats.comparisons += comparisons;
        if let Some((brute, greedy)) = &solve_hists {
            let hist = if users.len() >= ctx.threshold { greedy } else { brute };
            hist.record(busy_start.elapsed().as_nanos() as u64);
        }
        // Incremental builds keep the solve as a cache-keyed solution for
        // the next epoch (the lists are cloned: one copy rides the shuffle,
        // one lives in the cache).
        if let Some(sink) = ctx.solutions {
            sink.lock().push(ClusterSolution {
                hash: cluster_hash,
                users: users.clone(),
                seed: ClusterAndConquer::job_seed(ctx.c2, global),
                lists: lists.clone(),
                comparisons,
            });
        }
        // Hash-partition the cluster's output by owning reduce shard.
        let mut routed: Vec<Vec<(UserId, NeighborList)>> = vec![Vec::new(); ctx.reduce_shards];
        for (&user, list) in users.iter().zip(lists) {
            if !list.is_empty() {
                routed[partition_of(user, ctx.reduce_shards)].push((user, list));
            }
        }
        stats.clusters.push(cluster);
        stats.solved_cost += ctx.queues.costs[cluster];
        stats.stolen += usize::from(stolen);
        // Route each shard's batch: spill (map work, on the busy clock) or
        // channel. Channel sends happen after the clock stops — blocking
        // on a full channel is reducer back-pressure, not map work, and
        // must not inflate `measured_speedup`.
        let mut to_send: Vec<(usize, Vec<(UserId, NeighborList)>)> = Vec::new();
        for (shard, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let batch_entries: u64 = batch.iter().map(|(_, l)| l.len() as u64).sum();
            let batch_bytes: u64 = batch.iter().map(|(_, l)| encoded_len(l)).sum();
            stats.shuffle_entries += batch_entries;
            let spill_now = match ctx.spill {
                SpillMode::Off => false,
                SpillMode::Always => true,
                SpillMode::Auto(threshold) => shipped_bytes[shard] + batch_bytes > threshold,
            };
            shipped_bytes[shard] += batch_bytes;
            if !spill_now {
                to_send.push((shard, batch));
                continue;
            }
            if spill_broken[shard] {
                // The stream died earlier; keep degrading to the channel.
                stats.spill_rerouted += batch.len() as u64;
                to_send.push((shard, batch));
                continue;
            }
            let dir = ctx.spill_dir.expect("spill requested without a spill dir");
            if spills[shard].is_none() {
                match SpillWriter::create(
                    dir.file_path(worker, shard),
                    spill_fault_base(worker, shard),
                ) {
                    Ok(writer) => spills[shard] = Some(writer),
                    Err(_) => spill_broken[shard] = true,
                }
            }
            let Some(writer) = spills[shard].as_mut() else {
                stats.spill_rerouted += batch.len() as u64;
                to_send.push((shard, batch));
                continue;
            };
            // Per-record accounting: a hard append failure (the writer's
            // own retry budget exhausted) keeps the committed prefix —
            // still perfectly replayable — and reroutes this record and
            // the batch's tail through the channel.
            let mut wrote = batch.len();
            for (i, (user, list)) in batch.iter().enumerate() {
                match writer.push(*user, cluster_hash, list) {
                    Ok(()) => {
                        stats.spilled_entries += list.len() as u64;
                        stats.spilled_bytes += encoded_len(list);
                    }
                    Err(_) => {
                        spill_broken[shard] = true;
                        wrote = i;
                        break;
                    }
                }
            }
            if wrote < batch.len() {
                stats.spill_rerouted += (batch.len() - wrote) as u64;
                to_send.push((shard, batch[wrote..].to_vec()));
            }
        }
        stats.busy += busy_start.elapsed();
        for (shard, batch) in to_send {
            senders[shard]
                .send(ShuffleMessage::Chunk { cluster_hash, reused: false, entries: batch })
                .expect("reducer hung up early");
        }
    }
    // A seal failure is not recoverable by rerouting — records already
    // committed to the stream would silently vanish from the merge — so
    // it fails the build; the invariant checks would catch the loss, this
    // panic just names the cause first. (Injected faults never fire here:
    // `finish` only flushes, and every append was already durable or
    // rerouted.)
    let finished: Vec<Option<FinishedSpill>> = spills
        .into_iter()
        .map(|w| w.map(|w| w.finish().unwrap_or_else(|e| panic!("spill seal failed: {e}"))))
        .collect();
    (stats, finished)
}

/// One reduce shard: Algorithm 3's bounded-heap merge over the shard's
/// user partition, running concurrently with the map phase. Channel chunks
/// arrive while mapping; spill replay handles arrive once the map phase is
/// over. Returns the partition's lists (in `owned` order) and the shard's
/// stats.
///
/// Failure handling: each received message passes a `reduce.shard`
/// injection gate *before* any of it is merged, and an injected panic
/// there is caught and retried under backoff — merge state is never
/// partially applied, so the retry is exact. Spill replays go through
/// [`replay_spill`], which retries IO failures internally and buffers the
/// whole file before a single record is merged. Only a genuine persistent
/// failure (typed [`ShuffleError`](crate::ShuffleError)) fails the build.
fn reduce_shard(
    shard: usize,
    receiver: Receiver<ShuffleMessage>,
    owned: &[UserId],
    local_index: &[u32],
    k: usize,
) -> (Vec<NeighborList>, ReduceStats) {
    let mut lists: Vec<NeighborList> = vec![NeighborList::new(k); owned.len()];
    let mut stats = ReduceStats {
        shard,
        users: owned.len(),
        entries: 0,
        reused_entries: 0,
        spilled_entries: 0,
        spilled_bytes: 0,
        busy: Duration::ZERO,
    };
    let faults = Faults::global();
    for (ordinal, message) in receiver.into_iter().enumerate() {
        if faults.armed() {
            // One key per (shard, message): the budget drains across
            // retries, so the gate always opens.
            let key = (shard as u64) << 48 | ordinal as u64;
            let mut attempt = 0u32;
            while cnc_faults::catch_injected(|| faults.panic_on(Site::ReduceShard, key)).is_err() {
                note_retry("reduce.shard");
                cnc_faults::backoff(attempt, 10, 1_000);
                attempt += 1;
            }
        }
        let busy_start = Instant::now();
        match message {
            ShuffleMessage::Chunk { cluster_hash, reused, entries } => {
                // Reused chunks are replayed from a fingerprinted build's
                // cache, so they always carry a real content hash; fresh
                // chunks carry 0 when the build never fingerprinted. The
                // hash otherwise rides along as per-record provenance
                // (mirrored in the spill codec) for multi-process
                // consumers of the stream.
                debug_assert!(!reused || cluster_hash != 0, "reused chunk without a hash");
                for (user, partial) in &entries {
                    stats.entries += partial.len() as u64;
                    stats.reused_entries += u64::from(reused) * partial.len() as u64;
                    lists[local_index[*user as usize] as usize].merge(partial);
                }
            }
            ShuffleMessage::Spill(path) => {
                let records =
                    replay_spill(&path, k).unwrap_or_else(|e| panic!("spill replay failed: {e}"));
                for (user, _cluster_hash, partial) in records {
                    stats.entries += partial.len() as u64;
                    stats.spilled_entries += partial.len() as u64;
                    stats.spilled_bytes += encoded_len(&partial);
                    lists[local_index[user as usize] as usize].merge(&partial);
                }
            }
        }
        stats.busy += busy_start.elapsed();
    }
    (lists, stats)
}

/// Sharded construction as a method on [`ClusterAndConquer`].
///
/// Lives here (not in `cnc-core`) because the runtime depends on the core
/// crate; importing this trait — or the facade prelude, which re-exports
/// it — makes `builder.build_sharded(&dataset, &runtime_config)` available.
pub trait ShardedBuild {
    /// Builds the KNN graph on `runtime.workers` map-reduce shards.
    fn build_sharded(&self, dataset: &Dataset, runtime: &RuntimeConfig) -> ShardedResult;
}

impl ShardedBuild for ClusterAndConquer {
    fn build_sharded(&self, dataset: &Dataset, runtime: &RuntimeConfig) -> ShardedResult {
        Runtime::new(*runtime).execute(dataset, self.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;
    use cnc_similarity::SimilarityBackend;

    fn test_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::small(77);
        cfg.num_users = 500;
        cfg.num_items = 400;
        cfg.communities = 8;
        cfg.mean_profile = 25.0;
        cfg.min_profile = 8;
        cfg.generate()
    }

    fn test_config() -> C2Config {
        C2Config {
            k: 8,
            b: 64,
            t: 3,
            max_cluster_size: 120,
            backend: SimilarityBackend::Raw,
            seed: 41,
            threads: 1,
            ..C2Config::default()
        }
    }

    #[test]
    fn sharded_graph_equals_single_process_graph() {
        let ds = test_dataset();
        let single = ClusterAndConquer::new(test_config()).build(&ds);
        for workers in [1usize, 3] {
            let sharded =
                Runtime::new(RuntimeConfig::with_workers(workers)).execute(&ds, &test_config());
            for u in ds.users() {
                assert_eq!(
                    sharded.graph.neighbors(u).sorted(),
                    single.graph.neighbors(u).sorted(),
                    "user {u} differs with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn every_cluster_is_executed_exactly_once() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(4)).execute(&ds, &test_config());
        let mut executed: Vec<usize> =
            result.report.workers.iter().flat_map(|w| w.clusters.iter().copied()).collect();
        executed.sort_unstable();
        let expected: Vec<usize> = (0..result.report.num_clusters).collect();
        assert_eq!(executed, expected);
    }

    #[test]
    fn disabled_stealing_executes_the_plan_verbatim() {
        let ds = test_dataset();
        let config =
            RuntimeConfig { workers: 4, steal: StealPolicy::Disabled, ..RuntimeConfig::default() };
        let result = Runtime::new(config).execute(&ds, &test_config());
        assert_eq!(result.report.stolen_clusters(), 0);
        let executed = result.report.executed_assignments();
        for (w, planned) in result.report.plan.assignments.iter().enumerate() {
            let mut planned = planned.clone();
            planned.sort_unstable();
            assert_eq!(executed[w], planned, "worker {w} deviated from the plan");
        }
    }

    #[test]
    fn measured_shuffle_matches_predicted_merge_traffic() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(3)).execute(&ds, &test_config());
        assert_eq!(result.report.shuffle_entries, result.report.plan.merge_traffic);
        let sent: u64 = result.report.workers.iter().map(|w| w.shuffle_entries).sum();
        assert_eq!(sent, result.report.shuffle_entries, "sent and received entries differ");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let ds = test_dataset();
        let result = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        let report = &result.report;
        report.check_invariants().unwrap();
        assert!(report.comparisons > 0);
        assert!(report.total_wall >= report.map_reduce_wall);
        assert!(report.measured_speedup() >= 1.0 - 1e-9);
        assert!(report.measured_imbalance() >= 1.0 - 1e-9);
        let solved: u64 = report.workers.iter().map(|w| w.solved_cost).sum();
        assert_eq!(solved, report.plan.total_cost());
    }

    #[test]
    fn tiny_channel_capacity_still_completes() {
        let ds = test_dataset();
        let config = RuntimeConfig { workers: 3, channel_capacity: 1, ..RuntimeConfig::default() };
        let single = ClusterAndConquer::new(test_config()).build(&ds);
        let sharded = Runtime::new(config).execute(&ds, &test_config());
        for u in ds.users() {
            assert_eq!(sharded.graph.neighbors(u).sorted(), single.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::from_profiles(vec![], 0);
        let result = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        assert_eq!(result.graph.num_users(), 0);
        assert_eq!(result.report.shuffle_entries, 0);
        assert_eq!(result.report.num_clusters, 0);
        result.report.check_invariants().unwrap();
    }

    #[test]
    fn build_sharded_extension_matches_runtime_execute() {
        let ds = test_dataset();
        let builder = ClusterAndConquer::new(test_config());
        let via_trait = builder.build_sharded(&ds, &RuntimeConfig::with_workers(2));
        let via_engine = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        for u in ds.users() {
            assert_eq!(
                via_trait.graph.neighbors(u).sorted(),
                via_engine.graph.neighbors(u).sorted()
            );
        }
    }

    #[test]
    fn reduce_partition_covers_every_user_once() {
        let ds = test_dataset();
        let config = RuntimeConfig { workers: 2, reduce_shards: 3, ..RuntimeConfig::default() };
        let result = Runtime::new(config).execute(&ds, &test_config());
        assert_eq!(result.report.reducers.len(), 3);
        let covered: usize = result.report.reducers.iter().map(|r| r.users).sum();
        assert_eq!(covered, ds.num_users());
        result.report.check_invariants().unwrap();
    }

    #[test]
    fn always_spill_routes_all_traffic_through_files() {
        let ds = test_dataset();
        let config = RuntimeConfig {
            workers: 2,
            reduce_shards: 2,
            spill: SpillMode::Always,
            ..RuntimeConfig::default()
        };
        let single = ClusterAndConquer::new(test_config()).build(&ds);
        let result = Runtime::new(config).execute(&ds, &test_config());
        let report = &result.report;
        report.check_invariants().unwrap();
        assert_eq!(report.total_spill_entries(), report.shuffle_entries);
        assert!(report.total_spill_bytes() > 0);
        for u in ds.users() {
            assert_eq!(result.graph.neighbors(u).sorted(), single.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn auto_spill_threshold_splits_the_stream() {
        let ds = test_dataset();
        let base = RuntimeConfig { workers: 2, reduce_shards: 2, ..RuntimeConfig::default() };

        // A zero-byte budget spills everything…
        let all = Runtime::new(RuntimeConfig { spill: SpillMode::Auto(0), ..base })
            .execute(&ds, &test_config());
        assert_eq!(all.report.total_spill_entries(), all.report.shuffle_entries);

        // …an unlimited budget spills nothing…
        let none = Runtime::new(RuntimeConfig { spill: SpillMode::Auto(u64::MAX), ..base })
            .execute(&ds, &test_config());
        assert_eq!(none.report.total_spill_entries(), 0);
        assert_eq!(none.report.total_spill_bytes(), 0);

        // …and a mid-range budget sends the head in memory, the tail to
        // disk. Small clusters keep each batch well under the budget, so
        // the switch happens mid-stream rather than on the first batch.
        let c2 = C2Config { max_cluster_size: 40, ..test_config() };
        let mid =
            Runtime::new(RuntimeConfig { spill: SpillMode::Auto(2_048), ..base }).execute(&ds, &c2);
        let spilled = mid.report.total_spill_entries();
        assert!(spilled > 0, "2 KiB per stream must overflow on this workload");
        assert!(mid.report.total_spill_bytes() > 0);
        assert!(spilled < mid.report.shuffle_entries, "some head entries must stay in memory");
        mid.report.check_invariants().unwrap();
    }

    #[test]
    fn spill_dir_is_gone_after_the_build() {
        let ds = test_dataset();
        let config = RuntimeConfig {
            workers: 2,
            reduce_shards: 2,
            spill: SpillMode::Always,
            ..RuntimeConfig::default()
        };
        let result = Runtime::new(config).execute(&ds, &test_config());
        let dir = result.report.spill_dir.as_ref().expect("spilling build must record its dir");
        assert!(
            !dir.exists(),
            "spill dir {} must be removed before the build returns",
            dir.display()
        );

        // A non-spilling build never creates one.
        let off = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        assert!(off.report.spill_dir.is_none());
    }

    #[test]
    fn shared_fingerprints_produce_the_identical_graph() {
        let ds = test_dataset();
        let c2 = C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 77 },
            ..test_config()
        };
        let rebuilt = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &c2);
        // One fingerprint build, shared across two further runs.
        let gf = Arc::new(GoldFinger::build(&ds, 1024, 77));
        for workers in [1usize, 2] {
            let shared = Runtime::new(RuntimeConfig::with_workers(workers)).execute_shared(
                &ds,
                &c2,
                Arc::clone(&gf),
            );
            assert_eq!(shared.report.comparisons, rebuilt.report.comparisons);
            for u in ds.users() {
                assert_eq!(
                    shared.graph.neighbors(u).sorted(),
                    rebuilt.graph.neighbors(u).sorted(),
                    "user {u} differs with shared fingerprints ({workers} workers)"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must cover the dataset")]
    fn mismatched_shared_fingerprints_panic() {
        let ds = test_dataset();
        let c2 = C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 64, seed: 1 },
            ..test_config()
        };
        let tiny = Dataset::from_profiles(vec![vec![1, 2]], 0);
        let gf = Arc::new(GoldFinger::build(&tiny, 64, 1));
        Runtime::new(RuntimeConfig::with_workers(1)).execute_shared(&ds, &c2, gf);
    }

    #[test]
    #[should_panic(expected = "must match the configured backend")]
    fn wrong_seed_shared_fingerprints_panic() {
        let ds = test_dataset();
        let c2 = C2Config {
            backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 1 },
            ..test_config()
        };
        // Same dataset and width, different hash seed: silently wrong
        // similarities unless the engine refuses.
        let gf = Arc::new(GoldFinger::build(&ds, 1024, 2));
        Runtime::new(RuntimeConfig::with_workers(1)).execute_shared(&ds, &c2, gf);
    }

    #[test]
    #[should_panic(expected = "requires a GoldFinger backend")]
    fn raw_backend_shared_fingerprints_panic() {
        let ds = test_dataset();
        let gf = Arc::new(GoldFinger::build(&ds, 64, 1));
        Runtime::new(RuntimeConfig::with_workers(1)).execute_shared(&ds, &test_config(), gf);
    }

    #[test]
    #[should_panic(expected = "invalid RuntimeConfig")]
    fn invalid_runtime_config_panics() {
        Runtime::new(RuntimeConfig { channel_capacity: 0, ..RuntimeConfig::default() });
    }

    #[test]
    fn steal_takes_half_of_the_most_loaded_queue() {
        // Worker 0 owns five clusters in decreasing-cost order; worker 1
        // is idle and steals.
        let plan = DeploymentPlan {
            assignments: vec![vec![0, 1, 2, 3, 4], vec![]],
            worker_costs: vec![50, 0],
            merge_traffic: 0,
        };
        let queues = JobQueues::new(&plan, vec![20, 10, 8, 7, 5], StealPolicy::MostLoaded);
        let (first, queued) = queues.steal(1).expect("loaded peer must yield work");
        // The victim keeps its larger front half {0, 1}; the stolen tail
        // {2, 3, 4} yields its largest (2) for immediate execution and
        // parks the rest on the thief, still largest-first.
        assert_eq!(first, 2);
        assert_eq!(queued, vec![3, 4]);
        assert_eq!(queues.pop_own(1), Some(3));
        assert_eq!(queues.pop_own(1), Some(4));
        assert_eq!(queues.pop_own(1), None);
        assert_eq!(queues.pop_own(0), Some(0));
        assert_eq!(queues.pop_own(0), Some(1));
        assert_eq!(queues.pop_own(0), None);
        // Counters drained exactly: nothing left to steal in either
        // direction (a leak here would hang the old one-cluster protocol).
        assert!(queues.steal(0).is_none());
        assert!(queues.steal(1).is_none());
    }

    #[test]
    fn steal_of_a_single_cluster_queue_takes_it_whole() {
        let plan = DeploymentPlan {
            assignments: vec![vec![0], vec![]],
            worker_costs: vec![9, 0],
            merge_traffic: 0,
        };
        let queues = JobQueues::new(&plan, vec![9], StealPolicy::MostLoaded);
        let (first, queued) = queues.steal(1).unwrap();
        assert_eq!((first, queued), (0, vec![]));
        assert_eq!(queues.pop_own(0), None);
        assert!(queues.steal(0).is_none());
    }

    #[test]
    fn incremental_with_empty_cache_matches_a_from_scratch_build() {
        let ds = test_dataset();
        let c2 = test_config();
        let runtime = Runtime::new(RuntimeConfig::with_workers(2));
        let scratch = runtime.execute(&ds, &c2);
        let empty = ClusterCache::new(&c2);
        let incr = runtime.execute_incremental(&ds, &c2, &empty, &[]);
        assert_eq!(incr.rebuild.clusters_resolved, incr.rebuild.clusters_total);
        assert_eq!(incr.rebuild.reuse_ratio, 0.0);
        assert_eq!(incr.report.reused_entries, 0);
        assert_eq!(incr.cache.len(), incr.rebuild.clusters_total);
        assert_eq!(incr.cache.total_comparisons(), scratch.report.comparisons);
        for u in ds.users() {
            assert_eq!(incr.graph.neighbors(u).sorted(), scratch.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn incremental_rebuild_reuses_unchanged_clusters_bit_identically() {
        let ds = test_dataset();
        let c2 = test_config();
        let runtime = Runtime::new(RuntimeConfig::with_workers(2));
        let base = runtime.execute_incremental(&ds, &c2, &ClusterCache::new(&c2), &[]);

        // Grow the dataset by a handful of users (clones of existing
        // profiles plus a twist), as the serving stream does.
        let mut profiles: Vec<Vec<u32>> = ds.iter().map(|(_, p)| p.to_vec()).collect();
        let n0 = profiles.len() as u32;
        for i in 0..5u32 {
            let mut p = profiles[(i as usize * 37) % profiles.len()].clone();
            p.push(390 + i);
            p.sort_unstable();
            p.dedup();
            profiles.push(p);
        }
        let grown = Dataset::from_profiles(profiles, 0);
        let inserted: Vec<u32> = (n0..grown.num_users() as u32).collect();

        let full = runtime.execute(&grown, &c2);
        let incr = runtime.execute_incremental(&grown, &c2, &base.cache, &inserted);
        // Bit-identical graph, most clusters reused, and the comparison
        // accounting splits exactly: fresh (report) + cached = full.
        for u in grown.users() {
            assert_eq!(
                incr.graph.neighbors(u).sorted(),
                full.graph.neighbors(u).sorted(),
                "user {u} differs between incremental and from-scratch"
            );
        }
        assert!(
            incr.rebuild.reuse_ratio > 0.5,
            "only {:.2} of clusters reused after 5 inserts into {}",
            incr.rebuild.reuse_ratio,
            ds.num_users()
        );
        assert!(incr.report.reused_entries > 0);
        assert!(incr.report.comparisons < full.report.comparisons);
        assert_eq!(incr.cache.total_comparisons(), full.report.comparisons);
        assert_eq!(incr.cache.len(), incr.rebuild.clusters_total);
        incr.report.check_invariants().unwrap();
    }

    #[test]
    fn injected_solve_panics_recover_bit_identically() {
        let _serial = crate::fault_lock();
        cnc_faults::silence_injected_panics();
        let ds = test_dataset();
        let clean = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        let faults = Faults::global();
        for workers in [1usize, 3] {
            // Every cluster's solve panics 1–2 times (span 2 <
            // MAX_SOLVE_ATTEMPTS), so the build must survive purely via
            // catch + requeue — including through worker deaths, since
            // p=1.0 kills every worker after two catches.
            let plan =
                cnc_faults::FaultPlan::new(4242, 1.0).only(&[Site::SolveCluster]).with_span(2);
            let _guard = faults.arm(plan);
            let chaotic =
                Runtime::new(RuntimeConfig::with_workers(workers)).execute(&ds, &test_config());
            assert!(chaotic.report.requeued_clusters() > 0, "the schedule must have fired");
            chaotic.report.check_invariants().unwrap();
            for u in ds.users() {
                assert_eq!(
                    chaotic.graph.neighbors(u).sorted(),
                    clean.graph.neighbors(u).sorted(),
                    "user {u} differs under injected solve panics ({workers} workers)"
                );
            }
        }
    }

    #[test]
    fn dead_worker_clusters_are_swept_even_with_stealing_disabled() {
        let _serial = crate::fault_lock();
        cnc_faults::silence_injected_panics();
        let ds = test_dataset();
        let clean = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        let faults = Faults::global();
        let plan = cnc_faults::FaultPlan::new(11, 1.0).only(&[Site::SolveCluster]).with_span(1);
        let _guard = faults.arm(plan);
        // Both workers die after two caught panics each; with stealing
        // disabled only the orchestrator's recovery lane (which steals by
        // force) can claim their leftovers.
        let config =
            RuntimeConfig { workers: 2, steal: StealPolicy::Disabled, ..RuntimeConfig::default() };
        let chaotic = Runtime::new(config).execute(&ds, &test_config());
        chaotic.report.check_invariants().unwrap();
        assert_eq!(
            chaotic.report.workers.len(),
            3,
            "two dead workers plus the recovery lane must all report stats"
        );
        for u in ds.users() {
            assert_eq!(chaotic.graph.neighbors(u).sorted(), clean.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn exhausted_solve_attempts_abort_the_build_with_a_typed_panic() {
        let _serial = crate::fault_lock();
        cnc_faults::silence_injected_panics();
        let ds = test_dataset();
        let faults = Faults::global();
        // Span 12: most clusters draw a failure budget ≥ MAX_SOLVE_ATTEMPTS,
        // so some cluster must exhaust its attempts and fail the build with
        // the injected payload (the serving layer's rebuild-failure signal).
        let plan = cnc_faults::FaultPlan::new(7, 1.0).only(&[Site::SolveCluster]).with_span(12);
        let guard = faults.arm(plan);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config())
        }));
        drop(guard);
        let payload = outcome.expect_err("a span-12 schedule must exhaust some cluster");
        assert!(
            cnc_faults::is_injected_panic(payload.as_ref()),
            "the abort must re-raise the typed injected payload"
        );
    }

    #[test]
    fn injected_reduce_panics_are_absorbed_before_any_merge() {
        let _serial = crate::fault_lock();
        cnc_faults::silence_injected_panics();
        let ds = test_dataset();
        let clean = Runtime::new(RuntimeConfig::with_workers(2)).execute(&ds, &test_config());
        let faults = Faults::global();
        let plan = cnc_faults::FaultPlan::new(5, 1.0).only(&[Site::ReduceShard]).with_span(3);
        let _guard = faults.arm(plan);
        let config = RuntimeConfig { workers: 2, reduce_shards: 2, ..RuntimeConfig::default() };
        let chaotic = Runtime::new(config).execute(&ds, &test_config());
        assert!(faults.injected(Site::ReduceShard) > 0, "the schedule must have fired");
        chaotic.report.check_invariants().unwrap();
        for u in ds.users() {
            assert_eq!(chaotic.graph.neighbors(u).sorted(), clean.graph.neighbors(u).sorted());
        }
    }

    #[test]
    fn incremental_identical_dataset_reuses_everything() {
        let ds = test_dataset();
        let c2 = test_config();
        let runtime = Runtime::new(RuntimeConfig::with_workers(2));
        let base = runtime.execute_incremental(&ds, &c2, &ClusterCache::new(&c2), &[]);
        let again = runtime.execute_incremental(&ds, &c2, &base.cache, &[]);
        assert_eq!(again.rebuild.clusters_resolved, 0);
        assert_eq!(again.rebuild.reuse_ratio, 1.0);
        assert_eq!(again.report.comparisons, 0, "no fresh solves, no fresh comparisons");
        for u in ds.users() {
            assert_eq!(again.graph.neighbors(u).sorted(), base.graph.neighbors(u).sorted());
        }
    }
}
