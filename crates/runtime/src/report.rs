//! Measured execution reports — the counterpart of the *predicted*
//! [`DeploymentPlan`](cnc_core::DeploymentPlan).

use cnc_core::DeploymentPlan;
use std::time::Duration;

/// What one worker shard actually did.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The worker's index in `0..W`.
    pub worker: usize,
    /// Cluster indices solved by this worker, in execution order.
    pub clusters: Vec<usize>,
    /// Wall-clock time this worker spent solving and shipping clusters.
    pub busy: Duration,
    /// Predicted cost (Algorithm 2 similarity estimates) of the clusters
    /// this worker solved.
    pub solved_cost: u64,
    /// Reduce-phase entries `(user, neighbour, sim)` this worker shipped.
    pub shuffle_entries: u64,
    /// How many of `clusters` were stolen from another worker's queue.
    pub stolen: usize,
}

/// The measured record of one sharded build, paired with the plan that
/// drove it so predicted and measured figures can be compared directly.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The static LPT plan the run started from (predicted makespan,
    /// per-worker costs and shuffle volume live here).
    pub plan: DeploymentPlan,
    /// Per-worker measurements.
    pub workers: Vec<WorkerStats>,
    /// Entries `(user, neighbour, sim)` received by the reduce stage.
    pub shuffle_entries: u64,
    /// Number of clusters executed (across all workers).
    pub num_clusters: usize,
    /// Recursive splits performed during clustering.
    pub splits: usize,
    /// Similarity computations performed during the run.
    pub comparisons: u64,
    /// Wall-clock of Step 1 (clustering + fingerprint building).
    pub clustering_wall: Duration,
    /// Wall-clock of the overlapped map + reduce stages.
    pub map_reduce_wall: Duration,
    /// End-to-end wall-clock.
    pub total_wall: Duration,
}

impl RuntimeReport {
    /// The measured map-phase makespan: the busiest worker's busy time.
    pub fn measured_makespan(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).max().unwrap_or(Duration::ZERO)
    }

    /// Total busy time across all workers (the work a single worker would
    /// have had to serialize).
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Measured parallel speed-up of the map phase over a single worker
    /// (`total busy / makespan`, the measured analogue of
    /// [`DeploymentPlan::speedup`]; ≤ the worker count).
    pub fn measured_speedup(&self) -> f64 {
        let makespan = self.measured_makespan().as_secs_f64();
        if makespan == 0.0 {
            return 1.0;
        }
        self.total_busy().as_secs_f64() / makespan
    }

    /// Measured load imbalance: makespan over the ideal per-worker share
    /// (1.0 = perfectly balanced; the measured analogue of
    /// [`DeploymentPlan::imbalance`]).
    pub fn measured_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let ideal = self.total_busy().as_secs_f64() / self.workers.len() as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        self.measured_makespan().as_secs_f64() / ideal
    }

    /// Total clusters stolen across workers (0 under
    /// [`StealPolicy::Disabled`](crate::StealPolicy::Disabled)).
    pub fn stolen_clusters(&self) -> usize {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// The executed assignment as sorted cluster-index lists per worker —
    /// directly comparable with [`DeploymentPlan::assignments`] (which the
    /// engine also keeps sorted-insertion-free; sort before comparing).
    pub fn executed_assignments(&self) -> Vec<Vec<usize>> {
        self.workers
            .iter()
            .map(|w| {
                let mut c = w.clusters.clone();
                c.sort_unstable();
                c
            })
            .collect()
    }
}
