//! Measured execution reports — the counterpart of the *predicted*
//! [`DeploymentPlan`](cnc_core::DeploymentPlan).

use crate::config::SpillMode;
use cnc_core::DeploymentPlan;
use cnc_telemetry::SpanRecord;
use std::path::PathBuf;
use std::time::Duration;

/// What one worker shard actually did.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The worker's index in `0..W`.
    pub worker: usize,
    /// Cluster indices solved by this worker, in execution order.
    pub clusters: Vec<usize>,
    /// Wall-clock time this worker spent solving clusters and writing
    /// spill files (channel back-pressure excluded).
    pub busy: Duration,
    /// Predicted cost (Algorithm 2 similarity estimates) of the clusters
    /// this worker solved.
    pub solved_cost: u64,
    /// Reduce-phase entries `(user, neighbour, sim)` this worker shipped,
    /// through channels and spill files combined.
    pub shuffle_entries: u64,
    /// Of `shuffle_entries`, how many went through spill files.
    pub spilled_entries: u64,
    /// Encoded bytes this worker wrote to spill files.
    pub spilled_bytes: u64,
    /// How many of `clusters` were stolen from another worker's queue.
    pub stolen: usize,
    /// Solve attempts this worker caught panicking and returned to the
    /// queue for re-execution (0 without injected or genuine faults).
    pub requeued: u64,
    /// Partial-list records rerouted from a broken spill stream to the
    /// in-memory channel (0 unless a spill create/append hard-failed).
    pub spill_rerouted: u64,
    /// Similarity computations this worker's cluster solves performed —
    /// summed from the solver's *returned* counts, an accounting path
    /// independent of the oracle's atomic counter the report-level
    /// `comparisons` figure reads (their equality is an invariant).
    pub comparisons: u64,
}

/// What one reduce shard actually did.
#[derive(Clone, Debug)]
pub struct ReduceStats {
    /// The shard's index in `0..R`.
    pub shard: usize,
    /// Users this shard owns (its partition size).
    pub users: usize,
    /// Entries `(user, neighbour, sim)` merged, from channels and spill
    /// files combined — including reused (cache-replayed) entries.
    pub entries: u64,
    /// Of `entries`, how many came from a prior build's cluster cache
    /// rather than a fresh map-stage solve (incremental builds only).
    pub reused_entries: u64,
    /// Of `entries`, how many were replayed from spill files.
    pub spilled_entries: u64,
    /// Encoded spill bytes this shard replayed.
    pub spilled_bytes: u64,
    /// Wall-clock time spent decoding and merging (idle receive excluded).
    pub busy: Duration,
}

/// The measured record of one sharded build, paired with the plan that
/// drove it so predicted and measured figures can be compared directly.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The static LPT plan the run started from (predicted makespan,
    /// per-worker costs and shuffle volume live here).
    pub plan: DeploymentPlan,
    /// Per-worker measurements.
    pub workers: Vec<WorkerStats>,
    /// Per-reduce-shard measurements.
    pub reducers: Vec<ReduceStats>,
    /// Entries `(user, neighbour, sim)` the *map workers* shipped to the
    /// reduce stage (fresh solves only; reused cache entries are counted
    /// separately in [`RuntimeReport::reused_entries`]).
    pub shuffle_entries: u64,
    /// Entries replayed from a prior build's cluster cache straight into
    /// the reduce stage (0 for from-scratch builds).
    pub reused_entries: u64,
    /// The spill policy the run executed under.
    pub spill: SpillMode,
    /// The unique temp dir spill files were written to (`None` when the
    /// spill mode is [`SpillMode::Off`]). The dir is removed before the
    /// build returns, so this path records *where* the shuffle spilled,
    /// not a live location.
    pub spill_dir: Option<PathBuf>,
    /// Number of clusters *scheduled and executed* by the map workers
    /// (plan-local indices run over `0..num_clusters`). For a from-scratch
    /// build this is the whole clustering; an incremental build schedules
    /// only its dirty clusters.
    pub num_clusters: usize,
    /// Total clusters in the build's clustering (= `num_clusters` for
    /// from-scratch builds; `num_clusters + reused clusters` when
    /// incremental).
    pub clusters_total: usize,
    /// Number of users in the dataset (the partition total).
    pub num_users: usize,
    /// Recursive splits performed during clustering.
    pub splits: usize,
    /// Similarity computations performed during the run.
    pub comparisons: u64,
    /// Wall-clock of Step 1 (clustering + fingerprint building).
    pub clustering_wall: Duration,
    /// Wall-clock of the overlapped map + reduce stages.
    pub map_reduce_wall: Duration,
    /// End-to-end wall-clock.
    pub total_wall: Duration,
}

impl RuntimeReport {
    /// The measured map-phase makespan: the busiest worker's busy time.
    pub fn measured_makespan(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).max().unwrap_or(Duration::ZERO)
    }

    /// Total busy time across all workers (the work a single worker would
    /// have had to serialize).
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Measured parallel speed-up of the map phase over a single worker
    /// (`total busy / makespan`, the measured analogue of
    /// [`DeploymentPlan::speedup`]; ≤ the worker count).
    pub fn measured_speedup(&self) -> f64 {
        let makespan = self.measured_makespan().as_secs_f64();
        if makespan == 0.0 {
            return 1.0;
        }
        self.total_busy().as_secs_f64() / makespan
    }

    /// Measured load imbalance: makespan over the ideal per-worker share
    /// (1.0 = perfectly balanced; the measured analogue of
    /// [`DeploymentPlan::imbalance`]).
    pub fn measured_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let ideal = self.total_busy().as_secs_f64() / self.workers.len() as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        self.measured_makespan().as_secs_f64() / ideal
    }

    /// Total clusters stolen across workers (0 under
    /// [`StealPolicy::Disabled`](crate::StealPolicy::Disabled)).
    pub fn stolen_clusters(&self) -> usize {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Total solve attempts caught panicking and requeued for
    /// re-execution (0 on a fault-free run).
    pub fn requeued_clusters(&self) -> u64 {
        self.workers.iter().map(|w| w.requeued).sum()
    }

    /// Total spill records rerouted through the in-memory channel after a
    /// spill stream hard-failed (0 on a fault-free run).
    pub fn rerouted_spill_records(&self) -> u64 {
        self.workers.iter().map(|w| w.spill_rerouted).sum()
    }

    /// Fraction of the clustering's solves skipped via the cluster cache
    /// (0.0 for from-scratch builds).
    pub fn reuse_ratio(&self) -> f64 {
        if self.clusters_total == 0 {
            0.0
        } else {
            1.0 - self.num_clusters as f64 / self.clusters_total as f64
        }
    }

    /// The executed assignment as sorted cluster-index lists per worker —
    /// directly comparable with [`DeploymentPlan::assignments`] (which the
    /// engine also keeps sorted-insertion-free; sort before comparing).
    pub fn executed_assignments(&self) -> Vec<Vec<usize>> {
        self.workers
            .iter()
            .map(|w| {
                let mut c = w.clusters.clone();
                c.sort_unstable();
                c
            })
            .collect()
    }

    /// The reduce-phase makespan: the busiest reducer's busy time.
    pub fn reduce_makespan(&self) -> Duration {
        self.reducers.iter().map(|r| r.busy).max().unwrap_or(Duration::ZERO)
    }

    /// Total busy time across all reduce shards.
    pub fn total_reduce_busy(&self) -> Duration {
        self.reducers.iter().map(|r| r.busy).sum()
    }

    /// Parallel speed-up of the reduce stage over one reducer
    /// (`Σ reduce busy / reduce makespan`; ≤ the shard count). The figure
    /// PR 1's single reducer pinned at 1.0.
    pub fn reduce_speedup(&self) -> f64 {
        let makespan = self.reduce_makespan().as_secs_f64();
        if makespan == 0.0 {
            return 1.0;
        }
        self.total_reduce_busy().as_secs_f64() / makespan
    }

    /// Shuffle skew: the busiest shard's entry count over the ideal
    /// per-shard share (1.0 = perfectly even partitioning).
    pub fn shuffle_skew(&self) -> f64 {
        if self.reducers.is_empty() || self.shuffle_entries == 0 {
            return 1.0;
        }
        let ideal = self.shuffle_entries as f64 / self.reducers.len() as f64;
        let max = self.reducers.iter().map(|r| r.entries).max().unwrap_or(0);
        max as f64 / ideal
    }

    /// Encoded bytes that went through spill files (0 when the spill mode
    /// is [`SpillMode::Off`]).
    pub fn total_spill_bytes(&self) -> u64 {
        self.reducers.iter().map(|r| r.spilled_bytes).sum()
    }

    /// Entries that went through spill files.
    pub fn total_spill_entries(&self) -> u64 {
        self.reducers.iter().map(|r| r.spilled_entries).sum()
    }

    /// Cross-checks the report's own accounting. The engine asserts this
    /// in debug builds; the test suites assert it on every configuration.
    ///
    /// Invariants:
    /// * entries received by reducers = `shuffle_entries` (fresh, sent by
    ///   workers) + `reused_entries` (cache replays) — nothing lost or
    ///   duplicated in the shuffle;
    /// * every scheduled cluster in `0..num_clusters` was executed by
    ///   exactly one worker, and the executed cost sums to the plan's
    ///   total (the scheduling invariant work stealing must preserve);
    /// * per-shard user counts sum to `num_users` (the partition is a
    ///   total, disjoint cover);
    /// * spilled entries/bytes agree between the write side (workers) and
    ///   the replay side (reducers);
    /// * [`SpillMode::Off`] implies zero spill traffic;
    /// * per-worker comparison counts (the solvers' returned totals) sum
    ///   to the report's `comparisons` (the oracle's atomic delta) — two
    ///   independently fed accounts of the paper's primary cost metric.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sent: u64 = self.workers.iter().map(|w| w.shuffle_entries).sum();
        if sent != self.shuffle_entries {
            return Err(format!(
                "workers shipped {sent} entries, report says {}",
                self.shuffle_entries
            ));
        }
        let received: u64 = self.reducers.iter().map(|r| r.entries).sum();
        if received != self.shuffle_entries + self.reused_entries {
            return Err(format!(
                "reducers merged {received} entries, report says {} fresh + {} reused",
                self.shuffle_entries, self.reused_entries
            ));
        }
        let reused: u64 = self.reducers.iter().map(|r| r.reused_entries).sum();
        if reused != self.reused_entries {
            return Err(format!(
                "reducers attributed {reused} reused entries, report says {}",
                self.reused_entries
            ));
        }
        let mut executed: Vec<usize> =
            self.workers.iter().flat_map(|w| w.clusters.iter().copied()).collect();
        executed.sort_unstable();
        if executed.len() != self.num_clusters || executed.iter().enumerate().any(|(i, &c)| i != c)
        {
            return Err(format!(
                "workers executed {} clusters, schedule has {} (each exactly once)",
                executed.len(),
                self.num_clusters
            ));
        }
        let solved: u64 = self.workers.iter().map(|w| w.solved_cost).sum();
        if solved != self.plan.total_cost() {
            return Err(format!(
                "workers solved cost {solved}, plan totals {}",
                self.plan.total_cost()
            ));
        }
        if self.clusters_total < self.num_clusters {
            return Err(format!(
                "clusters_total {} below the {} scheduled",
                self.clusters_total, self.num_clusters
            ));
        }
        let users: usize = self.reducers.iter().map(|r| r.users).sum();
        if users != self.num_users {
            return Err(format!(
                "reduce partitions cover {users} users, dataset has {}",
                self.num_users
            ));
        }
        let written: (u64, u64) = self
            .workers
            .iter()
            .fold((0, 0), |(e, b), w| (e + w.spilled_entries, b + w.spilled_bytes));
        let replayed: (u64, u64) = self
            .reducers
            .iter()
            .fold((0, 0), |(e, b), r| (e + r.spilled_entries, b + r.spilled_bytes));
        if written != replayed {
            return Err(format!(
                "workers spilled {written:?} (entries, bytes), reducers replayed {replayed:?}"
            ));
        }
        if self.spill == SpillMode::Off && replayed != (0, 0) {
            return Err(format!("spill is Off but {replayed:?} (entries, bytes) were spilled"));
        }
        let worker_comparisons: u64 = self.workers.iter().map(|w| w.comparisons).sum();
        if worker_comparisons != self.comparisons {
            return Err(format!(
                "workers counted {worker_comparisons} comparisons, oracle counted {}",
                self.comparisons
            ));
        }
        Ok(())
    }

    /// Cross-checks the engine's synthesized telemetry spans against this
    /// report: `map.worker` / `reduce.shard` spans must carry exactly the
    /// busy times of [`RuntimeReport::total_busy`] /
    /// [`RuntimeReport::total_reduce_busy`] (the engine feeds both from
    /// the same `Duration` values, so equality is exact, not approximate),
    /// and the `comparisons` attributions must sum to the report's total.
    /// Debug-asserted by the engine on every build.
    pub fn check_telemetry(&self, records: &[SpanRecord]) -> Result<(), String> {
        let sum = |name: &str| -> u64 {
            records.iter().filter(|r| r.name == name).map(|r| r.dur_ns).sum()
        };
        let map_busy = sum("map.worker");
        if map_busy != self.total_busy().as_nanos() as u64 {
            return Err(format!(
                "map.worker spans carry {map_busy} ns, report total_busy is {} ns",
                self.total_busy().as_nanos()
            ));
        }
        let reduce_busy = sum("reduce.shard");
        if reduce_busy != self.total_reduce_busy().as_nanos() as u64 {
            return Err(format!(
                "reduce.shard spans carry {reduce_busy} ns, report total_reduce_busy is {} ns",
                self.total_reduce_busy().as_nanos()
            ));
        }
        let span_comparisons: u64 = records
            .iter()
            .filter(|r| r.name == "map.worker")
            .flat_map(|r| r.attrs.iter())
            .filter(|(k, _)| *k == "comparisons")
            .map(|(_, v)| v)
            .sum();
        if span_comparisons != self.comparisons {
            return Err(format!(
                "map.worker spans attribute {span_comparisons} comparisons, report says {}",
                self.comparisons
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal self-consistent report: 2 workers, 2 reduce shards,
    /// 10 users, 12 shuffled entries of which 5 (40 bytes) spilled.
    fn consistent_report() -> RuntimeReport {
        let worker = |worker, entries, spilled_entries, spilled_bytes| WorkerStats {
            worker,
            clusters: vec![worker],
            busy: Duration::from_millis(5),
            solved_cost: 10,
            shuffle_entries: entries,
            spilled_entries,
            spilled_bytes,
            stolen: 0,
            requeued: 0,
            spill_rerouted: 0,
            comparisons: 50,
        };
        let reducer = |shard, users, entries, spilled_entries, spilled_bytes| ReduceStats {
            shard,
            users,
            entries,
            reused_entries: 0,
            spilled_entries,
            spilled_bytes,
            busy: Duration::from_millis(3),
        };
        RuntimeReport {
            plan: DeploymentPlan {
                assignments: vec![vec![0], vec![1]],
                worker_costs: vec![10, 10],
                merge_traffic: 12,
            },
            workers: vec![worker(0, 7, 5, 40), worker(1, 5, 0, 0)],
            reducers: vec![reducer(0, 6, 8, 5, 40), reducer(1, 4, 4, 0, 0)],
            shuffle_entries: 12,
            reused_entries: 0,
            spill: SpillMode::Always,
            spill_dir: Some(PathBuf::from("/tmp/cnc-spill-test")),
            num_clusters: 2,
            clusters_total: 2,
            num_users: 10,
            splits: 0,
            comparisons: 100,
            clustering_wall: Duration::from_millis(1),
            map_reduce_wall: Duration::from_millis(8),
            total_wall: Duration::from_millis(9),
        }
    }

    #[test]
    fn consistent_report_passes_invariants() {
        consistent_report().check_invariants().unwrap();
    }

    #[test]
    fn reducer_entry_sum_must_equal_shuffle_entries() {
        let mut report = consistent_report();
        report.reducers[1].entries += 1;
        let err = report.check_invariants().unwrap_err();
        assert!(err.contains("reducers merged"), "{err}");
    }

    #[test]
    fn worker_sent_sum_must_equal_shuffle_entries() {
        let mut report = consistent_report();
        report.workers[0].shuffle_entries -= 1;
        let err = report.check_invariants().unwrap_err();
        assert!(err.contains("workers shipped"), "{err}");
    }

    #[test]
    fn per_shard_user_counts_must_sum_to_n() {
        let mut report = consistent_report();
        report.reducers[0].users += 1;
        let err = report.check_invariants().unwrap_err();
        assert!(err.contains("cover"), "{err}");
    }

    #[test]
    fn scheduling_invariant_catches_lost_and_duplicated_clusters() {
        let mut lost = consistent_report();
        lost.workers[1].clusters.clear();
        assert!(lost.check_invariants().unwrap_err().contains("executed"), "lost cluster");
        let mut dup = consistent_report();
        dup.workers[1].clusters = vec![0];
        assert!(dup.check_invariants().unwrap_err().contains("executed"), "duplicated cluster");
        let mut cost = consistent_report();
        cost.workers[0].solved_cost += 1;
        assert!(cost.check_invariants().unwrap_err().contains("plan totals"), "cost drift");
    }

    #[test]
    fn reused_entry_accounting_must_balance() {
        // A consistent incremental report: 3 reused entries on shard 0.
        let mut report = consistent_report();
        report.reused_entries = 3;
        report.clusters_total = 3;
        report.reducers[0].entries += 3;
        report.reducers[0].reused_entries = 3;
        report.check_invariants().unwrap();
        assert!((report.reuse_ratio() - 1.0 / 3.0).abs() < 1e-12);

        // Shard attribution must match the report total.
        report.reducers[0].reused_entries = 2;
        assert!(report.check_invariants().unwrap_err().contains("attributed"));

        // clusters_total can never undercut the scheduled count.
        let mut shrunk = consistent_report();
        shrunk.clusters_total = 1;
        assert!(shrunk.check_invariants().unwrap_err().contains("clusters_total"));
        assert_eq!(consistent_report().reuse_ratio(), 0.0);
    }

    #[test]
    fn worker_comparison_sum_must_equal_oracle_count() {
        let mut report = consistent_report();
        report.workers[1].comparisons += 1;
        let err = report.check_invariants().unwrap_err();
        assert!(err.contains("workers counted"), "{err}");
    }

    /// Synthesized spans matching `consistent_report`: one `map.worker`
    /// per worker fed from its busy/comparisons, one `reduce.shard` per
    /// reducer fed from its busy.
    fn matching_spans(report: &RuntimeReport) -> Vec<SpanRecord> {
        let mut records = Vec::new();
        for w in &report.workers {
            records.push(SpanRecord {
                name: "map.worker",
                id: 1 + w.worker as u64,
                parent: 0,
                thread: 1 + w.worker as u64,
                start_ns: 0,
                dur_ns: w.busy.as_nanos() as u64,
                attrs: vec![("comparisons", w.comparisons)],
            });
        }
        for r in &report.reducers {
            records.push(SpanRecord {
                name: "reduce.shard",
                id: 100 + r.shard as u64,
                parent: 0,
                thread: 100 + r.shard as u64,
                start_ns: 0,
                dur_ns: r.busy.as_nanos() as u64,
                attrs: Vec::new(),
            });
        }
        records
    }

    #[test]
    fn telemetry_cross_check_demands_exact_busy_and_comparison_sums() {
        let report = consistent_report();
        let good = matching_spans(&report);
        report.check_telemetry(&good).unwrap();

        let mut slow = matching_spans(&report);
        slow[0].dur_ns += 1;
        assert!(report.check_telemetry(&slow).unwrap_err().contains("map.worker"));

        let mut reduce_drift = matching_spans(&report);
        let shard = reduce_drift.iter_mut().find(|r| r.name == "reduce.shard").unwrap();
        shard.dur_ns -= 1;
        assert!(report.check_telemetry(&reduce_drift).unwrap_err().contains("reduce.shard"));

        let mut uncounted = matching_spans(&report);
        uncounted[0].attrs.clear();
        assert!(report.check_telemetry(&uncounted).unwrap_err().contains("comparisons"));
    }

    #[test]
    fn spill_accounting_must_agree_between_sides() {
        let mut report = consistent_report();
        report.reducers[0].spilled_bytes += 8;
        assert!(report.check_invariants().is_err());
    }

    #[test]
    fn spill_off_forbids_spill_traffic() {
        let mut report = consistent_report();
        report.spill = SpillMode::Off;
        let err = report.check_invariants().unwrap_err();
        assert!(err.contains("spill is Off"), "{err}");
        // Clearing the spill figures on both sides makes Off legal again.
        for w in &mut report.workers {
            w.spilled_entries = 0;
            w.spilled_bytes = 0;
        }
        for r in &mut report.reducers {
            r.spilled_entries = 0;
            r.spilled_bytes = 0;
        }
        report.check_invariants().unwrap();
    }

    #[test]
    fn spill_totals_sum_over_shards() {
        let report = consistent_report();
        assert_eq!(report.total_spill_entries(), 5);
        assert_eq!(report.total_spill_bytes(), 40);
    }

    #[test]
    fn reduce_speedup_is_total_busy_over_makespan() {
        let mut report = consistent_report();
        report.reducers[0].busy = Duration::from_millis(6);
        report.reducers[1].busy = Duration::from_millis(3);
        assert!((report.reduce_speedup() - 1.5).abs() < 1e-9);
        assert_eq!(report.reduce_makespan(), Duration::from_millis(6));
    }

    #[test]
    fn reduce_speedup_of_an_idle_stage_is_one() {
        let mut report = consistent_report();
        for r in &mut report.reducers {
            r.busy = Duration::ZERO;
        }
        assert_eq!(report.reduce_speedup(), 1.0);
    }

    #[test]
    fn shuffle_skew_is_max_over_ideal() {
        let report = consistent_report();
        // Shares are 8 and 4 of 12 over 2 shards: ideal 6, max 8.
        assert!((report.shuffle_skew() - 8.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_skew_of_an_empty_shuffle_is_one() {
        let mut report = consistent_report();
        report.shuffle_entries = 0;
        for side in &mut report.reducers {
            side.entries = 0;
        }
        assert_eq!(report.shuffle_skew(), 1.0);
    }
}
