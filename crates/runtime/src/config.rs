//! Configuration of the sharded execution engine.

use cnc_threadpool::effective_threads;

/// What an idle worker does when its own queue runs dry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StealPolicy {
    /// Never steal: execute exactly the static LPT assignment. Measured
    /// per-worker cluster sets then match the [`DeploymentPlan`] one-to-one,
    /// which is what the plan-validation experiments use.
    ///
    /// [`DeploymentPlan`]: cnc_core::DeploymentPlan
    Disabled,
    /// Steal **half** the remaining queue of the peer with the most
    /// predicted work remaining (the victim keeps its larger-cost front
    /// half) — absorbs stragglers the static plan cannot anticipate while
    /// amortizing the steal synchronization over a batch (the default;
    /// PR-2's policy took one cluster per steal).
    #[default]
    MostLoaded,
}

/// Whether the map→reduce stream goes through memory or local spill files.
///
/// In every mode the decision is taken independently per
/// `(map worker, reduce shard)` stream, and the merged graph is identical —
/// the spill codec is lossless and Algorithm 3's merge is
/// order-independent (asserted by `tests/shuffle.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillMode {
    /// Everything flows through the bounded in-memory channels (the
    /// default, and the only mode of the PR-1 engine).
    #[default]
    Off,
    /// A stream switches to its spill file once it has shipped more than
    /// this many encoded bytes; `Auto(0)` spills everything,
    /// `Auto(u64::MAX)` effectively never spills.
    Auto(u64),
    /// Every partial list is spilled; the channels carry only the replay
    /// handles. Models a shuffle with no memory budget at all.
    Always,
}

/// All knobs of a [`Runtime`](crate::Runtime).
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker shards `W`; 0 = all available hardware threads.
    pub workers: usize,
    /// Number of reduce shards `R`; 0 = match the effective worker count.
    /// Users are hash-partitioned across reducers with
    /// [`partition_of`](crate::shuffle::partition_of), and each reducer
    /// merges its partition independently (Algorithm 3 per shard).
    pub reduce_shards: usize,
    /// Bound of each map→reduce channel, in messages (one message per
    /// solved cluster per reduce shard). Small bounds apply back-pressure
    /// to the map stage; large bounds decouple the stages at the cost of
    /// buffered memory.
    pub channel_capacity: usize,
    /// Work-stealing policy for straggler clusters.
    pub steal: StealPolicy,
    /// Spill policy for the map→reduce shuffle.
    pub spill: SpillMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            reduce_shards: 0,
            channel_capacity: 64,
            steal: StealPolicy::default(),
            spill: SpillMode::default(),
        }
    }
}

impl RuntimeConfig {
    /// A configuration with `workers` shards and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig { workers, ..RuntimeConfig::default() }
    }

    /// The resolved worker count (0 = available parallelism).
    pub fn effective_workers(&self) -> usize {
        effective_threads(self.workers)
    }

    /// The resolved reduce-shard count (0 = one reducer per worker).
    pub fn effective_reduce_shards(&self) -> usize {
        if self.reduce_shards == 0 {
            self.effective_workers()
        } else {
            self.reduce_shards
        }
    }

    /// Checks parameter sanity; called by the runtime before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_steals() {
        let c = RuntimeConfig::default();
        c.validate().unwrap();
        assert_eq!(c.steal, StealPolicy::MostLoaded);
        assert_eq!(c.spill, SpillMode::Off);
        assert!(c.effective_workers() >= 1);
    }

    #[test]
    fn with_workers_pins_the_shard_count() {
        assert_eq!(RuntimeConfig::with_workers(4).effective_workers(), 4);
    }

    #[test]
    fn zero_reduce_shards_matches_workers() {
        let c = RuntimeConfig::with_workers(3);
        assert_eq!(c.effective_reduce_shards(), 3);
        let pinned = RuntimeConfig { reduce_shards: 2, ..c };
        assert_eq!(pinned.effective_reduce_shards(), 2);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let c = RuntimeConfig { channel_capacity: 0, ..RuntimeConfig::default() };
        assert!(c.validate().is_err());
    }
}
