//! Configuration of the sharded execution engine.

use cnc_threadpool::effective_threads;

/// What an idle worker does when its own queue runs dry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StealPolicy {
    /// Never steal: execute exactly the static LPT assignment. Measured
    /// per-worker cluster sets then match the [`DeploymentPlan`] one-to-one,
    /// which is what the plan-validation experiments use.
    ///
    /// [`DeploymentPlan`]: cnc_core::DeploymentPlan
    Disabled,
    /// Steal the *smallest* queued cluster from the peer with the most
    /// predicted work remaining — absorbs stragglers the static plan cannot
    /// anticipate (the default).
    #[default]
    MostLoaded,
}

/// All knobs of a [`Runtime`](crate::Runtime).
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker shards `W`; 0 = all available hardware threads.
    pub workers: usize,
    /// Bound of the map→reduce channel, in messages (one message per
    /// solved cluster). Small bounds apply back-pressure to the map stage;
    /// large bounds decouple the stages at the cost of buffered memory.
    pub channel_capacity: usize,
    /// Work-stealing policy for straggler clusters.
    pub steal: StealPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { workers: 0, channel_capacity: 64, steal: StealPolicy::default() }
    }
}

impl RuntimeConfig {
    /// A configuration with `workers` shards and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig { workers, ..RuntimeConfig::default() }
    }

    /// The resolved worker count (0 = available parallelism).
    pub fn effective_workers(&self) -> usize {
        effective_threads(self.workers)
    }

    /// Checks parameter sanity; called by the runtime before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_steals() {
        let c = RuntimeConfig::default();
        c.validate().unwrap();
        assert_eq!(c.steal, StealPolicy::MostLoaded);
        assert!(c.effective_workers() >= 1);
    }

    #[test]
    fn with_workers_pins_the_shard_count() {
        assert_eq!(RuntimeConfig::with_workers(4).effective_workers(), 4);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let c = RuntimeConfig { channel_capacity: 0, ..RuntimeConfig::default() };
        assert!(c.validate().is_err());
    }
}
