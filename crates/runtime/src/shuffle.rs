//! The shuffle layer: user→reduce-shard partitioning and the spill-file
//! format.
//!
//! A real MapReduce deployment cannot keep the whole map→reduce stream in
//! memory: each map task *spills* its output, partitioned by reducer, to
//! local files that the reducers later pull. This module provides the two
//! pieces the engine needs to model that:
//!
//! * [`partition_of`] — the deterministic hash partitioner that assigns
//!   every user to exactly one of `R` reduce shards (a total, disjoint
//!   cover of the user space, property-tested in `tests/shuffle.rs`);
//! * a length-prefixed binary codec ([`write_record`] / [`read_record`])
//!   for partial neighbour lists, plus [`SpillWriter`] and the
//!   cleanup-on-drop [`SpillDir`] temp-directory guard.
//!
//! The codec is lossless: similarities travel as raw `f32` bits, so a
//! spilled build merges *exactly* the same values as an in-memory one and
//! the final graph stays bit-identical.

use cnc_dataset::UserId;
use cnc_graph::NeighborList;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The reduce shard owning `user`, in `0..reduce_shards`.
///
/// A multiplicative (Fibonacci) hash rather than `user % R`: consecutive
/// user ids scatter across shards the way an opaque key hash would in a
/// real shuffle, so skew figures are representative.
///
/// # Panics
/// Panics if `reduce_shards == 0`.
#[inline]
pub fn partition_of(user: UserId, reduce_shards: usize) -> usize {
    assert!(reduce_shards > 0, "at least one reduce shard is required");
    let h = (user as u64).wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(0xD1B5_4A32_D192_ED03);
    ((h >> 32) as usize) % reduce_shards
}

/// Encoded size of one spill record, in bytes: a 16-byte header
/// (`user: u32 LE`, `len: u32 LE`, `cluster_hash: u64 LE`) plus 8 bytes
/// (`neighbour: u32 LE`, `sim: f32 bits LE`) per retained neighbour.
#[inline]
pub fn encoded_len(list: &NeighborList) -> u64 {
    16 + 8 * list.len() as u64
}

/// Writes one `(user, cluster hash, partial list)` record; returns its
/// encoded size. The hash is the source cluster's `BuildPlan` content
/// hash (0 for one-shot builds, which never fingerprint) — it keeps each
/// record attributable to the cluster solve that produced it, the
/// provenance an incremental or multi-process consumer of the stream
/// needs.
pub fn write_record<W: Write>(
    out: &mut W,
    user: UserId,
    cluster_hash: u64,
    list: &NeighborList,
) -> io::Result<u64> {
    out.write_all(&user.to_le_bytes())?;
    out.write_all(&(list.len() as u32).to_le_bytes())?;
    out.write_all(&cluster_hash.to_le_bytes())?;
    for n in list.iter() {
        out.write_all(&n.user.to_le_bytes())?;
        out.write_all(&n.sim.to_bits().to_le_bytes())?;
    }
    Ok(encoded_len(list))
}

/// Reads the next record, reconstructing the partial list with bound `k`.
///
/// Returns `Ok(None)` at a clean end of stream; a stream that ends inside
/// a record, or a record longer than `k`, is an `InvalidData`/
/// `UnexpectedEof` error.
pub fn read_record<R: Read>(
    input: &mut R,
    k: usize,
) -> io::Result<Option<(UserId, u64, NeighborList)>> {
    let mut header = [0u8; 16];
    if !read_exact_or_eof(input, &mut header)? {
        return Ok(None);
    }
    let user = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let cluster_hash = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if len > k {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill record for user {user} holds {len} neighbours, bound is {k}"),
        ));
    }
    let mut list = NeighborList::new(k);
    let mut entry = [0u8; 8];
    for _ in 0..len {
        input.read_exact(&mut entry)?;
        let neighbor = u32::from_le_bytes(entry[0..4].try_into().unwrap());
        let sim = f32::from_bits(u32::from_le_bytes(entry[4..8].try_into().unwrap()));
        // Encoded lists hold ≤ k distinct users, so every insert lands and
        // the decoded list equals the encoded one entry-for-entry.
        list.insert(neighbor, sim);
    }
    Ok(Some((user, cluster_hash, list)))
}

/// Fills `buf` completely, or reports a clean EOF *before the first byte*
/// as `Ok(false)`. EOF mid-buffer is an `UnexpectedEof` error.
fn read_exact_or_eof<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "spill stream truncated mid-record",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Distinguishes spill dirs of concurrent builds within one process.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temporary directory for one build's spill files, removed —
/// with everything inside it — when the guard drops.
///
/// The engine holds the guard on the orchestrating thread's stack, outside
/// the worker scope: a panicking worker unwinds through the scope and
/// drops the guard, so spill files never outlive the build that wrote
/// them (asserted by `spill_dir_is_removed_when_a_panic_unwinds` below).
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn create() -> io::Result<SpillDir> {
        let base = std::env::temp_dir();
        loop {
            let id = SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("cnc-spill-{}-{id}", std::process::id()));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(SpillDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The canonical spill-file path for one `(map worker, reduce shard)`
    /// stream.
    pub fn file_path(&self, worker: usize, shard: usize) -> PathBuf {
        self.path.join(format!("map{worker}-reduce{shard}.spill"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failed removal must not turn a successful build
        // (or an already-unwinding panic) into an abort.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Buffered writer for one `(map worker, reduce shard)` spill stream.
pub struct SpillWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    entries: u64,
}

impl SpillWriter {
    /// Creates the stream's file.
    pub fn create(path: PathBuf) -> io::Result<SpillWriter> {
        let writer = BufWriter::new(File::create(&path)?);
        Ok(SpillWriter { writer, path, bytes: 0, entries: 0 })
    }

    /// Appends one record.
    pub fn push(&mut self, user: UserId, cluster_hash: u64, list: &NeighborList) -> io::Result<()> {
        self.bytes += write_record(&mut self.writer, user, cluster_hash, list)?;
        self.entries += list.len() as u64;
        Ok(())
    }

    /// Flushes and seals the stream, returning its replay handle.
    pub fn finish(mut self) -> io::Result<FinishedSpill> {
        self.writer.flush()?;
        Ok(FinishedSpill { path: self.path, bytes: self.bytes, entries: self.entries })
    }
}

/// A sealed spill file, ready to be replayed by its reduce shard.
#[derive(Clone, Debug)]
pub struct FinishedSpill {
    /// Where the stream lives (inside the build's [`SpillDir`]).
    pub path: PathBuf,
    /// Encoded bytes written.
    pub bytes: u64,
    /// Neighbour entries `(user, neighbour, sim)` written.
    pub entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(k: usize, entries: &[(u32, f32)]) -> NeighborList {
        let mut l = NeighborList::new(k);
        for &(user, sim) in entries {
            l.insert(user, sim);
        }
        l
    }

    #[test]
    fn partitioner_is_a_function_into_range() {
        for shards in 1..8 {
            for user in 0..5_000u32 {
                let p = partition_of(user, shards);
                assert!(p < shards);
                assert_eq!(p, partition_of(user, shards), "partitioner must be deterministic");
            }
        }
    }

    #[test]
    fn partitioner_spreads_users_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for user in 0..10_000u32 {
            counts[partition_of(user, shards)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!((1_500..=3_500).contains(&c), "shard {shard} owns {c} of 10000 users");
        }
    }

    #[test]
    #[should_panic(expected = "at least one reduce shard")]
    fn zero_shards_panics() {
        partition_of(0, 0);
    }

    #[test]
    fn record_round_trip_is_exact() {
        let original = list(4, &[(9, 0.75), (2, -0.5), (11, 0.75), (3, 0.0)]);
        let mut buf = Vec::new();
        let written = write_record(&mut buf, 42, 0xDEAD_BEEF_0123, &original).unwrap();
        assert_eq!(written, encoded_len(&original));
        assert_eq!(written as usize, buf.len());
        let (user, hash, decoded) = read_record(&mut buf.as_slice(), 4).unwrap().unwrap();
        assert_eq!(user, 42);
        assert_eq!(hash, 0xDEAD_BEEF_0123);
        assert_eq!(decoded.sorted(), original.sorted());
        assert!(read_record(&mut io::empty(), 4).unwrap().is_none());
    }

    #[test]
    fn empty_list_round_trips() {
        let original = list(3, &[]);
        let mut buf = Vec::new();
        write_record(&mut buf, 7, 3, &original).unwrap();
        let (user, hash, decoded) = read_record(&mut buf.as_slice(), 3).unwrap().unwrap();
        assert_eq!(user, 7);
        assert_eq!(hash, 3);
        assert!(decoded.is_empty());
    }

    #[test]
    fn stream_of_records_decodes_in_order() {
        let lists = [list(2, &[(1, 0.9)]), list(2, &[]), list(2, &[(5, 0.1), (6, 0.2)])];
        let mut buf = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            write_record(&mut buf, i as u32, i as u64 * 11, l).unwrap();
        }
        let mut reader = buf.as_slice();
        for (i, l) in lists.iter().enumerate() {
            let (user, hash, decoded) = read_record(&mut reader, 2).unwrap().unwrap();
            assert_eq!(user, i as u32);
            assert_eq!(hash, i as u64 * 11);
            assert_eq!(decoded.sorted(), l.sorted());
        }
        assert!(read_record(&mut reader, 2).unwrap().is_none());
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, 0, &list(2, &[(3, 0.5)])).unwrap();
        buf.pop();
        let mut reader = buf.as_slice();
        assert!(read_record(&mut reader, 2).is_err());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, 0, &list(5, &[(1, 0.1), (2, 0.2), (3, 0.3)])).unwrap();
        let err = read_record(&mut buf.as_slice(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn spill_writer_counts_bytes_and_entries() {
        let dir = SpillDir::create().unwrap();
        let mut w = SpillWriter::create(dir.file_path(0, 1)).unwrap();
        let a = list(3, &[(1, 0.5), (2, 0.25)]);
        let b = list(3, &[(9, 0.125)]);
        w.push(10, 1, &a).unwrap();
        w.push(11, 2, &b).unwrap();
        let finished = w.finish().unwrap();
        assert_eq!(finished.bytes, encoded_len(&a) + encoded_len(&b));
        assert_eq!(finished.entries, 3);
        assert_eq!(fs::metadata(&finished.path).unwrap().len(), finished.bytes);
    }

    #[test]
    fn spill_dir_is_removed_on_drop_with_contents() {
        let dir = SpillDir::create().unwrap();
        let path = dir.path().to_path_buf();
        fs::write(dir.file_path(0, 0), b"payload").unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists(), "drop must remove the dir and its files");
    }

    #[test]
    fn spill_dir_is_removed_when_a_panic_unwinds() {
        let dir = SpillDir::create().unwrap();
        let path = dir.path().to_path_buf();
        fs::write(dir.file_path(3, 1), b"junk").unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = dir;
            panic!("worker died mid-spill");
        }));
        assert!(outcome.is_err());
        assert!(!path.exists(), "unwinding past the guard must remove the dir");
    }

    #[test]
    fn concurrent_spill_dirs_are_distinct() {
        let a = SpillDir::create().unwrap();
        let b = SpillDir::create().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
