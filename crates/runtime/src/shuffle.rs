//! The shuffle layer: user→reduce-shard partitioning and the spill-file
//! format.
//!
//! A real MapReduce deployment cannot keep the whole map→reduce stream in
//! memory: each map task *spills* its output, partitioned by reducer, to
//! local files that the reducers later pull. This module provides the two
//! pieces the engine needs to model that:
//!
//! * [`partition_of`] — the deterministic hash partitioner that assigns
//!   every user to exactly one of `R` reduce shards (a total, disjoint
//!   cover of the user space, property-tested in `tests/shuffle.rs`);
//! * a length-prefixed binary codec ([`write_record`] / [`read_record`])
//!   for partial neighbour lists, plus [`SpillWriter`] and the
//!   cleanup-on-drop [`SpillDir`] temp-directory guard.
//!
//! The codec is lossless: similarities travel as raw `f32` bits, so a
//! spilled build merges *exactly* the same values as an in-memory one and
//! the final graph stays bit-identical.

use cnc_dataset::UserId;
use cnc_faults::{injected_io_error, Fault, Faults, Site};
use cnc_graph::NeighborList;
use cnc_telemetry::Telemetry;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Typed failure of the spill layer — what used to unwind as an
/// `.expect()` panic now surfaces with the site, path and root cause
/// attached, so the engine can decide between degradation (reroute spill
/// traffic through the channels) and a build-level failure.
#[derive(Debug)]
pub enum ShuffleError {
    /// A single-shot IO failure (e.g. sealing a stream).
    Io {
        /// The fault site's wire name.
        site: &'static str,
        /// The stream file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A retried operation failed every attempt of its backoff loop.
    Exhausted {
        /// The fault site's wire name.
        site: &'static str,
        /// The stream file involved.
        path: PathBuf,
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error.
        last: io::Error,
    },
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShuffleError::Io { site, path, source } => {
                write!(f, "{site} failed on {}: {source}", path.display())
            }
            ShuffleError::Exhausted { site, path, attempts, last } => write!(
                f,
                "{site} failed on {} after {attempts} attempts (capped backoff): {last}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ShuffleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShuffleError::Io { source, .. } => Some(source),
            ShuffleError::Exhausted { last, .. } => Some(last),
        }
    }
}

/// Retry budget for spill record appends; outlasts any injectable
/// failure budget (span ≤ 12 < 16), so injected write faults are always
/// recoverable — only genuine persistent IO errors exhaust it.
pub const SPILL_WRITE_ATTEMPTS: u32 = 16;

/// Retry budget for replaying a sealed spill file.
pub const SPILL_REPLAY_ATTEMPTS: u32 = 16;

/// Counts one recovery retry at `site` (telemetry-gated, like every
/// hook). Public so transport layers built on this codec (the
/// distributed runner) account their retries under the same metric.
pub fn note_retry(site: &'static str) {
    let telemetry = Telemetry::global();
    if telemetry.enabled() {
        telemetry.counter("cnc_fault_retries_total", &[("site", site)]).add(1);
    }
}

/// The reduce shard owning `user`, in `0..reduce_shards`.
///
/// A multiplicative (Fibonacci) hash rather than `user % R`: consecutive
/// user ids scatter across shards the way an opaque key hash would in a
/// real shuffle, so skew figures are representative.
///
/// # Panics
/// Panics if `reduce_shards == 0`.
#[inline]
pub fn partition_of(user: UserId, reduce_shards: usize) -> usize {
    assert!(reduce_shards > 0, "at least one reduce shard is required");
    let h = (user as u64).wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(0xD1B5_4A32_D192_ED03);
    ((h >> 32) as usize) % reduce_shards
}

/// The reduce-side view of [`partition_of`]: a total, disjoint cover of
/// `0..n` across `R` shards, plus each user's slot within its shard —
/// enough to concatenate per-shard outputs back into a graph without a
/// merge. Shared by the in-process engine and the distributed
/// coordinator so both sides of a wire agree on routing by construction.
#[derive(Clone, Debug)]
pub struct ReducePartition {
    /// `owned[r]` lists shard r's users in increasing order.
    pub owned: Vec<Vec<UserId>>,
    /// `local_index[u]` is u's slot within `owned[partition_of(u, R)]`.
    pub local_index: Vec<u32>,
}

impl ReducePartition {
    /// Partitions users `0..n` across `reduce_shards` shards.
    pub fn new(n: usize, reduce_shards: usize) -> ReducePartition {
        let mut owned: Vec<Vec<UserId>> = vec![Vec::new(); reduce_shards];
        let mut local_index: Vec<u32> = vec![0; n];
        for u in 0..n as u32 {
            let shard = partition_of(u, reduce_shards);
            local_index[u as usize] = owned[shard].len() as u32;
            owned[shard].push(u);
        }
        ReducePartition { owned, local_index }
    }
}

/// Encoded size of one spill record, in bytes: a 16-byte header
/// (`user: u32 LE`, `len: u32 LE`, `cluster_hash: u64 LE`) plus 8 bytes
/// (`neighbour: u32 LE`, `sim: f32 bits LE`) per retained neighbour.
#[inline]
pub fn encoded_len(list: &NeighborList) -> u64 {
    16 + 8 * list.len() as u64
}

/// Writes one `(user, cluster hash, partial list)` record; returns its
/// encoded size. The hash is the source cluster's `BuildPlan` content
/// hash (0 for one-shot builds, which never fingerprint) — it keeps each
/// record attributable to the cluster solve that produced it, the
/// provenance an incremental or multi-process consumer of the stream
/// needs.
pub fn write_record<W: Write>(
    out: &mut W,
    user: UserId,
    cluster_hash: u64,
    list: &NeighborList,
) -> io::Result<u64> {
    out.write_all(&user.to_le_bytes())?;
    out.write_all(&(list.len() as u32).to_le_bytes())?;
    out.write_all(&cluster_hash.to_le_bytes())?;
    for n in list.iter() {
        out.write_all(&n.user.to_le_bytes())?;
        out.write_all(&n.sim.to_bits().to_le_bytes())?;
    }
    Ok(encoded_len(list))
}

/// Reads the next record, reconstructing the partial list with bound `k`.
///
/// Returns `Ok(None)` at a clean end of stream; a stream that ends inside
/// a record, or a record longer than `k`, is an `InvalidData`/
/// `UnexpectedEof` error.
pub fn read_record<R: Read>(
    input: &mut R,
    k: usize,
) -> io::Result<Option<(UserId, u64, NeighborList)>> {
    let mut header = [0u8; 16];
    if !read_exact_or_eof(input, &mut header)? {
        return Ok(None);
    }
    let user = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let cluster_hash = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if len > k {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill record for user {user} holds {len} neighbours, bound is {k}"),
        ));
    }
    let mut list = NeighborList::new(k);
    let mut entry = [0u8; 8];
    for _ in 0..len {
        input.read_exact(&mut entry)?;
        let neighbor = u32::from_le_bytes(entry[0..4].try_into().unwrap());
        let sim = f32::from_bits(u32::from_le_bytes(entry[4..8].try_into().unwrap()));
        // Encoded lists hold ≤ k distinct users, so every insert lands and
        // the decoded list equals the encoded one entry-for-entry.
        list.insert(neighbor, sim);
    }
    Ok(Some((user, cluster_hash, list)))
}

/// Fills `buf` completely, or reports a clean EOF *before the first byte*
/// as `Ok(false)`. EOF mid-buffer is an `UnexpectedEof` error.
fn read_exact_or_eof<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "spill stream truncated mid-record",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Distinguishes spill dirs of concurrent builds within one process.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temporary directory for one build's spill files, removed —
/// with everything inside it — when the guard drops.
///
/// The engine holds the guard on the orchestrating thread's stack, outside
/// the worker scope: a panicking worker unwinds through the scope and
/// drops the guard, so spill files never outlive the build that wrote
/// them (asserted by `spill_dir_is_removed_when_a_panic_unwinds` below).
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn create() -> io::Result<SpillDir> {
        let base = std::env::temp_dir();
        loop {
            let id = SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("cnc-spill-{}-{id}", std::process::id()));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(SpillDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The canonical spill-file path for one `(map worker, reduce shard)`
    /// stream.
    pub fn file_path(&self, worker: usize, shard: usize) -> PathBuf {
        self.path.join(format!("map{worker}-reduce{shard}.spill"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failed removal must not turn a successful build
        // (or an already-unwinding panic) into an abort.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Buffered writer for one `(map worker, reduce shard)` spill stream,
/// with retrying, torn-write-recovering appends.
///
/// `bytes` is the stream's *committed* length: records the writer has
/// accepted (buffered or flushed). A failed append — injected or real —
/// is rolled back by flushing the committed prefix and truncating the
/// file back to it, so a torn write never leaves garbage a replay would
/// trip over; the append is then retried under capped exponential
/// backoff ([`SPILL_WRITE_ATTEMPTS`]).
pub struct SpillWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    entries: u64,
    /// Salts the per-record fault keys so streams draw independently.
    fault_base: u64,
    /// Records appended so far (the per-record fault-key ordinal).
    records: u64,
    /// Encode-once scratch buffer; records are tiny (≤ 16 + 8·k bytes).
    scratch: Vec<u8>,
}

impl SpillWriter {
    /// Creates the stream's file. `fault_base` identifies the stream to
    /// the fault registry (the engine passes a `(worker, shard)` hash).
    pub fn create(path: PathBuf, fault_base: u64) -> Result<SpillWriter, ShuffleError> {
        let mut attempt = 0u32;
        loop {
            let outcome = Faults::global()
                .inject_io(Site::SpillWrite, fault_base)
                .and_then(|()| File::create(&path));
            match outcome {
                Ok(file) => {
                    return Ok(SpillWriter {
                        writer: BufWriter::new(file),
                        path,
                        bytes: 0,
                        entries: 0,
                        fault_base,
                        records: 0,
                        scratch: Vec::new(),
                    })
                }
                Err(last) => {
                    attempt += 1;
                    if attempt >= SPILL_WRITE_ATTEMPTS {
                        return Err(ShuffleError::Exhausted {
                            site: Site::SpillWrite.name(),
                            path,
                            attempts: attempt,
                            last,
                        });
                    }
                    note_retry("spill.write");
                    cnc_faults::backoff(attempt, 20, 2_000);
                }
            }
        }
    }

    /// Appends one record, retrying (with rollback) on failure.
    pub fn push(
        &mut self,
        user: UserId,
        cluster_hash: u64,
        list: &NeighborList,
    ) -> Result<(), ShuffleError> {
        self.scratch.clear();
        write_record(&mut self.scratch, user, cluster_hash, list)
            .expect("encoding into a Vec cannot fail");
        let key = self.fault_base ^ self.records.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let faults = Faults::global();
        let mut attempt = 0u32;
        loop {
            let outcome: io::Result<()> = match faults.inject(Site::SpillWrite, key) {
                None => self.writer.write_all(&self.scratch),
                Some(Fault::Torn) => {
                    // A torn write: flush the committed prefix, land half
                    // the record directly in the file, then fail — the
                    // recovery path below must truncate it away.
                    self.writer.flush().and_then(|()| {
                        let torn = self.scratch.len() / 2;
                        self.writer.get_mut().write_all(&self.scratch[..torn])?;
                        Err(injected_io_error(Site::SpillWrite))
                    })
                }
                Some(_) => Err(injected_io_error(Site::SpillWrite)),
            };
            match outcome {
                Ok(()) => {
                    self.bytes += self.scratch.len() as u64;
                    self.entries += list.len() as u64;
                    self.records += 1;
                    return Ok(());
                }
                Err(last) => {
                    attempt += 1;
                    let rollback = self.rollback();
                    if attempt >= SPILL_WRITE_ATTEMPTS || rollback.is_err() {
                        let last = rollback.err().unwrap_or(last);
                        return Err(ShuffleError::Exhausted {
                            site: Site::SpillWrite.name(),
                            path: self.path.clone(),
                            attempts: attempt,
                            last,
                        });
                    }
                    note_retry("spill.write");
                    cnc_faults::backoff(attempt, 20, 2_000);
                }
            }
        }
    }

    /// Restores the file to exactly the committed stream: flush the
    /// committed prefix out of the buffer, truncate any torn tail, seek
    /// back to the end.
    fn rollback(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(self.bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Flushes and seals the stream, returning its replay handle.
    pub fn finish(mut self) -> Result<FinishedSpill, ShuffleError> {
        self.writer.flush().map_err(|source| ShuffleError::Io {
            site: Site::SpillWrite.name(),
            path: self.path.clone(),
            source,
        })?;
        Ok(FinishedSpill { path: self.path, bytes: self.bytes, entries: self.entries })
    }
}

/// Replays a sealed spill file into memory, retrying the whole read under
/// capped backoff ([`SPILL_REPLAY_ATTEMPTS`]). Buffering before the merge
/// keeps retries trivially idempotent: no record reaches a
/// [`NeighborList`] until the full file has decoded cleanly.
pub fn replay_spill(
    path: &Path,
    k: usize,
) -> Result<Vec<(UserId, u64, NeighborList)>, ShuffleError> {
    let key = path_fault_key(path);
    let faults = Faults::global();
    let mut attempt = 0u32;
    loop {
        let outcome: io::Result<Vec<(UserId, u64, NeighborList)>> = (|| {
            faults.inject_io(Site::SpillReplay, key)?;
            let mut reader = BufReader::new(File::open(path)?);
            let mut records = Vec::new();
            while let Some(record) = read_record(&mut reader, k)? {
                records.push(record);
            }
            Ok(records)
        })();
        match outcome {
            Ok(records) => return Ok(records),
            Err(last) => {
                attempt += 1;
                if attempt >= SPILL_REPLAY_ATTEMPTS {
                    return Err(ShuffleError::Exhausted {
                        site: Site::SpillReplay.name(),
                        path: path.to_path_buf(),
                        attempts: attempt,
                        last,
                    });
                }
                note_retry("spill.replay");
                cnc_faults::backoff(attempt, 20, 2_000);
            }
        }
    }
}

/// FNV-1a over the path string: the replay side's stable fault key.
fn path_fault_key(path: &Path) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in path.to_string_lossy().bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A sealed spill file, ready to be replayed by its reduce shard.
#[derive(Clone, Debug)]
pub struct FinishedSpill {
    /// Where the stream lives (inside the build's [`SpillDir`]).
    pub path: PathBuf,
    /// Encoded bytes written.
    pub bytes: u64,
    /// Neighbour entries `(user, neighbour, sim)` written.
    pub entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(k: usize, entries: &[(u32, f32)]) -> NeighborList {
        let mut l = NeighborList::new(k);
        for &(user, sim) in entries {
            l.insert(user, sim);
        }
        l
    }

    #[test]
    fn partitioner_is_a_function_into_range() {
        for shards in 1..8 {
            for user in 0..5_000u32 {
                let p = partition_of(user, shards);
                assert!(p < shards);
                assert_eq!(p, partition_of(user, shards), "partitioner must be deterministic");
            }
        }
    }

    #[test]
    fn partitioner_spreads_users_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for user in 0..10_000u32 {
            counts[partition_of(user, shards)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!((1_500..=3_500).contains(&c), "shard {shard} owns {c} of 10000 users");
        }
    }

    #[test]
    #[should_panic(expected = "at least one reduce shard")]
    fn zero_shards_panics() {
        partition_of(0, 0);
    }

    #[test]
    fn record_round_trip_is_exact() {
        let original = list(4, &[(9, 0.75), (2, -0.5), (11, 0.75), (3, 0.0)]);
        let mut buf = Vec::new();
        let written = write_record(&mut buf, 42, 0xDEAD_BEEF_0123, &original).unwrap();
        assert_eq!(written, encoded_len(&original));
        assert_eq!(written as usize, buf.len());
        let (user, hash, decoded) = read_record(&mut buf.as_slice(), 4).unwrap().unwrap();
        assert_eq!(user, 42);
        assert_eq!(hash, 0xDEAD_BEEF_0123);
        assert_eq!(decoded.sorted(), original.sorted());
        assert!(read_record(&mut io::empty(), 4).unwrap().is_none());
    }

    #[test]
    fn empty_list_round_trips() {
        let original = list(3, &[]);
        let mut buf = Vec::new();
        write_record(&mut buf, 7, 3, &original).unwrap();
        let (user, hash, decoded) = read_record(&mut buf.as_slice(), 3).unwrap().unwrap();
        assert_eq!(user, 7);
        assert_eq!(hash, 3);
        assert!(decoded.is_empty());
    }

    #[test]
    fn stream_of_records_decodes_in_order() {
        let lists = [list(2, &[(1, 0.9)]), list(2, &[]), list(2, &[(5, 0.1), (6, 0.2)])];
        let mut buf = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            write_record(&mut buf, i as u32, i as u64 * 11, l).unwrap();
        }
        let mut reader = buf.as_slice();
        for (i, l) in lists.iter().enumerate() {
            let (user, hash, decoded) = read_record(&mut reader, 2).unwrap().unwrap();
            assert_eq!(user, i as u32);
            assert_eq!(hash, i as u64 * 11);
            assert_eq!(decoded.sorted(), l.sorted());
        }
        assert!(read_record(&mut reader, 2).unwrap().is_none());
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, 0, &list(2, &[(3, 0.5)])).unwrap();
        buf.pop();
        let mut reader = buf.as_slice();
        assert!(read_record(&mut reader, 2).is_err());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, 0, &list(5, &[(1, 0.1), (2, 0.2), (3, 0.3)])).unwrap();
        let err = read_record(&mut buf.as_slice(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn spill_writer_counts_bytes_and_entries() {
        let dir = SpillDir::create().unwrap();
        let mut w = SpillWriter::create(dir.file_path(0, 1), 0).unwrap();
        let a = list(3, &[(1, 0.5), (2, 0.25)]);
        let b = list(3, &[(9, 0.125)]);
        w.push(10, 1, &a).unwrap();
        w.push(11, 2, &b).unwrap();
        let finished = w.finish().unwrap();
        assert_eq!(finished.bytes, encoded_len(&a) + encoded_len(&b));
        assert_eq!(finished.entries, 3);
        assert_eq!(fs::metadata(&finished.path).unwrap().len(), finished.bytes);
    }

    #[test]
    fn spill_dir_is_removed_on_drop_with_contents() {
        let dir = SpillDir::create().unwrap();
        let path = dir.path().to_path_buf();
        fs::write(dir.file_path(0, 0), b"payload").unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists(), "drop must remove the dir and its files");
    }

    #[test]
    fn spill_dir_is_removed_when_a_panic_unwinds() {
        let dir = SpillDir::create().unwrap();
        let path = dir.path().to_path_buf();
        fs::write(dir.file_path(3, 1), b"junk").unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = dir;
            panic!("worker died mid-spill");
        }));
        assert!(outcome.is_err());
        assert!(!path.exists(), "unwinding past the guard must remove the dir");
    }

    #[test]
    fn concurrent_spill_dirs_are_distinct() {
        let a = SpillDir::create().unwrap();
        let b = SpillDir::create().unwrap();
        assert_ne!(a.path(), b.path());
    }

    use crate::fault_lock;

    #[test]
    fn injected_write_faults_are_retried_and_the_stream_stays_exact() {
        let _serial = fault_lock();
        let dir = SpillDir::create().unwrap();
        let records: Vec<NeighborList> =
            (0..64u32).map(|i| list(4, &[(i, 0.5), (i + 100, 0.25)])).collect();

        // Fault-free reference stream.
        let mut clean = SpillWriter::create(dir.file_path(0, 0), 7).unwrap();
        for (i, l) in records.iter().enumerate() {
            clean.push(i as u32, i as u64, l).unwrap();
        }
        let clean = clean.finish().unwrap();
        let clean_bytes = fs::read(&clean.path).unwrap();

        // Same records under a hostile schedule (every key fails 1..=4
        // times, torn and clean IO mixed).
        let faults = Faults::global();
        let plan = cnc_faults::FaultPlan::new(99, 1.0).only(&[Site::SpillWrite]).with_span(4);
        let injected = {
            let _guard = faults.arm(plan);
            let mut chaotic = SpillWriter::create(dir.file_path(1, 0), 7).unwrap();
            for (i, l) in records.iter().enumerate() {
                chaotic.push(i as u32, i as u64, l).unwrap();
            }
            let chaotic = chaotic.finish().unwrap();
            let injected = faults.injected(Site::SpillWrite);
            assert_eq!(fs::read(&chaotic.path).unwrap(), clean_bytes, "streams must be identical");
            assert_eq!((chaotic.bytes, chaotic.entries), (clean.bytes, clean.entries));
            injected
        };
        assert!(injected > 0, "the schedule must actually have fired");
    }

    #[test]
    fn replay_retries_injected_faults_and_decodes_everything() {
        let _serial = fault_lock();
        let dir = SpillDir::create().unwrap();
        let mut w = SpillWriter::create(dir.file_path(0, 0), 0).unwrap();
        for i in 0..16u32 {
            w.push(i, 5, &list(3, &[(i + 1, 0.5)])).unwrap();
        }
        let finished = w.finish().unwrap();

        let faults = Faults::global();
        let _guard =
            faults.arm(cnc_faults::FaultPlan::new(3, 1.0).only(&[Site::SpillReplay]).with_span(6));
        let records = replay_spill(&finished.path, 3).unwrap();
        assert_eq!(records.len(), 16);
        assert!(faults.injected(Site::SpillReplay) > 0);
        for (i, (user, hash, l)) in records.iter().enumerate() {
            assert_eq!(*user, i as u32);
            assert_eq!(*hash, 5);
            assert_eq!(l.len(), 1);
        }
    }

    #[test]
    fn replay_of_a_missing_file_exhausts_with_a_typed_error() {
        let _serial = fault_lock();
        let err = replay_spill(Path::new("/nonexistent/cnc-spill/gone.spill"), 4).unwrap_err();
        match err {
            ShuffleError::Exhausted { site, attempts, .. } => {
                assert_eq!(site, "spill.replay");
                assert_eq!(attempts, SPILL_REPLAY_ATTEMPTS);
            }
            other => panic!("expected Exhausted, got {other}"),
        }
        assert!(err.to_string().contains("spill.replay"), "{err}");
    }
}
