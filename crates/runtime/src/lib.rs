//! `cnc-runtime`: a sharded map-reduce execution engine for C².
//!
//! The paper's §VIII observes that Cluster-and-Conquer is "particularly
//! amenable to large-scale distributed deployments, in particular within a
//! map-reduce infrastructure". `cnc_core::distributed` *simulates* such a
//! deployment — it computes an LPT [`DeploymentPlan`] and predicts makespan
//! and shuffle volume from Algorithm 2's cost model. This crate **executes**
//! that plan:
//!
//! * a [`Runtime`] spawns `W` worker shards (map stage);
//! * clusters are partitioned across workers exactly as `plan_deployment`
//!   assigns them, each worker draining its own queue largest-first;
//! * each worker solves its clusters locally — brute force below the
//!   `ρ·k²` crossover, greedy Hyrec above, reusing
//!   [`cnc_baselines::local`]'s partial solvers;
//! * partial per-user neighbour lists stream through **bounded channels**
//!   to a reduce stage that merges them into the final
//!   [`cnc_graph::KnnGraph`] *concurrently* with the map phase;
//! * idle workers **steal** queued clusters from the most-loaded peer
//!   (configurable via [`StealPolicy`]), absorbing stragglers the static
//!   LPT plan cannot predict.
//!
//! The run produces a [`RuntimeReport`] with *measured* per-worker busy
//! time, makespan, imbalance and shuffle entries, so the bench layer can
//! plot predicted-vs-measured speed-up from the cost model
//! (`cargo run -p cnc-bench --release --bin scaling`).
//!
//! [`DeploymentPlan`]: cnc_core::DeploymentPlan

pub mod config;
pub mod engine;
pub mod report;

pub use config::{RuntimeConfig, StealPolicy};
pub use engine::{Runtime, ShardedBuild, ShardedResult};
pub use report::{RuntimeReport, WorkerStats};
