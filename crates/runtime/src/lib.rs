//! `cnc-runtime`: a sharded map-reduce execution engine for C².
//!
//! The paper's §VIII observes that Cluster-and-Conquer is "particularly
//! amenable to large-scale distributed deployments, in particular within a
//! map-reduce infrastructure". `cnc_core::distributed` *simulates* such a
//! deployment — it computes an LPT [`DeploymentPlan`] and predicts makespan
//! and shuffle volume from Algorithm 2's cost model. This crate **executes**
//! that plan:
//!
//! * a [`Runtime`] spawns `W` worker shards (map stage) and `R` reduce
//!   shards;
//! * clusters are partitioned across workers exactly as `plan_deployment`
//!   assigns them, each worker draining its own queue largest-first;
//! * each worker solves its clusters locally — brute force below the
//!   `ρ·k²` crossover, greedy Hyrec above, reusing
//!   [`cnc_baselines::local`]'s partial solvers;
//! * partial per-user neighbour lists are **hash-partitioned by user**
//!   ([`shuffle::partition_of`]) and flow to the owning reduce shard
//!   through a bounded channel — or, above the configured [`SpillMode`]
//!   threshold, through per-`(worker, shard)` **spill files** in a
//!   length-prefixed binary format, replayed by the reducers once the map
//!   phase ends (a real MapReduce shuffle, in miniature);
//! * each reducer merges its user partition independently (Algorithm 3)
//!   *concurrently* with the map phase, and the final
//!   [`cnc_graph::KnnGraph`] is assembled by concatenating the partitions;
//! * idle workers **steal** queued clusters from the most-loaded peer
//!   (configurable via [`StealPolicy`]), absorbing stragglers the static
//!   LPT plan cannot predict.
//!
//! The run produces a [`RuntimeReport`] with *measured* per-worker busy
//! time, makespan, imbalance, per-reduce-shard busy time, shuffle skew and
//! spill traffic, so the bench layer can plot predicted-vs-measured
//! speed-up from the cost model
//! (`cargo run -p cnc-bench --release --bin scaling`).
//!
//! Every `(workers, reduce_shards, spill)` combination produces exactly
//! the single-process pipeline's graph — `tests/shuffle.rs` asserts the
//! full matrix — and [`Runtime::execute_incremental`] re-solves **only**
//! the clusters whose `BuildPlan` content hash changed since a prior
//! build, replaying the cached partial lists straight into the reducers
//! (bit-identical to a from-scratch run; `tests/incremental.rs`).
//!
//! [`DeploymentPlan`]: cnc_core::DeploymentPlan

pub mod config;
pub mod engine;
pub mod report;
pub mod shuffle;

pub use config::{RuntimeConfig, SpillMode, StealPolicy};
pub use engine::{IncrementalShardedResult, Runtime, ShardedBuild, ShardedResult};
pub use report::{ReduceStats, RuntimeReport, WorkerStats};
pub use shuffle::{partition_of, ReducePartition, ShuffleError};

/// Serializes unit tests that arm the process-global fault registry —
/// one lock for the whole crate, because `cargo test` runs every module's
/// tests in a single process.
#[cfg(test)]
pub(crate) fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
