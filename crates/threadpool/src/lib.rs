//! Thread-pool substrate implementing the paper's Step 2 scheduling.
//!
//! §II-F: "The clusters are stored in a synchronized, decreasing priority
//! queue, ordered according to their size. We then use a basic thread pool
//! to compute the KNN graph of each cluster in the queue, starting with the
//! largest clusters and working down the priority queue until it becomes
//! empty." [`PriorityPool`] is exactly that: a fixed job set sorted by
//! decreasing priority, drained by a pool of scoped worker threads through
//! an atomic cursor (the jobs are known up front, so a lock-free cursor over
//! a sorted slice implements the synchronized queue with no contention).
//!
//! [`parallel_ranges`] is the second, simpler pattern the baselines need:
//! self-scheduled chunks of a user range (brute force halves, greedy
//! iterations).
//!
//! Built on `std::thread::scope` + atomics only; `rayon` is outside the
//! allowed crate set, and the paper's scheduling is explicit enough that a
//! bespoke pool is the more faithful reproduction.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A largest-first parallel executor over a fixed set of prioritized jobs.
pub struct PriorityPool;

impl PriorityPool {
    /// Runs every job on `threads` workers, dispatching in decreasing
    /// `priority` order. `worker` must be safe to call concurrently.
    ///
    /// Jobs with equal priority keep their submission order (stable sort),
    /// which makes single-threaded runs fully deterministic.
    ///
    /// # Panics
    /// Panics if `threads == 0`. Worker panics propagate after all threads
    /// join (std scope semantics).
    pub fn run<J, F>(threads: usize, mut jobs: Vec<(u64, J)>, worker: F)
    where
        J: Send,
        F: Fn(J) + Sync,
    {
        assert!(threads > 0, "thread pool needs at least one thread");
        jobs.sort_by_key(|(priority, _)| std::cmp::Reverse(*priority));
        let cursor = AtomicUsize::new(0);
        // Hand out jobs through Option slots so workers can take ownership.
        let slots: Vec<parking_lot::Mutex<Option<J>>> =
            jobs.into_iter().map(|(_, job)| parking_lot::Mutex::new(Some(job))).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(slots.len()).max(1) {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= slots.len() {
                        break;
                    }
                    let job = slots[index].lock().take();
                    if let Some(job) = job {
                        worker(job);
                    }
                });
            }
        });
    }
}

/// Splits `0..n` into `grain`-sized chunks and processes them on `threads`
/// self-scheduling workers.
///
/// # Panics
/// Panics if `threads == 0` or `grain == 0`.
pub fn parallel_ranges<F>(threads: usize, n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(threads > 0, "parallel_ranges needs at least one thread");
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return;
    }
    if threads == 1 || n <= grain {
        body(0..n);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                body(start..(start + grain).min(n));
            });
        }
    });
}

/// The number of worker threads to use when the caller passes 0 ("auto"):
/// the machine's available parallelism, matching the paper's use of all 8
/// hardware threads of its testbed.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        PriorityPool::run(4, jobs, |job| {
            counter.fetch_add(job + 1, Ordering::Relaxed);
        });
        // Σ (i + 1) for i in 0..100 = 5050.
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn single_thread_runs_largest_first() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<(u64, u64)> = vec![(3, 3), (10, 10), (1, 1), (7, 7)];
        PriorityPool::run(1, jobs, |job| order.lock().unwrap().push(job));
        assert_eq!(*order.lock().unwrap(), vec![10, 7, 3, 1]);
    }

    #[test]
    fn equal_priorities_keep_submission_order() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<(u64, u32)> = vec![(5, 0), (5, 1), (5, 2)];
        PriorityPool::run(1, jobs, |job| order.lock().unwrap().push(job));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_job_set_is_a_no_op() {
        PriorityPool::run(4, Vec::<(u64, ())>::new(), |_| panic!("no jobs expected"));
    }

    #[test]
    fn jobs_can_capture_and_mutate_shared_state() {
        let results: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        let jobs: Vec<(u64, usize)> = (0..16).map(|i| (i as u64, i)).collect();
        PriorityPool::run(8, jobs, |i| {
            results[i].store(i as u64 * 2, Ordering::Relaxed);
        });
        for (i, slot) in results.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i as u64 * 2);
        }
    }

    #[test]
    fn parallel_ranges_covers_everything_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        parallel_ranges(4, 1000, 37, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_ranges_handles_zero_n() {
        parallel_ranges(4, 0, 10, |_| panic!("no ranges expected"));
    }

    #[test]
    fn parallel_ranges_single_thread_is_one_call() {
        let calls = AtomicU64::new(0);
        parallel_ranges(1, 100, 10, |range| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(range, 0..100);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        PriorityPool::run(0, vec![(1u64, ())], |_| {});
    }
}
