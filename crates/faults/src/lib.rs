//! Seeded, deterministic fault injection — the chaos counterpart of
//! `cnc-telemetry`.
//!
//! A process-wide [`Faults`] registry exposes typed *sites* — points in
//! the build, shuffle and snapshot paths where the engine asks "does this
//! operation fail now?". Disarmed (the default), every site costs one
//! relaxed atomic load. Armed with a [`FaultPlan`], the registry answers
//! from a **seeded schedule**: each `(site, key)` pair draws a *failure
//! budget* `n ∈ {0, …, span}` from a hash of `(seed, site, key)`, and the
//! first `n` injection queries for that pair fail (with a deterministic
//! fault kind), after which the pair succeeds forever. Two properties
//! follow:
//!
//! * **Determinism per key.** Whether — and how often — a given cluster
//!   solve, spill record or snapshot write fails is a pure function of
//!   the plan's seed, independent of thread interleaving.
//! * **Transience.** Budgets are finite, so bounded retry loops always
//!   outlast the schedule *unless* the caller's retry budget is smaller
//!   than the drawn failure budget — which is exactly how the schedule
//!   escalates a recoverable fault into a build-level failure the layer
//!   above must absorb.
//!
//! The registry is dependency-free and knows nothing about the layers it
//! serves: callers map [`Fault::Io`] to an `io::Error`, [`Fault::Panic`]
//! to an unwinding panic ([`Faults::panic_on`]), [`Fault::Torn`] to a
//! short write, [`Fault::Crash`] to "die between write and rename".

use std::collections::HashMap;
use std::panic::UnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// A typed injection point. The nine sites cover every IO or compute
/// step whose failure the engine promises to survive (see the README's
/// fault matrix).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Appending one record to a spill stream.
    SpillWrite,
    /// Opening/reading a sealed spill file on the reduce side.
    SpillReplay,
    /// Writing a snapshot (temp file + rename).
    SnapshotWrite,
    /// Opening/reading a snapshot at load.
    SnapshotLoad,
    /// One cluster solve on a map worker.
    SolveCluster,
    /// One shuffle message received by a reduce shard.
    ReduceShard,
    /// Writing one frame onto a distributed-build transport (socket or
    /// pipe). Injected *before* any byte reaches the wire, so retries
    /// are always safe.
    TransportSend,
    /// A worker *process* dying before a cluster solve — the
    /// multi-process analogue of a solver panic. The budget counter for
    /// this site lives with the coordinator (see [`Faults::inject_at`]),
    /// because the process that draws the fault does not survive it.
    WorkerExit,
    /// Memory-mapping a snapshot for zero-copy adoption. An injected
    /// failure here never fails the adopt — it forces the bit-exact copy
    /// fallback, which is exactly the degraded path chaos runs verify.
    SnapshotMmap,
}

impl Site {
    /// Every site, in stable order (indexes the per-site counters).
    pub const ALL: [Site; 9] = [
        Site::SpillWrite,
        Site::SpillReplay,
        Site::SnapshotWrite,
        Site::SnapshotLoad,
        Site::SolveCluster,
        Site::ReduceShard,
        Site::TransportSend,
        Site::WorkerExit,
        Site::SnapshotMmap,
    ];

    /// The site's wire name, as used in `sites=` plan specs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Site::SpillWrite => "spill.write",
            Site::SpillReplay => "spill.replay",
            Site::SnapshotWrite => "snapshot.write",
            Site::SnapshotLoad => "snapshot.load",
            Site::SolveCluster => "solve.cluster",
            Site::ReduceShard => "reduce.shard",
            Site::TransportSend => "transport.send",
            Site::WorkerExit => "worker.exit",
            Site::SnapshotMmap => "snapshot.mmap",
        }
    }

    fn index(self) -> usize {
        Site::ALL.iter().position(|&s| s == self).unwrap()
    }

    fn parse(name: &str) -> Result<Site, String> {
        Site::ALL
            .iter()
            .copied()
            .find(|s| s.name() == name)
            .ok_or_else(|| format!("unknown fault site {name:?}"))
    }
}

/// What an injected failure looks like to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A clean IO error (nothing written/read).
    Io,
    /// A torn write: a prefix of the payload reaches the file, then the
    /// operation errors. Recovery must truncate back to the last
    /// committed offset.
    Torn,
    /// An unwinding panic (solver/reducer crash).
    Panic,
    /// A crash between temp-file write and rename: the temp file is left
    /// behind and the operation errors.
    Crash,
}

/// The payload [`Faults::panic_on`] unwinds with, so hooks and tests can
/// tell injected panics from genuine ones.
#[derive(Clone, Copy, Debug)]
pub struct InjectedPanic {
    /// The site that fired.
    pub site: Site,
    /// The caller's site key.
    pub key: u64,
}

/// A seeded fault schedule. `p` is the per-key failure probability (a key
/// identifies one retryable operation: a cluster, a spill record, a
/// snapshot path); a failing key draws a failure budget uniformly from
/// `1..=span` and fails its first *budget* attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed: same seed, same failures.
    pub seed: u64,
    /// Per-key failure probability, in thousandths (20 = 2%).
    pub p_mille: u32,
    /// Upper bound of the per-key failure budget; clamped to `1..=12` so
    /// generous retry loops (≥ 16 attempts) always outlast the schedule.
    pub span: u32,
    /// Bitmask of armed sites (bit = `Site::ALL` index); 0x1FF = all.
    pub sites: u16,
}

/// The mask with every [`Site`] armed.
pub const ALL_SITES: u16 = 0x1FF;

impl FaultPlan {
    /// All sites armed at probability `p` (fraction, not mille).
    pub fn new(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            p_mille: (p.clamp(0.0, 1.0) * 1000.0).round() as u32,
            span: 4,
            sites: ALL_SITES,
        }
    }

    /// Restricts the plan to the given sites.
    pub fn only(mut self, sites: &[Site]) -> FaultPlan {
        self.sites = sites.iter().fold(0u16, |m, s| m | (1 << s.index()));
        self
    }

    /// Sets the failure-budget span (clamped to `1..=12` when applied).
    pub fn with_span(mut self, span: u32) -> FaultPlan {
        self.span = span;
        self
    }

    /// Parses a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,p=0.02                 all sites, 2% per key, span 4
    /// seed=7,p=0.1,span=6            wider budgets (escalation likelier)
    /// seed=1,p=1,sites=solve.cluster+spill.write
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(42, 0.02);
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec part {part:?} is not key=value"))?;
            match k.trim() {
                "seed" => plan.seed = v.trim().parse().map_err(|e| format!("seed: {e}"))?,
                "p" => {
                    let p: f64 = v.trim().parse().map_err(|e| format!("p: {e}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err("p must be in [0, 1]".into());
                    }
                    plan.p_mille = (p * 1000.0).round() as u32;
                }
                "span" => plan.span = v.trim().parse().map_err(|e| format!("span: {e}"))?,
                "sites" => {
                    let mut mask = 0u16;
                    for name in v.split('+') {
                        mask |= 1 << Site::parse(name.trim())?.index();
                    }
                    plan.sites = mask;
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into `parse` form. Site restrictions are
    /// preserved, so a spec string is a complete description of the plan
    /// — the distributed coordinator ships plans to worker processes in
    /// exactly this form.
    pub fn spec(&self) -> String {
        let mut spec =
            format!("seed={},p={},span={}", self.seed, self.p_mille as f64 / 1000.0, self.span);
        if self.sites != ALL_SITES {
            let names: Vec<&str> =
                Site::ALL.iter().filter(|s| self.armed_site(**s)).map(|s| s.name()).collect();
            spec.push_str(",sites=");
            spec.push_str(&names.join("+"));
        }
        spec
    }

    fn armed_site(&self, site: Site) -> bool {
        self.sites & (1 << site.index()) != 0
    }

    fn effective_span(&self) -> u64 {
        self.span.clamp(1, 12) as u64
    }

    /// How many times `(site, key)` will fail before succeeding — a pure
    /// function of the plan. 0 for most keys; `1..=span` for the unlucky
    /// `p` fraction.
    pub fn failure_budget(&self, site: Site, key: u64) -> u32 {
        if !self.armed_site(site) || self.p_mille == 0 {
            return 0;
        }
        let h = mix(self.seed ^ SITE_SALT[site.index()] ^ key);
        if h % 1000 < self.p_mille as u64 {
            (1 + (h >> 32) % self.effective_span()) as u32
        } else {
            0
        }
    }

    /// The fault kind of the `n`-th failure of `(site, key)` — IO-flavored
    /// sites alternate deterministically between their two kinds.
    fn kind(&self, site: Site, key: u64, n: u32) -> Fault {
        let h = mix(self.seed ^ SITE_SALT[site.index()].rotate_left(17) ^ key ^ (n as u64) << 48);
        match site {
            Site::SolveCluster | Site::ReduceShard => Fault::Panic,
            Site::WorkerExit => Fault::Crash,
            Site::SpillReplay | Site::SnapshotLoad | Site::TransportSend | Site::SnapshotMmap => {
                Fault::Io
            }
            Site::SpillWrite => {
                if h & 1 == 0 {
                    Fault::Io
                } else {
                    Fault::Torn
                }
            }
            Site::SnapshotWrite => {
                if h & 1 == 0 {
                    Fault::Io
                } else {
                    Fault::Crash
                }
            }
        }
    }
}

/// Per-site salts so the same key draws independently across sites.
const SITE_SALT: [u64; 9] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x2545_F491_4F6C_DD1D,
];

/// splitmix64's finalizer — the same mixer the workspace's vendored PRNG
/// and FNV paths lean on for cheap avalanche.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Armed-plan state: the plan plus the per-`(site, key)` draw counters
/// that make injected failures transient.
struct PlanState {
    plan: FaultPlan,
    draws: HashMap<(u8, u64), u32>,
}

/// The process-wide fault registry. See the module docs for semantics.
pub struct Faults {
    armed: AtomicBool,
    state: Mutex<Option<PlanState>>,
    injected: [AtomicU64; 9],
}

/// Disarms (and clears) the registry when dropped, so a panicking test
/// cannot leave the process chaos-armed.
pub struct ArmedGuard<'a> {
    faults: &'a Faults,
}

impl Drop for ArmedGuard<'_> {
    fn drop(&mut self) {
        self.faults.disarm();
    }
}

impl Faults {
    const fn new() -> Faults {
        Faults {
            armed: AtomicBool::new(false),
            state: Mutex::new(None),
            injected: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Faults {
        static GLOBAL: OnceLock<Faults> = OnceLock::new();
        GLOBAL.get_or_init(Faults::new)
    }

    /// Whether a plan is armed — the one relaxed load every disarmed site
    /// costs.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Arms `plan`, resetting draw state and injection counters. The
    /// returned guard disarms on drop; [`std::mem::forget`] it to keep
    /// the plan armed past the current scope.
    pub fn arm(&self, plan: FaultPlan) -> ArmedGuard<'_> {
        {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = Some(PlanState { plan, draws: HashMap::new() });
        }
        for c in &self.injected {
            c.store(0, Ordering::Relaxed);
        }
        self.armed.store(true, Ordering::Relaxed);
        ArmedGuard { faults: self }
    }

    /// Disarms and clears any armed plan (idempotent).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = None;
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        if !self.armed() {
            return None;
        }
        self.state.lock().unwrap_or_else(|p| p.into_inner()).as_ref().map(|s| s.plan)
    }

    /// Asks the schedule whether this attempt at `(site, key)` fails.
    /// Consumes one unit of the pair's failure budget on `Some`; returns
    /// `None` forever once the budget is spent. Disarmed: one relaxed
    /// load, always `None`.
    #[inline]
    pub fn inject(&self, site: Site, key: u64) -> Option<Fault> {
        if !self.armed() {
            return None;
        }
        self.inject_slow(site, key)
    }

    fn inject_slow(&self, site: Site, key: u64) -> Option<Fault> {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let state = guard.as_mut()?;
        let budget = state.plan.failure_budget(site, key);
        if budget == 0 {
            return None;
        }
        let n = state.draws.entry((site.index() as u8, key)).or_insert(0);
        if *n >= budget {
            return None;
        }
        let kind = state.plan.kind(site, key, *n);
        *n += 1;
        drop(guard);
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// The cross-process variant of [`Faults::inject`]: the caller owns
    /// the attempt counter instead of the registry's draw state. Attempt
    /// `n` at `(site, key)` fails iff `n` is below the pair's failure
    /// budget — a pure function of the armed plan — so a *coordinator*
    /// can track attempts across worker processes whose own draw
    /// counters reset every exec (a worker that dies at attempt 0 is
    /// re-asked at attempt 1 by whoever picks up the cluster, and the
    /// schedule stays transient). Bumps the site's injection counter on
    /// `Some`.
    #[inline]
    pub fn inject_at(&self, site: Site, key: u64, attempt: u32) -> Option<Fault> {
        if !self.armed() {
            return None;
        }
        let plan = self.plan()?;
        let budget = plan.failure_budget(site, key);
        if attempt >= budget {
            return None;
        }
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        Some(plan.kind(site, key, attempt))
    }

    /// [`Faults::inject`] mapped to `io::Result`: `Fault::Io`/`Torn`/
    /// `Crash` become an `Err` tagged with the site name (the caller
    /// distinguishes kinds it cares about via [`Faults::inject`]
    /// directly).
    pub fn inject_io(&self, site: Site, key: u64) -> std::io::Result<()> {
        match self.inject(site, key) {
            None => Ok(()),
            Some(_) => Err(injected_io_error(site)),
        }
    }

    /// Unwinds with an [`InjectedPanic`] payload if the schedule fails
    /// this attempt. Sites whose kind is `Panic` use this at the top of
    /// the protected region, *before* any state is mutated, so catching
    /// and retrying is always safe.
    #[inline]
    pub fn panic_on(&self, site: Site, key: u64) {
        if self.inject(site, key).is_some() {
            std::panic::panic_any(InjectedPanic { site, key });
        }
    }

    /// Total injections fired at `site` since the last arm.
    pub fn injected(&self, site: Site) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all sites since the last arm.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// The `io::Error` injected faults surface as.
pub fn injected_io_error(site: Site) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {}", site.name()))
}

/// True if a caught panic payload is an [`InjectedPanic`].
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<InjectedPanic>()
}

/// Runs `f`, converting an [`InjectedPanic`] unwind into `Err(payload)`.
/// Genuine panics are re-raised untouched — injected faults must never
/// mask real bugs.
pub fn catch_injected<T>(f: impl FnOnce() -> T + UnwindSafe) -> Result<T, InjectedPanic> {
    match std::panic::catch_unwind(f) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<InjectedPanic>() {
            Ok(injected) => Err(*injected),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Installs (once) a panic-hook wrapper that suppresses the default
/// "thread panicked" report for [`InjectedPanic`] unwinds — chaos runs
/// inject thousands of panics that are caught and recovered, and the
/// stderr noise would drown real failures. All other panics report as
/// before.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<InjectedPanic>() {
                return;
            }
            previous(info);
        }));
    });
}

/// Capped exponential backoff for recovery retries: sleeps
/// `base_us << attempt`, capped at `cap_us`. Attempt 0 sleeps `base_us`.
pub fn backoff(attempt: u32, base_us: u64, cap_us: u64) {
    let us = base_us.saturating_shl(attempt.min(20)).min(cap_us).max(1);
    std::thread::sleep(Duration::from_micros(us));
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global registry; serialize the armed
    /// sections so parallel tests don't observe each other's plans.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_registry_never_injects() {
        let _serial = lock();
        let faults = Faults::global();
        assert!(!faults.armed());
        for site in Site::ALL {
            for key in 0..200 {
                assert_eq!(faults.inject(site, key), None);
            }
        }
    }

    #[test]
    fn budgets_are_deterministic_and_transient() {
        let _serial = lock();
        let plan = FaultPlan::new(7, 0.5).with_span(3);
        let faults = Faults::global();
        let _guard = faults.arm(plan);
        for key in 0..500u64 {
            let budget = plan.failure_budget(Site::SolveCluster, key);
            assert!(budget <= 3);
            // The first `budget` queries fail, every later one succeeds.
            for _ in 0..budget {
                assert!(faults.inject(Site::SolveCluster, key).is_some());
            }
            for _ in 0..4 {
                assert_eq!(faults.inject(Site::SolveCluster, key), None);
            }
        }
        assert!(faults.injected(Site::SolveCluster) > 0);
    }

    #[test]
    fn rearming_resets_draw_state() {
        let _serial = lock();
        let plan = FaultPlan::new(3, 1.0).with_span(1);
        let faults = Faults::global();
        {
            let _guard = faults.arm(plan);
            assert!(faults.inject(Site::SpillReplay, 9).is_some());
            assert_eq!(faults.inject(Site::SpillReplay, 9), None, "budget spent");
        }
        let _guard = faults.arm(plan);
        assert!(faults.inject(Site::SpillReplay, 9).is_some(), "fresh arm, fresh budget");
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _serial = lock();
        let faults = Faults::global();
        {
            let _guard = faults.arm(FaultPlan::new(1, 1.0));
            assert!(faults.armed());
        }
        assert!(!faults.armed());
        assert_eq!(faults.inject(Site::SnapshotWrite, 0), None);
    }

    #[test]
    fn probability_zero_and_site_masks_suppress_injection() {
        let _serial = lock();
        let faults = Faults::global();
        {
            let _guard = faults.arm(FaultPlan::new(5, 0.0));
            for key in 0..100 {
                assert_eq!(faults.inject(Site::SpillWrite, key), None);
            }
        }
        let only_solve = FaultPlan::new(5, 1.0).only(&[Site::SolveCluster]);
        let _guard = faults.arm(only_solve);
        assert_eq!(faults.inject(Site::SpillWrite, 0), None, "site not armed");
        assert!(faults.inject(Site::SolveCluster, 0).is_some());
    }

    #[test]
    fn kinds_match_their_sites() {
        let _serial = lock();
        let plan = FaultPlan::new(11, 1.0).with_span(12);
        let faults = Faults::global();
        let _guard = faults.arm(plan);
        let mut seen: HashMap<Site, Vec<Fault>> = HashMap::new();
        for site in Site::ALL {
            for key in 0..64u64 {
                while let Some(kind) = faults.inject(site, key) {
                    seen.entry(site).or_default().push(kind);
                }
            }
        }
        for (site, kinds) in &seen {
            for kind in kinds {
                let ok = match site {
                    Site::SolveCluster | Site::ReduceShard => *kind == Fault::Panic,
                    Site::WorkerExit => *kind == Fault::Crash,
                    Site::SpillReplay
                    | Site::SnapshotLoad
                    | Site::TransportSend
                    | Site::SnapshotMmap => *kind == Fault::Io,
                    Site::SpillWrite => matches!(kind, Fault::Io | Fault::Torn),
                    Site::SnapshotWrite => matches!(kind, Fault::Io | Fault::Crash),
                };
                assert!(ok, "site {site:?} drew {kind:?}");
            }
        }
        // Both kinds of the two-kind sites appear across enough draws.
        let writes = &seen[&Site::SpillWrite];
        assert!(writes.contains(&Fault::Io) && writes.contains(&Fault::Torn));
        let snaps = &seen[&Site::SnapshotWrite];
        assert!(snaps.contains(&Fault::Io) && snaps.contains(&Fault::Crash));
    }

    #[test]
    fn panic_on_unwinds_with_typed_payload() {
        let _serial = lock();
        let faults = Faults::global();
        let _guard = faults.arm(FaultPlan::new(2, 1.0).with_span(1));
        let err = catch_injected(|| faults.panic_on(Site::ReduceShard, 77)).unwrap_err();
        assert_eq!(err.site, Site::ReduceShard);
        assert_eq!(err.key, 77);
        // Budget spent: the same call now succeeds.
        catch_injected(|| faults.panic_on(Site::ReduceShard, 77)).unwrap();
    }

    #[test]
    fn catch_injected_reraises_genuine_panics() {
        let _serial = lock();
        let outcome = std::panic::catch_unwind(|| {
            let _ = catch_injected(|| panic!("genuine bug"));
        });
        assert!(outcome.is_err(), "genuine panics must propagate");
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan = FaultPlan::parse("seed=42,p=0.02").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.p_mille, 20);
        assert_eq!(plan.span, 4);
        assert_eq!(plan.sites, ALL_SITES);
        let again = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(again, plan);

        let narrow =
            FaultPlan::parse("seed=7,p=0.1,span=6,sites=solve.cluster+spill.write").unwrap();
        assert_eq!(narrow.span, 6);
        assert!(narrow.armed_site(Site::SolveCluster));
        assert!(narrow.armed_site(Site::SpillWrite));
        assert!(!narrow.armed_site(Site::SnapshotLoad));
        // Restricted plans round-trip through spec() with their masks.
        assert_eq!(FaultPlan::parse(&narrow.spec()).unwrap(), narrow);

        let distrib =
            FaultPlan::parse("seed=3,p=0.25,span=1,sites=transport.send+worker.exit").unwrap();
        assert!(distrib.armed_site(Site::TransportSend));
        assert!(distrib.armed_site(Site::WorkerExit));
        assert!(!distrib.armed_site(Site::SolveCluster));
        assert_eq!(FaultPlan::parse(&distrib.spec()).unwrap(), distrib);

        assert!(FaultPlan::parse("p=2").is_err());
        assert!(FaultPlan::parse("sites=bogus").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn inject_at_is_pure_in_the_attempt_number() {
        let _serial = lock();
        let plan = FaultPlan::new(21, 0.5).with_span(2);
        let faults = Faults::global();
        let _guard = faults.arm(plan);
        for key in 0..300u64 {
            let budget = plan.failure_budget(Site::WorkerExit, key);
            for attempt in 0..budget {
                // Re-asking the same attempt fails again: no draw state
                // is consumed, exactly what a re-exec'd process sees.
                assert!(faults.inject_at(Site::WorkerExit, key, attempt).is_some());
                assert_eq!(
                    faults.inject_at(Site::WorkerExit, key, attempt),
                    Some(Fault::Crash),
                    "worker.exit draws are crashes"
                );
            }
            for attempt in budget..budget + 3 {
                assert_eq!(faults.inject_at(Site::WorkerExit, key, attempt), None);
            }
        }
        assert!(faults.injected(Site::WorkerExit) > 0);
        // inject_at never touches the shared draw counters, so the
        // classic API still sees the full budget afterwards.
        let key = (0..300).find(|&k| plan.failure_budget(Site::WorkerExit, k) > 0).unwrap();
        for _ in 0..plan.failure_budget(Site::WorkerExit, key) {
            assert!(faults.inject(Site::WorkerExit, key).is_some());
        }
        assert_eq!(faults.inject(Site::WorkerExit, key), None);
    }

    #[test]
    fn budget_distribution_tracks_p() {
        let plan = FaultPlan::new(1234, 0.02).with_span(4);
        let failing =
            (0..100_000u64).filter(|&k| plan.failure_budget(Site::SolveCluster, k) > 0).count();
        // 2% ± generous slack over 100k keys.
        assert!((1_000..3_000).contains(&failing), "{failing} failing keys at p=0.02");
    }

    #[test]
    fn io_helper_maps_faults_to_errors() {
        let _serial = lock();
        let faults = Faults::global();
        let _guard = faults.arm(FaultPlan::new(9, 1.0).with_span(1));
        let err = faults.inject_io(Site::SnapshotLoad, 5).unwrap_err();
        assert!(err.to_string().contains("snapshot.load"), "{err}");
        faults.inject_io(Site::SnapshotLoad, 5).unwrap();
    }
}
