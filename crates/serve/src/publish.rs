//! Snapshot-directory publishing: the builder/serving split over a
//! shared filesystem.
//!
//! The paper's deployment story separates the expensive offline build
//! from cheap online serving. This module is the wire between them when
//! "wire" is a directory: a [`SnapshotPublisher`] on the builder side
//! writes monotonically sequenced `epoch-<seq>.snap` files (each through
//! the atomic temp-write + rename in [`crate::snapshot`], so a reader
//! never sees a torn file), and a [`SnapshotAdopter`] on each serving
//! host polls the directory and hot-swaps newer epochs into a running
//! [`ServingEngine`] via the zero-copy [`AdoptedSnapshot`] path — **no
//! builder ever runs in the serving address space**, and with the mmap
//! path every replica on a host shares one page-cache copy of the data.
//!
//! Sequence numbers, not mtimes, order epochs: the publisher scans for
//! the highest existing `epoch-<seq>.snap` on startup and continues from
//! there, so restarts never publish backwards; the adopter remembers the
//! last sequence it adopted and only moves forward. A published file
//! that fails to open is quarantined (same policy as
//! [`load_newest_valid`](crate::snapshot::load_newest_valid)) and the
//! adopter falls back to the next-newest candidate.

use crate::mmap::AdoptedSnapshot;
use crate::server::ServingEngine;
use crate::snapshot::{quarantine_snapshot, sweep_temp_files, SnapshotError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The file-name prefix/suffix of published epochs.
const EPOCH_PREFIX: &str = "epoch-";
const EPOCH_SUFFIX: &str = ".snap";

/// Parses `epoch-<seq>.snap` back into its sequence number.
fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix(EPOCH_PREFIX)?.strip_suffix(EPOCH_SUFFIX)?.parse().ok()
}

/// The path of sequence `seq` under `dir`.
fn seq_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{EPOCH_PREFIX}{seq}{EPOCH_SUFFIX}"))
}

/// Scans `dir` for the highest published sequence number (ignoring temp
/// and quarantined files). `None` when nothing is published yet.
fn newest_seq(dir: &Path) -> io::Result<Option<u64>> {
    let mut newest = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.contains(".tmp-") || name.contains(".quarantine-") {
            continue;
        }
        if let Some(seq) = parse_seq(&name) {
            newest = newest.max(Some(seq));
        }
    }
    Ok(newest)
}

/// The builder side: writes sequenced snapshot files into a directory.
pub struct SnapshotPublisher {
    dir: PathBuf,
    next_seq: u64,
}

impl SnapshotPublisher {
    /// Opens (creating if needed) a snapshot directory for publishing,
    /// sweeping dead writers' temp litter and resuming the sequence
    /// after the highest file already present.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotPublisher> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let _ = sweep_temp_files(&dir);
        let next_seq = newest_seq(&dir)?.map_or(0, |s| s + 1);
        Ok(SnapshotPublisher { dir, next_seq })
    }

    /// The directory being published into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next publish will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Publishes the engine's current epoch (plus its builder cache for
    /// restart incrementality) as the next sequenced snapshot; returns
    /// the sequence number and the published path. The write is atomic —
    /// adopters either see the complete file or nothing.
    pub fn publish(&mut self, engine: &ServingEngine) -> Result<(u64, PathBuf), SnapshotError> {
        let seq = self.next_seq;
        let path = seq_path(&self.dir, seq);
        engine.write_snapshot(&path)?;
        self.next_seq = seq + 1;
        Ok((seq, path))
    }

    /// Removes published files older than the newest `keep` sequences;
    /// returns how many were pruned. Serving hosts that already adopted
    /// a pruned epoch are unaffected — their mapping keeps the inode
    /// alive until they swap forward.
    pub fn prune(&self, keep: usize) -> io::Result<usize> {
        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(seq) = parse_seq(&name.to_string_lossy()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        let cut = seqs.len().saturating_sub(keep);
        let mut pruned = 0;
        for &seq in &seqs[..cut] {
            if fs::remove_file(seq_path(&self.dir, seq)).is_ok() {
                pruned += 1;
            }
        }
        Ok(pruned)
    }
}

/// The serving side: watches a snapshot directory and hot-swaps newer
/// epochs into an engine. Holds no builder state — adoption goes through
/// [`AdoptedSnapshot::open`], zero-copy where the platform allows.
pub struct SnapshotAdopter {
    dir: PathBuf,
    last_adopted: Option<u64>,
}

impl SnapshotAdopter {
    /// Watches `dir` for published epochs. Nothing is adopted yet.
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotAdopter {
        SnapshotAdopter { dir: dir.into(), last_adopted: None }
    }

    /// The sequence number last adopted, if any.
    pub fn last_adopted(&self) -> Option<u64> {
        self.last_adopted
    }

    /// Opens the newest published snapshot strictly newer than the last
    /// adopted one, without touching an engine. `Ok(None)` when there is
    /// nothing new. Candidates that fail to open are quarantined and the
    /// scan falls back to the next-newest; an error is returned only
    /// when every new candidate fails.
    pub fn poll(&mut self) -> Result<Option<(u64, AdoptedSnapshot)>, SnapshotError> {
        let mut candidates: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(seq) = parse_seq(&name.to_string_lossy()) {
                if self.last_adopted.is_none_or(|last| seq > last) {
                    candidates.push(seq);
                }
            }
        }
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let mut last_err = None;
        for seq in candidates {
            match AdoptedSnapshot::open(seq_path(&self.dir, seq)) {
                Ok(adopted) => {
                    self.last_adopted = Some(seq);
                    return Ok(Some((seq, adopted)));
                }
                Err(error) => {
                    let _ = quarantine_snapshot(seq_path(&self.dir, seq));
                    last_err = Some(error);
                }
            }
        }
        match last_err {
            None => Ok(None),
            Some(error) => Err(error),
        }
    }

    /// [`poll`](Self::poll) + [`ServingEngine::adopt`]: hot-swaps the
    /// newest unseen epoch into `engine`. Returns the adopted sequence
    /// number, or `None` when the engine is already current.
    pub fn poll_into(&mut self, engine: &ServingEngine) -> Result<Option<u64>, SnapshotError> {
        match self.poll()? {
            Some((seq, adopted)) => {
                engine.adopt(adopted);
                Ok(Some(seq))
            }
            None => Ok(None),
        }
    }
}
