//! The concurrent serving engine: epoch-swapped reads, a single writer.
//!
//! The paper's motivating deployment ("online news recommenders, in which
//! the use of fresh data is of utmost importance", §I) alternates two
//! activities: serving KNN queries from the freshest built graph, and
//! absorbing the interaction stream so the next graph is fresher still.
//! [`ServingEngine`] runs both concurrently:
//!
//! * **Readers** load the current [`ServingEpoch`] — an immutable bundle
//!   of dataset + graph + fingerprints — as one `Arc` clone under a brief
//!   read lock (two atomic operations; no lock is held while the query
//!   executes), then answer through the batched beam search of
//!   `cnc-query`. Any number of threads query in parallel, and a query
//!   started on epoch `e` finishes on epoch `e` even if a swap happens
//!   mid-flight.
//! * **The writer** absorbs streaming inserts into a
//!   [`DynamicIndex`] (each newcomer gets a neighbourhood *now*, and
//!   existing users receive it as a reverse neighbour), and every
//!   [`ServingConfig::rebuild_after`] inserts rebuilds the graph with the
//!   full C² pipeline on the sharded [`Runtime`] — re-fingerprinting once
//!   and sharing that build between the construction
//!   ([`Runtime::execute_shared`]) and the published epoch's query
//!   kernels — then **atomically publishes** the new epoch.
//!
//! Epochs persist: [`ServingEngine::snapshot`] captures the current epoch
//! in the [`crate::Snapshot`] format and
//! [`ServingEngine::from_snapshot`] brings a server back up from disk,
//! answering queries identically to the engine that wrote it (locked by
//! `tests/serve.rs`).

use crate::slo::{scaled_beam, CrossQueryBatcher, Rejected, SloConfig, SloController, TokenBucket};
use crate::snapshot::{Snapshot, SnapshotError};
use cnc_core::{C2Config, ClusterCache, RebuildStats};
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::KnnGraph;
use cnc_query::{BatchQuery, BeamSearchConfig, DynamicIndex, QueryIndex, QueryResult, Searcher};
use cnc_runtime::{Runtime, RuntimeConfig};
use cnc_similarity::{GoldFinger, SimilarityBackend};
use cnc_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Telemetry};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Everything the engine needs to build, serve and rebuild.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// The C² build configuration (backend, k, clustering knobs); used
    /// for the initial build and every epoch rebuild.
    pub c2: C2Config,
    /// The sharded runtime executing (re)builds.
    pub runtime: RuntimeConfig,
    /// Beam-search parameters for queries and insert placements.
    pub beam: BeamSearchConfig,
    /// Rebuild and publish a new epoch after this many inserts
    /// (0 = only on explicit [`ServingEngine::publish`] calls).
    pub rebuild_after: usize,
    /// Admission control, adaptive beam and cross-query batching knobs
    /// (all off by default; see [`SloConfig`]).
    pub slo: SloConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            c2: C2Config::default(),
            runtime: RuntimeConfig::default(),
            beam: BeamSearchConfig::default(),
            rebuild_after: 1024,
            slo: SloConfig::default(),
        }
    }
}

/// One query of an engine-level cross-query batch (see
/// [`ServingEngine::query_batch`]). The profile need not be sorted.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// The query profile (normalized by the engine).
    pub profile: Vec<ItemId>,
    /// Neighbours to return.
    pub k: usize,
    /// The entry-point seed a single [`ServingEngine::query`] would get.
    pub seed: u64,
}

/// One immutable published serving state. Readers hold it by `Arc`, so a
/// swap never invalidates an in-flight query.
pub struct ServingEpoch {
    epoch: u64,
    dataset: Dataset,
    graph: KnnGraph,
    fingerprints: Option<Arc<GoldFinger>>,
    /// How the build that published this epoch split between reused and
    /// re-solved clusters (all-zero for epochs restored from parts or a
    /// snapshot, which carry no build record).
    rebuild: RebuildStats,
}

impl ServingEpoch {
    /// Bundles an epoch; the parts must agree on the user count.
    ///
    /// # Panics
    /// Panics on a user-count mismatch.
    pub fn new(
        epoch: u64,
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
    ) -> Self {
        assert_eq!(dataset.num_users(), graph.num_users(), "graph/dataset user mismatch");
        if let Some(gf) = &fingerprints {
            assert_eq!(gf.num_users(), dataset.num_users(), "fingerprints must cover the dataset");
        }
        ServingEpoch { epoch, dataset, graph, fingerprints, rebuild: RebuildStats::default() }
    }

    /// The epoch's sequence number (1 for the initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The reuse figures of the incremental build that published this
    /// epoch: `clusters_total`, `clusters_resolved`, `reuse_ratio` and
    /// `rebuild_ms` (zeros when the epoch was loaded rather than built).
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.rebuild
    }

    /// Users served by this epoch.
    pub fn num_users(&self) -> usize {
        self.dataset.num_users()
    }

    /// The epoch's dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The epoch's graph.
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// The epoch's fingerprints, when the backend uses them.
    pub fn fingerprints(&self) -> Option<&Arc<GoldFinger>> {
        self.fingerprints.as_ref()
    }

    /// A query index over this epoch (fingerprint-scored when the epoch
    /// carries fingerprints, exact Jaccard otherwise).
    pub fn index(&self) -> QueryIndex<'_> {
        match &self.fingerprints {
            Some(gf) => QueryIndex::with_goldfinger(&self.dataset, &self.graph, gf),
            None => QueryIndex::new(&self.dataset, &self.graph),
        }
    }
}

/// Why an epoch publish did not happen: the incremental rebuild
/// panicked (a crashed solver, an injected fault, a genuine bug). The
/// engine absorbs the unwind — the last good epoch stays live, pending
/// inserts stay queued — and reports it as this typed value.
#[derive(Clone, Debug)]
pub struct RebuildFailure {
    /// What the rebuild panicked with.
    pub reason: String,
    /// Consecutive failed publish attempts, this one included.
    pub attempts: u32,
    /// Age of the still-live epoch at the time of the failure.
    pub staleness: Duration,
    /// How long insert-triggered publishes are deferred before retrying.
    pub retry_after: Duration,
}

impl fmt::Display for RebuildFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch rebuild failed ({}; attempt {}, epoch {}ms stale, retry in {}ms)",
            self.reason,
            self.attempts,
            self.staleness.as_millis(),
            self.retry_after.as_millis()
        )
    }
}

impl std::error::Error for RebuildFailure {}

/// First retry delay after a failed rebuild; doubles per consecutive
/// failure up to [`REBUILD_RETRY_CAP`], so a persistently failing build
/// cannot turn the insert path into a rebuild-retry loop.
const REBUILD_RETRY_BASE: Duration = Duration::from_millis(25);

/// Ceiling of the publish-retry backoff.
const REBUILD_RETRY_CAP: Duration = Duration::from_secs(2);

/// The deferral before the next insert-triggered publish retry after
/// `consecutive` straight failures.
fn rebuild_backoff(consecutive: u32) -> Duration {
    let exp = consecutive.saturating_sub(1).min(8);
    REBUILD_RETRY_BASE.saturating_mul(1 << exp).min(REBUILD_RETRY_CAP)
}

/// Renders a caught rebuild panic payload for [`RebuildFailure::reason`].
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<cnc_faults::InjectedPanic>() {
        return format!("injected fault at {} (key {})", injected.site.name(), injected.key);
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "opaque panic payload".into()
}

/// The result of one streaming insert.
#[derive(Clone, Copy, Debug)]
pub struct InsertOutcome {
    /// The id the newcomer will have in the next published epoch.
    pub user: UserId,
    /// Similarity computations the placement search spent.
    pub comparisons: usize,
    /// `Some(epoch)` when this insert triggered a rebuild and published
    /// that epoch.
    pub published: Option<u64>,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Copy, Debug)]
pub struct ServingStats {
    /// Queries answered so far.
    pub queries: u64,
    /// Streaming inserts absorbed so far.
    pub inserts: u64,
    /// Epochs published after the initial one (i.e. swaps).
    pub epoch_swaps: u64,
    /// The current epoch's sequence number.
    pub epoch: u64,
    /// Users served by the current epoch.
    pub num_users: usize,
    /// Inserts absorbed but not yet published.
    pub pending_inserts: usize,
    /// Queries admitted by the budget (0 when admission is disabled —
    /// unmetered queries are not counted here).
    pub admitted: u64,
    /// Queries shed with a typed rejection.
    pub shed: u64,
    /// Cross-query batches executed (each covering ≥ 1 queries).
    pub batches: u64,
    /// Epoch rebuilds that failed and were absorbed (the last good epoch
    /// stayed live; see [`RebuildFailure`]).
    pub rebuild_failures: u64,
}

/// Per-client scratch (visited marks + batch buffers) reused across
/// queries and epoch swaps.
pub struct ServingSession {
    searcher: Searcher,
}

/// The writer side: the dynamic index absorbing the stream, plus the
/// per-cluster solution cache the next incremental rebuild consults. The
/// pending count lives in an engine-level atomic so monitoring never has
/// to take this lock (a rebuild holds it for the full build).
struct Writer {
    /// The stream-absorbing index, materialized **lazily** on the first
    /// insert after a publish or adoption (`None` until then). Building
    /// it copies every profile — per-user work that must not run during
    /// epoch adoption, which promises O(1); a pure serving replica never
    /// pays for it at all.
    dynamic: Option<DynamicIndex>,
    cache: ClusterCache,
    /// Consecutive failed publish attempts (reset on success); drives the
    /// retry backoff.
    failed_attempts: u32,
    /// Insert-triggered publishes are deferred until this instant after a
    /// failure (`None` = no deferral). Explicit [`ServingEngine::publish`]
    /// calls ignore it.
    retry_after: Option<Instant>,
    /// When the live epoch was published — the staleness reference a
    /// failed rebuild reports against.
    published_at: Instant,
}

/// Telemetry handles for the serving path, resolved once at engine
/// construction (the registry lock never appears on the query path).
/// Recording is gated on [`Telemetry::enabled`] at each site; the
/// histograms are the bounded-memory source of the serve bench's latency
/// percentiles.
struct ServeMetrics {
    queries_served: Arc<Counter>,
    queries_empty: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
    query_comparisons: Arc<Histogram>,
    insert_latency_ns: Arc<Histogram>,
    inserts_total: Arc<Counter>,
    epoch_publishes: Arc<Counter>,
    rebuild_failures: Arc<Counter>,
    epoch_staleness_ms: Arc<Gauge>,
    rebuild_ms: Arc<Histogram>,
    epoch: Arc<Gauge>,
    epoch_users: Arc<Gauge>,
    pending_inserts: Arc<Gauge>,
    admitted_total: Arc<Counter>,
    shed_total: Arc<Counter>,
    beam_scale_pct: Arc<Gauge>,
    batch_flushes: Arc<Counter>,
    batch_queries: Arc<Counter>,
    epoch_adopt_seconds: Arc<Histogram>,
    epoch_adopt_mmap: Arc<Counter>,
    epoch_adopt_copy: Arc<Counter>,
}

impl ServeMetrics {
    fn new() -> Self {
        let t = Telemetry::global();
        ServeMetrics {
            queries_served: t.counter("cnc_queries_total", &[("outcome", "served")]),
            queries_empty: t.counter("cnc_queries_total", &[("outcome", "empty")]),
            query_latency_ns: t.histogram("cnc_query_latency_ns", &[]),
            query_comparisons: t.histogram("cnc_query_comparisons", &[]),
            insert_latency_ns: t.histogram("cnc_insert_latency_ns", &[]),
            inserts_total: t.counter("cnc_inserts_total", &[]),
            epoch_publishes: t.counter("cnc_epoch_publishes_total", &[]),
            rebuild_failures: t.counter("cnc_rebuild_failures_total", &[]),
            epoch_staleness_ms: t.gauge("cnc_epoch_staleness_ms", &[]),
            rebuild_ms: t.histogram("cnc_rebuild_ms", &[]),
            epoch: t.gauge("cnc_epoch", &[]),
            epoch_users: t.gauge("cnc_epoch_users", &[]),
            pending_inserts: t.gauge("cnc_pending_inserts", &[]),
            admitted_total: t.counter("cnc_admission_total", &[("outcome", "admitted")]),
            shed_total: t.counter("cnc_admission_total", &[("outcome", "shed")]),
            beam_scale_pct: t.gauge("cnc_beam_scale_pct", &[]),
            batch_flushes: t.counter("cnc_batch_flushes_total", &[]),
            batch_queries: t.counter("cnc_batch_queries_total", &[]),
            epoch_adopt_seconds: t.histogram("cnc_epoch_adopt_seconds", &[]),
            epoch_adopt_mmap: t.counter("cnc_epoch_adopt_total", &[("path", "mmap")]),
            epoch_adopt_copy: t.counter("cnc_epoch_adopt_total", &[("path", "copy")]),
        }
    }
}

/// The windowed-p99 evaluation state the controller ticks against
/// (guarded by one mutex so evaluations are serialized; queries that
/// find it busy skip the tick instead of stalling).
struct ControllerTick {
    controller: SloController,
    baseline: HistogramSnapshot,
}

/// Engine-side SLO state assembled from [`SloConfig`].
struct SloState {
    /// The global admission budget (`None` = admission disabled).
    bucket: Option<TokenBucket>,
    /// Adaptive-beam controller (`None` = fixed beam).
    controller: Option<Mutex<ControllerTick>>,
    /// The controller's current scale, cached for lock-free reads on the
    /// query path.
    scale_pct: AtomicU32,
    /// The controller's beam floor.
    min_beam: usize,
    /// Queries between controller evaluations.
    every: u64,
    /// Queries since engine start (drives the evaluation cadence).
    seen: AtomicU64,
    /// The cross-query batching window behind
    /// [`ServingEngine::query_batched`].
    batcher: CrossQueryBatcher,
}

impl SloState {
    fn new(config: &ServingConfig) -> Self {
        let slo = &config.slo;
        let bucket = (slo.budget_per_sec > 0).then(|| {
            // The burst must cover at least one full-price query, or
            // nothing could ever be admitted.
            let floor = query_charge(&admission_beam(&config.beam));
            let burst = if slo.burst > 0 { slo.burst } else { slo.budget_per_sec };
            TokenBucket::new(slo.budget_per_sec, burst.max(floor))
        });
        let controller = (slo.target_p99_us > 0).then(|| {
            let full = config.beam.beam_width;
            let min_beam = slo.min_beam_width.clamp(1, full);
            Mutex::new(ControllerTick {
                controller: SloController::new(slo.target_p99_us * 1_000, full, min_beam),
                baseline: HistogramSnapshot::default(),
            })
        });
        SloState {
            bucket,
            controller,
            scale_pct: AtomicU32::new(100),
            min_beam: config.slo.min_beam_width.clamp(1, config.beam.beam_width),
            every: slo.controller_every.max(1),
            seen: AtomicU64::new(0),
            batcher: CrossQueryBatcher::new(
                Duration::from_micros(slo.batch_window_us),
                slo.batch_max,
            ),
        }
    }
}

/// The hard per-query comparison cap admission enforces so a query's
/// actual work never exceeds its charge. An explicit `max_comparisons`
/// is kept; an unlimited config gets a generous derived cap (entry
/// points plus 64 expansions' worth of beam) — the budget needs a finite
/// unit of account.
fn admission_beam(beam: &BeamSearchConfig) -> BeamSearchConfig {
    let mut capped = *beam;
    if capped.max_comparisons == 0 {
        capped.max_comparisons = capped.entry_points + 64 * capped.beam_width;
    }
    capped
}

/// The worst-case comparison count of one query under `beam` — what
/// admission charges. Entry points are always scored, so the bound is
/// `max(entry_points, max_comparisons)` (see `batched_beam_search`).
fn query_charge(beam: &BeamSearchConfig) -> u64 {
    beam.max_comparisons.max(beam.entry_points) as u64
}

/// A concurrent KNN serving engine (see the module docs).
pub struct ServingEngine {
    config: ServingConfig,
    current: RwLock<Arc<ServingEpoch>>,
    writer: Mutex<Writer>,
    queries: AtomicU64,
    inserts: AtomicU64,
    epoch_swaps: AtomicU64,
    /// Inserts absorbed but not yet published (written under the writer
    /// lock, read lock-free by [`ServingEngine::stats`]).
    pending: AtomicUsize,
    /// One [`RebuildStats`] per published epoch swap (the initial build is
    /// not a swap and is excluded), for the serve bench's reuse
    /// trajectory. Bounded to [`REBUILD_HISTORY_CAP`] entries — a
    /// long-lived engine publishing every few seconds must not grow
    /// monitoring state without bound; the oldest swaps are dropped.
    rebuild_history: Mutex<std::collections::VecDeque<RebuildStats>>,
    metrics: ServeMetrics,
    /// Admission, adaptive beam and batching state (always present;
    /// individual mechanisms are `None`/inert when unconfigured).
    slo: SloState,
    admitted: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    /// Rebuilds that panicked and were absorbed (see [`RebuildFailure`]).
    rebuild_failures: AtomicU64,
}

/// Retained epoch-publish records (newest kept; see
/// [`ServingEngine::rebuild_history`]).
const REBUILD_HISTORY_CAP: usize = 1024;

impl ServingEngine {
    /// Builds the first epoch from `dataset` with the configured C²
    /// pipeline on the sharded runtime, fingerprinting once and sharing
    /// the build between construction and serving. The build's
    /// per-cluster solutions seed the writer's [`ClusterCache`], so the
    /// first published epoch already rebuilds incrementally.
    ///
    /// # Panics
    /// Panics if the configurations are invalid (see [`Runtime::new`] and
    /// [`BeamSearchConfig::validate`]).
    pub fn build(dataset: Dataset, config: ServingConfig) -> Self {
        let empty = ClusterCache::new(&config.c2);
        let (graph, fingerprints, cache, rebuild) = build_epoch(&dataset, &config, &empty, &[]);
        Self::from_parts_with(dataset, graph, fingerprints, config, cache, rebuild)
    }

    /// Wraps an already-built state (the first epoch) without rebuilding.
    /// The writer's cluster cache starts empty, so the *first* published
    /// epoch re-solves every cluster and re-seeds the cache.
    ///
    /// # Panics
    /// Panics if the parts disagree on the user count, the fingerprints'
    /// presence does not match the configured backend, or the beam
    /// configuration is invalid for the graph's `k`.
    pub fn from_parts(
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
        config: ServingConfig,
    ) -> Self {
        let cache = ClusterCache::new(&config.c2);
        Self::from_parts_with(dataset, graph, fingerprints, config, cache, RebuildStats::default())
    }

    fn from_parts_with(
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
        config: ServingConfig,
        cache: ClusterCache,
        rebuild: RebuildStats,
    ) -> Self {
        match (&config.c2.backend, &fingerprints) {
            (SimilarityBackend::GoldFinger { bits, seed }, Some(gf)) => assert_eq!(
                (*bits, *seed),
                (gf.bits(), gf.seed()),
                "fingerprints must match the configured backend"
            ),
            (SimilarityBackend::GoldFinger { .. }, None) => {
                panic!("GoldFinger backend requires the epoch's fingerprints")
            }
            (SimilarityBackend::Raw, Some(_)) => {
                panic!("Raw backend must not carry fingerprints")
            }
            (SimilarityBackend::Raw, None) => {}
        }
        let mut epoch = ServingEpoch::new(1, dataset, graph, fingerprints);
        epoch.rebuild = rebuild;
        let epoch = Arc::new(epoch);
        let writer = Writer {
            dynamic: None,
            cache,
            failed_attempts: 0,
            retry_after: None,
            published_at: Instant::now(),
        };
        let metrics = ServeMetrics::new();
        if Telemetry::global().enabled() {
            metrics.epoch.set(epoch.epoch() as i64);
            metrics.epoch_users.set(epoch.num_users() as i64);
        }
        let slo = SloState::new(&config);
        ServingEngine {
            config,
            current: RwLock::new(epoch),
            writer: Mutex::new(writer),
            queries: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            epoch_swaps: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
            rebuild_history: Mutex::new(std::collections::VecDeque::new()),
            metrics,
            slo,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rebuild_failures: AtomicU64::new(0),
        }
    }

    /// Brings an engine up from a persisted snapshot; it answers queries
    /// identically to the engine that wrote the snapshot. When the
    /// snapshot carries persisted cluster sections (a v2 file written by
    /// [`ServingEngine::write_snapshot`]), they seed the writer's
    /// [`ClusterCache`] — the first publish after a restart rebuilds
    /// incrementally instead of re-solving every cluster (a cache
    /// persisted under a different configuration misses wholesale, by
    /// token).
    ///
    /// # Panics
    /// Panics if the snapshot's fingerprints don't match the configured
    /// backend (a mismatch would serve scores inconsistent with every
    /// future rebuild).
    pub fn from_snapshot(snapshot: Snapshot, config: ServingConfig) -> Self {
        let Snapshot { dataset, graph, goldfinger, cache } = snapshot;
        let cache = cache.unwrap_or_else(|| ClusterCache::new(&config.c2));
        Self::from_parts_with(
            dataset,
            graph,
            goldfinger.map(Arc::new),
            config,
            cache,
            RebuildStats::default(),
        )
    }

    /// Persists the current epoch to `path` **atomically**, streaming
    /// straight from the epoch's buffers (no clone of the dataset, graph
    /// or fingerprint words — the footprint matters at serving scale);
    /// returns the encoded size. The writer's [`ClusterCache`] rides
    /// along as per-cluster sections, so the engine that reloads this
    /// file rebuilds incrementally from the first publish. Pending
    /// (unpublished) inserts are not included — publish first if they
    /// must survive.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let epoch = self.current_epoch();
        let cache = self.writer_state().cache.clone();
        crate::snapshot::write_snapshot_full(
            &epoch.dataset,
            &epoch.graph,
            epoch.fingerprints.as_deref(),
            Some(&cache),
            path,
        )
    }

    /// Captures the current epoch as an owned, persistable [`Snapshot`]
    /// (clones the epoch — prefer [`ServingEngine::write_snapshot`] when
    /// the goal is just a file). Pending (unpublished) inserts are not
    /// included — publish first if they must survive.
    pub fn snapshot(&self) -> Snapshot {
        let epoch = self.current_epoch();
        Snapshot::new(
            epoch.dataset.clone(),
            epoch.graph.clone(),
            epoch.fingerprints.as_ref().map(|gf| (**gf).clone()),
        )
    }

    /// The active configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The epoch lock, recovering from poison: the pointer behind it is
    /// only ever replaced by a single store of a fully built epoch, so a
    /// thread that panicked while holding the lock cannot have left a
    /// partial one — poisoning carries no broken invariant here, and a
    /// serving engine must not let one crashed writer take down every
    /// reader.
    fn epoch_read(&self) -> RwLockReadGuard<'_, Arc<ServingEpoch>> {
        self.current.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write half of [`ServingEngine::epoch_read`], same poison policy.
    fn epoch_write(&self) -> RwLockWriteGuard<'_, Arc<ServingEpoch>> {
        self.current.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The writer lock, recovering from poison. [`Self::rebuild_locked`]
    /// mutates writer state only *after* a build succeeds (a panicking
    /// build leaves the dynamic index, cache and pending count exactly as
    /// they were), so the state under a poisoned lock is always coherent.
    fn writer_state(&self) -> MutexGuard<'_, Writer> {
        self.writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The rebuild-history lock, recovering from poison (the deque is
    /// only ever pushed/popped whole records).
    fn history_state(&self) -> MutexGuard<'_, std::collections::VecDeque<RebuildStats>> {
        self.rebuild_history.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The currently published epoch (readers may hold it as long as they
    /// like; swaps never invalidate it).
    pub fn current_epoch(&self) -> Arc<ServingEpoch> {
        Arc::clone(&self.epoch_read())
    }

    /// The writer's dynamic index, materialized from the live epoch on
    /// first use (see [`Writer::dynamic`]).
    fn writer_dynamic<'a>(&self, writer: &'a mut Writer) -> &'a mut DynamicIndex {
        if writer.dynamic.is_none() {
            writer.dynamic = Some(writer_index(&self.current_epoch(), &self.config));
        }
        writer.dynamic.as_mut().expect("materialized above")
    }

    /// Hot-swaps the serving state to an externally produced snapshot —
    /// the adopter half of the snapshot-directory fleet protocol. The
    /// epoch sequence advances and readers move to the new state via the
    /// usual single `Arc` store; no build runs in this process, and when
    /// `adopted` borrows a mapped file ([`crate::mmap::AdoptedSnapshot`])
    /// no per-user work happens at all — the swap is O(1) in the user
    /// count. Pending (unpublished) inserts are discarded: an adopting
    /// replica serves, it does not build.
    ///
    /// Records `cnc_epoch_adopt_seconds` and bumps
    /// `cnc_epoch_adopt_total{path="mmap"|"copy"}`.
    ///
    /// # Panics
    /// Panics if the snapshot's fingerprints don't match the configured
    /// backend (same contract as [`ServingEngine::from_snapshot`]).
    pub fn adopt(&self, adopted: crate::mmap::AdoptedSnapshot) -> u64 {
        let start = Instant::now();
        let crate::mmap::AdoptedSnapshot { dataset, graph, goldfinger, mapped } = adopted;
        let fingerprints = goldfinger.map(Arc::new);
        match (&self.config.c2.backend, &fingerprints) {
            (SimilarityBackend::GoldFinger { bits, seed }, Some(gf)) => assert_eq!(
                (*bits, *seed),
                (gf.bits(), gf.seed()),
                "fingerprints must match the configured backend"
            ),
            (SimilarityBackend::GoldFinger { .. }, None) => {
                panic!("GoldFinger backend requires the epoch's fingerprints")
            }
            (SimilarityBackend::Raw, Some(_)) => {
                panic!("Raw backend must not carry fingerprints")
            }
            (SimilarityBackend::Raw, None) => {}
        }
        let mut writer = self.writer_state();
        let next = self.epoch_read().epoch() + 1;
        let epoch = Arc::new(ServingEpoch::new(next, dataset, graph, fingerprints));
        writer.dynamic = None;
        writer.failed_attempts = 0;
        writer.retry_after = None;
        writer.published_at = Instant::now();
        self.pending.store(0, Ordering::Relaxed);
        *self.epoch_write() = Arc::clone(&epoch);
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        if Telemetry::global().enabled() {
            // The histogram is integer-bucketed; adoption is sub-second by
            // design, so the SI-named metric records at nanosecond
            // resolution (consumers divide by 1e9).
            self.metrics.epoch_adopt_seconds.record(start.elapsed().as_nanos() as u64);
            if mapped {
                self.metrics.epoch_adopt_mmap.inc();
            } else {
                self.metrics.epoch_adopt_copy.inc();
            }
            self.metrics.epoch.set(next as i64);
            self.metrics.epoch_users.set(epoch.num_users() as i64);
            self.metrics.pending_inserts.set(0);
            self.metrics.epoch_staleness_ms.set(0);
        }
        next
    }

    /// Allocates per-client scratch, reusable across queries and epoch
    /// swaps.
    pub fn session(&self) -> ServingSession {
        ServingSession { searcher: self.current_epoch().index().searcher() }
    }

    /// Answers one KNN query (allocating scratch internally; prefer
    /// [`ServingEngine::query_with`] on hot paths). The profile need not
    /// be sorted.
    pub fn query(&self, profile: &[ItemId], k: usize, seed: u64) -> QueryResult {
        let mut session = self.session();
        self.query_with(&mut session, profile, k, seed)
    }

    /// Answers one KNN query with per-client scratch.
    ///
    /// This is the **unmetered** path: the adaptive beam applies (a
    /// degraded engine answers every caller with the narrowed beam), but
    /// the admission budget is neither checked nor consumed —
    /// SLO-governed clients go through [`ServingEngine::try_query_with`].
    pub fn query_with(
        &self,
        session: &mut ServingSession,
        profile: &[ItemId],
        k: usize,
        seed: u64,
    ) -> QueryResult {
        let beam = self.effective_beam(k, false);
        self.run_query(session, profile, k, seed, &beam)
    }

    /// Answers one KNN query under admission control: the query is
    /// charged its worst-case comparison cost against the global token
    /// bucket up front (unspent tokens are refunded after execution) and
    /// **shed** with a typed [`Rejected`] when the budget cannot cover
    /// it — never a panic, never a silently slow answer. With no budget
    /// configured every query is admitted.
    pub fn try_query(
        &self,
        profile: &[ItemId],
        k: usize,
        seed: u64,
    ) -> Result<QueryResult, Rejected> {
        let mut session = self.session();
        self.try_query_with(&mut session, profile, k, seed)
    }

    /// [`ServingEngine::try_query`] with per-client scratch.
    pub fn try_query_with(
        &self,
        session: &mut ServingSession,
        profile: &[ItemId],
        k: usize,
        seed: u64,
    ) -> Result<QueryResult, Rejected> {
        let beam = self.effective_beam(k, true);
        let charge = self.admit(&beam)?;
        let result = self.run_query(session, profile, k, seed, &beam);
        if let (Some(bucket), Some(charge)) = (&self.slo.bucket, charge) {
            bucket.settle(charge, result.comparisons as u64);
        }
        Ok(result)
    }

    /// Answers a batch of queries through the **cross-query** execution
    /// path: admission runs per query (shed queries return their
    /// [`Rejected`] slot; admitted ones proceed), and the admitted set is
    /// executed in lockstep so queries expanding the same graph node
    /// share one sweep over its neighbour list. Per query, neighbours and
    /// comparison counts are bit-identical to [`ServingEngine::try_query`]
    /// with the same arguments (locked by `tests/slo.rs`).
    pub fn query_batch(&self, requests: &[BatchRequest]) -> Vec<Result<QueryResult, Rejected>> {
        let beam = self.effective_beam(
            requests.iter().map(|r| r.k).max().unwrap_or(1),
            self.slo.bucket.is_some(),
        );
        let mut outcomes: Vec<Option<Result<QueryResult, Rejected>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut admitted: Vec<(Vec<ItemId>, usize, u64)> = Vec::with_capacity(requests.len());
        let mut admitted_at: Vec<usize> = Vec::with_capacity(requests.len());
        let mut charges: Vec<u64> = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            match self.admit(&beam) {
                Err(rejected) => outcomes[i] = Some(Err(rejected)),
                Ok(charge) => {
                    let mut query = request.profile.clone();
                    query.sort_unstable();
                    query.dedup();
                    admitted.push((query, request.k, request.seed));
                    admitted_at.push(i);
                    charges.push(charge.unwrap_or(0));
                }
            }
        }
        let results = self.execute_admitted_batch(&admitted, &beam);
        for ((i, result), charge) in admitted_at.into_iter().zip(results).zip(charges) {
            if let Some(bucket) = &self.slo.bucket {
                if charge > 0 {
                    bucket.settle(charge, result.comparisons as u64);
                }
            }
            outcomes[i] = Some(Ok(result));
        }
        outcomes.into_iter().map(|o| o.expect("every request answered")).collect()
    }

    /// Answers one query through the shared **batching window**: the
    /// calling thread parks up to `slo.batch_window_us` waiting for
    /// companion queries, then one thread executes the coalesced batch
    /// through the cross-query path and every submitter gets its own
    /// (bit-identical) result. Admission runs immediately on entry, so a
    /// shed query never waits out the window.
    pub fn query_batched(
        &self,
        profile: &[ItemId],
        k: usize,
        seed: u64,
    ) -> Result<QueryResult, Rejected> {
        let beam = self.effective_beam(k, true);
        let charge = self.admit(&beam)?;
        let mut query = profile.to_vec();
        query.sort_unstable();
        query.dedup();
        let result = self.slo.batcher.submit(query, k, seed, |batch| {
            let beam = self.effective_beam(
                batch.iter().map(|&(_, k, _)| k).max().unwrap_or(1),
                self.slo.bucket.is_some(),
            );
            self.execute_admitted_batch(batch, &beam)
        });
        if let (Some(bucket), Some(charge)) = (&self.slo.bucket, charge) {
            bucket.settle(charge, result.comparisons as u64);
        }
        Ok(result)
    }

    /// The single-query execution core: search on the current epoch with
    /// `beam`, then account metrics and feed the controller.
    fn run_query(
        &self,
        session: &mut ServingSession,
        profile: &[ItemId],
        k: usize,
        seed: u64,
        beam: &BeamSearchConfig,
    ) -> QueryResult {
        let telemetry_on = Telemetry::global().enabled();
        // The controller needs the latency histogram populated even when
        // telemetry export is off — it is the engine's own SLO signal.
        let timer = (telemetry_on || self.slo.controller.is_some()).then(Instant::now);
        let mut query = profile.to_vec();
        query.sort_unstable();
        query.dedup();
        // Clone the Arc under the read lock, run the query outside it: a
        // concurrent publish proceeds without waiting for this query.
        let epoch = self.current_epoch();
        let result = epoch.index().search_with(&mut session.searcher, &query, k, beam, seed);
        self.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = timer {
            self.metrics.query_latency_ns.record(start.elapsed().as_nanos() as u64);
        }
        if telemetry_on {
            self.metrics.query_comparisons.record(result.comparisons as u64);
            if result.neighbors.is_empty() {
                self.metrics.queries_empty.inc();
            } else {
                self.metrics.queries_served.inc();
            }
        }
        self.slo_tick();
        result
    }

    /// Executes pre-admitted, pre-normalized queries through the
    /// cross-query lockstep search and accounts per-query metrics.
    fn execute_admitted_batch(
        &self,
        batch: &[(Vec<ItemId>, usize, u64)],
        beam: &BeamSearchConfig,
    ) -> Vec<QueryResult> {
        if batch.is_empty() {
            return Vec::new();
        }
        let telemetry_on = Telemetry::global().enabled();
        let timer = (telemetry_on || self.slo.controller.is_some()).then(Instant::now);
        let epoch = self.current_epoch();
        let queries: Vec<BatchQuery> = batch
            .iter()
            .map(|(profile, k, seed)| BatchQuery {
                profile: profile.as_slice(),
                k: *k,
                seed: *seed,
            })
            .collect();
        let results = epoch.index().search_batch(&queries, beam);
        self.queries.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = timer {
            // Per-query latency on the shared path: each query's share of
            // the batch's wall time (the whole point of sharing is that
            // the batch costs less than the sum of its parts).
            let share = start.elapsed().as_nanos() as u64 / batch.len() as u64;
            for _ in 0..batch.len() {
                self.metrics.query_latency_ns.record(share);
            }
        }
        if telemetry_on {
            self.metrics.batch_flushes.inc();
            self.metrics.batch_queries.add(batch.len() as u64);
            for result in &results {
                self.metrics.query_comparisons.record(result.comparisons as u64);
                if result.neighbors.is_empty() {
                    self.metrics.queries_empty.inc();
                } else {
                    self.metrics.queries_served.inc();
                }
            }
        }
        for _ in 0..batch.len() {
            self.slo_tick();
        }
        results
    }

    /// The beam configuration queries actually run with: the controller's
    /// current scale applied to width and cap (never below the floor or
    /// `k`), plus — on admission-metered paths — the hard comparison cap
    /// that makes a query's cost chargeable.
    fn effective_beam(&self, k: usize, metered: bool) -> BeamSearchConfig {
        let mut beam = self.config.beam;
        if self.slo.controller.is_some() {
            let pct = self.slo.scale_pct.load(Ordering::Relaxed);
            if pct < 100 {
                beam.beam_width = scaled_beam(beam.beam_width, self.slo.min_beam, pct).max(k);
                if beam.max_comparisons > 0 {
                    beam.max_comparisons =
                        (beam.max_comparisons * pct as usize / 100).max(beam.beam_width);
                }
            }
        }
        if metered && self.slo.bucket.is_some() {
            beam = admission_beam(&beam);
        }
        beam
    }

    /// Charges one query against the budget. Returns the charge to settle
    /// later (`None` when admission is disabled), or the typed rejection.
    fn admit(&self, beam: &BeamSearchConfig) -> Result<Option<u64>, Rejected> {
        let Some(bucket) = &self.slo.bucket else {
            return Ok(None);
        };
        let charge = query_charge(beam);
        match bucket.try_acquire(charge) {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                if Telemetry::global().enabled() {
                    self.metrics.admitted_total.inc();
                }
                Ok(Some(charge))
            }
            Err(rejected) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                if Telemetry::global().enabled() {
                    self.metrics.shed_total.inc();
                }
                Err(rejected)
            }
        }
    }

    /// Every `slo.controller_every` queries, evaluates the rolling p99
    /// over the window since the last evaluation and lets the controller
    /// adjust the beam scale. Non-blocking: a query finding the
    /// evaluation mutex busy skips the tick.
    fn slo_tick(&self) {
        let Some(ctl) = &self.slo.controller else {
            return;
        };
        let n = self.slo.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.slo.every) {
            return;
        }
        let Ok(mut tick) = ctl.try_lock() else {
            return;
        };
        if let Some(p99) = self.metrics.query_latency_ns.quantile_since(&tick.baseline, 0.99) {
            tick.controller.observe(p99);
            let pct = tick.controller.scale_pct();
            self.slo.scale_pct.store(pct, Ordering::Relaxed);
            if Telemetry::global().enabled() {
                self.metrics.beam_scale_pct.set(pct as i64);
            }
        }
        tick.baseline = self.metrics.query_latency_ns.snapshot();
    }

    /// The controller's current beam scale in percent (100 = full width;
    /// always 100 when no p99 target is configured).
    pub fn beam_scale_pct(&self) -> u32 {
        self.slo.scale_pct.load(Ordering::Relaxed)
    }

    /// Absorbs one streaming insert: the newcomer is placed in the
    /// writer's dynamic index immediately (visible to the *next* epoch),
    /// and — every [`ServingConfig::rebuild_after`] inserts — the graph
    /// is rebuilt and the new epoch published atomically.
    ///
    /// Single-writer: concurrent inserts serialize on the writer lock;
    /// queries are never blocked.
    ///
    /// A rebuild that *fails* (panics) is absorbed: the last good epoch
    /// stays live, the pending inserts — this one included — stay queued
    /// for the next attempt, `published` is `None`, and further
    /// insert-triggered publishes are deferred by a capped exponential
    /// backoff (see [`RebuildFailure`]; explicit
    /// [`ServingEngine::publish`] calls retry immediately).
    pub fn insert(&self, profile: Vec<ItemId>, seed: u64) -> InsertOutcome {
        let timer = Telemetry::global().enabled().then(Instant::now);
        let mut writer = self.writer_state();
        let (user, comparisons) = self.writer_dynamic(&mut writer).add_user(profile, seed);
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = timer {
            // Placement latency only — a triggered rebuild is accounted by
            // its own `publish` span and `cnc_rebuild_ms`.
            self.metrics.insert_latency_ns.record(start.elapsed().as_nanos() as u64);
            self.metrics.inserts_total.inc();
            self.metrics.pending_inserts.set(pending as i64);
        }
        let due = self.config.rebuild_after > 0 && pending >= self.config.rebuild_after;
        let backing_off = writer.retry_after.is_some_and(|at| Instant::now() < at);
        let published =
            if due && !backing_off { self.rebuild_locked(&mut writer).ok() } else { None };
        InsertOutcome { user, comparisons, published }
    }

    /// Rebuilds from the writer's current state and publishes the epoch
    /// now, regardless of the pending count; returns the new epoch's
    /// sequence number.
    ///
    /// # Panics
    /// Panics if the rebuild itself panics (use
    /// [`ServingEngine::try_publish`] to absorb the failure instead).
    pub fn publish(&self) -> u64 {
        self.try_publish().unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// [`ServingEngine::publish`] with failures absorbed: on a rebuild
    /// panic the last good epoch stays live, pending inserts stay queued,
    /// and the typed [`RebuildFailure`] is returned. Retries immediately
    /// regardless of the insert path's backoff deferral (an explicit call
    /// is its own decision to retry), though it still advances the
    /// deferral on failure.
    pub fn try_publish(&self) -> Result<u64, RebuildFailure> {
        let mut writer = self.writer_state();
        self.rebuild_locked(&mut writer)
    }

    /// Epoch rebuilds that failed and were absorbed since engine start.
    pub fn rebuild_failures(&self) -> u64 {
        self.rebuild_failures.load(Ordering::Relaxed)
    }

    /// The engine's counters, in one consistent-enough view for
    /// monitoring. Every field is a relaxed atomic or the epoch pointer —
    /// this never takes the writer lock, so health checks don't stall
    /// behind an in-progress rebuild.
    pub fn stats(&self) -> ServingStats {
        let epoch = self.current_epoch();
        let pending = self.pending.load(Ordering::Relaxed);
        ServingStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            epoch: epoch.epoch(),
            num_users: epoch.num_users(),
            pending_inserts: pending,
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rebuild_failures: self.rebuild_failures.load(Ordering::Relaxed),
        }
    }

    /// The reuse figures of the most recent epoch publishes (oldest
    /// first, at most the newest 1024 swaps retained; the initial build
    /// is not a swap). This is the serve bench's `reuse_ratio` /
    /// `rebuild_ms` trajectory source.
    pub fn rebuild_history(&self) -> Vec<RebuildStats> {
        self.history_state().iter().copied().collect()
    }

    /// Incremental rebuild + epoch swap, with the writer lock held
    /// (single writer): only the clusters touched since the last epoch —
    /// tracked by the dynamic index's inserted ids and the `BuildPlan`
    /// content hashes — are re-solved against the writer's
    /// [`ClusterCache`]; cached partial lists cover the rest. Readers
    /// keep serving the old epoch until the single pointer store below.
    ///
    /// A build that panics is caught *before* any engine state changes:
    /// the writer's dynamic index, cache and pending count are untouched
    /// (the build only read them), the epoch pointer never moves, and the
    /// failure is recorded (`cnc_rebuild_failures_total`, the
    /// `cnc_epoch_staleness_ms` gauge) with a backoff deferral for the
    /// next insert-triggered retry. Readers can never observe a partial
    /// epoch: the only visible transition is the single `Arc` store on
    /// the success path.
    fn rebuild_locked(&self, writer: &mut Writer) -> Result<u64, RebuildFailure> {
        let telemetry = Telemetry::global();
        let mut span = telemetry.span("publish");
        // No inserts since the last swap leaves the dynamic index
        // unmaterialized; the rebuild then runs straight off the live
        // epoch's (possibly mapped, cheaply cloned) buffers.
        let (dataset, inserted): (Dataset, Vec<UserId>) = match &writer.dynamic {
            Some(dynamic) => (dynamic.to_dataset(), dynamic.inserted_ids().collect()),
            None => (self.current_epoch().dataset.clone(), Vec::new()),
        };
        let built = catch_unwind(AssertUnwindSafe(|| {
            build_epoch(&dataset, &self.config, &writer.cache, &inserted)
        }));
        let (graph, fingerprints, cache, rebuild) = match built {
            Ok(parts) => parts,
            Err(payload) => {
                writer.failed_attempts += 1;
                let retry_after = rebuild_backoff(writer.failed_attempts);
                writer.retry_after = Some(Instant::now() + retry_after);
                self.rebuild_failures.fetch_add(1, Ordering::Relaxed);
                let staleness = writer.published_at.elapsed();
                if telemetry.enabled() {
                    span.attr("failed", 1);
                    self.metrics.rebuild_failures.inc();
                    self.metrics.epoch_staleness_ms.set(staleness.as_millis() as i64);
                }
                return Err(RebuildFailure {
                    reason: describe_panic(payload.as_ref()),
                    attempts: writer.failed_attempts,
                    staleness,
                    retry_after,
                });
            }
        };
        let next = self.epoch_read().epoch() + 1;
        let mut epoch = ServingEpoch::new(next, dataset, graph, fingerprints);
        epoch.rebuild = rebuild;
        let epoch = Arc::new(epoch);
        writer.dynamic = None;
        writer.cache = cache;
        writer.failed_attempts = 0;
        writer.retry_after = None;
        writer.published_at = Instant::now();
        self.pending.store(0, Ordering::Relaxed);
        *self.epoch_write() = Arc::clone(&epoch);
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        if telemetry.enabled() {
            span.attr("epoch", next);
            span.attr("clusters_resolved", rebuild.clusters_resolved as u64);
            span.attr("clusters_reused", rebuild.clusters_reused() as u64);
            self.metrics.epoch_publishes.inc();
            self.metrics.rebuild_ms.record(rebuild.rebuild_ms as u64);
            self.metrics.epoch.set(next as i64);
            self.metrics.epoch_users.set(epoch.num_users() as i64);
            self.metrics.pending_inserts.set(0);
            self.metrics.epoch_staleness_ms.set(0);
        }
        let mut history = self.history_state();
        if history.len() == REBUILD_HISTORY_CAP {
            history.pop_front();
        }
        history.push_back(rebuild);
        Ok(next)
    }
}

/// One **incremental** C² build on the sharded runtime: fingerprints
/// built once (in parallel, on the runtime's worker budget) and shared
/// between the graph construction and the returned serving state; only
/// clusters missing `prev` — or touched by a `force_dirty` user — are
/// re-solved. Returns the graph, the shared fingerprints, the cache for
/// the *next* build and the reuse figures (`rebuild_ms` covers the whole
/// epoch build, fingerprinting included).
fn build_epoch(
    dataset: &Dataset,
    config: &ServingConfig,
    prev: &ClusterCache,
    force_dirty: &[UserId],
) -> (KnnGraph, Option<Arc<GoldFinger>>, ClusterCache, RebuildStats) {
    let start = Instant::now();
    let runtime = Runtime::new(config.runtime);
    let (graph, fingerprints, cache, mut rebuild) = match config.c2.backend {
        SimilarityBackend::GoldFinger { bits, seed } => {
            let gf = Arc::new(GoldFinger::build_parallel(
                dataset,
                bits,
                seed,
                config.runtime.effective_workers(),
            ));
            let result = runtime.execute_incremental_shared(
                dataset,
                &config.c2,
                Arc::clone(&gf),
                prev,
                force_dirty,
            );
            (result.graph, Some(gf), result.cache, result.rebuild)
        }
        SimilarityBackend::Raw => {
            let result = runtime.execute_incremental(dataset, &config.c2, prev, force_dirty);
            (result.graph, None, result.cache, result.rebuild)
        }
    };
    rebuild.rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
    (graph, fingerprints, cache, rebuild)
}

/// A fresh writer-side dynamic index over a published epoch (profiles,
/// graph and — in fingerprint mode — the growable fingerprint copy).
fn writer_index(epoch: &ServingEpoch, config: &ServingConfig) -> DynamicIndex {
    match &epoch.fingerprints {
        Some(gf) => DynamicIndex::with_goldfinger(
            &epoch.dataset,
            epoch.graph.clone(),
            config.beam,
            (**gf).clone(),
        ),
        None => DynamicIndex::new(&epoch.dataset, epoch.graph.clone(), config.beam),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;
    use cnc_faults::{silence_injected_panics, FaultPlan, Faults, Site};

    fn dataset(seed: u64) -> Dataset {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.num_users = 300;
        cfg.num_items = 250;
        cfg.communities = 6;
        cfg.mean_profile = 18.0;
        cfg.min_profile = 6;
        cfg.generate()
    }

    fn config(rebuild_after: usize) -> ServingConfig {
        ServingConfig {
            c2: C2Config {
                k: 8,
                backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 5 },
                seed: 11,
                threads: 1,
                ..C2Config::default()
            },
            runtime: RuntimeConfig::with_workers(2),
            beam: BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
            rebuild_after,
            slo: SloConfig::default(),
        }
    }

    #[test]
    fn queries_are_deterministic_and_counted() {
        let ds = dataset(41);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let query = ds.profile(10);
        let a = engine.query(query, 5, 7);
        let b = engine.query(query, 5, 7);
        assert_eq!(a.neighbors, b.neighbors);
        assert!(!a.neighbors.is_empty());
        assert!(a.comparisons > 0);
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.num_users, ds.num_users());
    }

    #[test]
    fn unsorted_query_profiles_are_normalized() {
        let ds = dataset(43);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let sorted = engine.query(&[3, 9, 40], 5, 1);
        let shuffled = engine.query(&[40, 3, 9, 3], 5, 1);
        assert_eq!(sorted.neighbors, shuffled.neighbors);
    }

    #[test]
    fn inserts_publish_after_the_configured_threshold() {
        let ds = dataset(47);
        let n = ds.num_users();
        let engine = ServingEngine::build(ds.clone(), config(5));
        for i in 0..4u32 {
            let outcome = engine.insert(ds.profile(i * 7).to_vec(), i as u64);
            assert_eq!(outcome.published, None, "insert {i} must not publish yet");
        }
        let fifth = engine.insert(ds.profile(50).to_vec(), 99);
        assert_eq!(fifth.published, Some(2), "fifth insert must publish epoch 2");
        let stats = engine.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.epoch_swaps, 1);
        assert_eq!(stats.num_users, n + 5, "published epoch serves the absorbed users");
        assert_eq!(stats.pending_inserts, 0);
    }

    #[test]
    fn manual_publish_absorbs_pending_inserts() {
        let ds = dataset(53);
        let engine = ServingEngine::build(ds.clone(), config(0));
        engine.insert(ds.profile(1).to_vec(), 1);
        engine.insert(ds.profile(2).to_vec(), 2);
        assert_eq!(engine.stats().pending_inserts, 2);
        assert_eq!(engine.publish(), 2);
        let stats = engine.stats();
        assert_eq!(stats.num_users, ds.num_users() + 2);
        assert_eq!(stats.pending_inserts, 0);
    }

    #[test]
    fn readers_keep_their_epoch_across_a_swap() {
        let ds = dataset(59);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let held = engine.current_epoch();
        engine.insert(ds.profile(0).to_vec(), 3);
        engine.publish();
        assert_eq!(held.epoch(), 1, "a held epoch must not change under a swap");
        assert_eq!(held.num_users(), ds.num_users());
        assert_eq!(engine.current_epoch().epoch(), 2);
    }

    #[test]
    fn raw_backend_serves_without_fingerprints() {
        let ds = dataset(61);
        let mut cfg = config(0);
        cfg.c2.backend = SimilarityBackend::Raw;
        let engine = ServingEngine::build(ds.clone(), cfg);
        assert!(engine.current_epoch().fingerprints().is_none());
        let result = engine.query(ds.profile(5), 5, 2);
        assert!(!result.neighbors.is_empty());
        engine.insert(ds.profile(9).to_vec(), 1);
        assert_eq!(engine.publish(), 2);
    }

    #[test]
    #[should_panic(expected = "fingerprints must match the configured backend")]
    fn mismatched_snapshot_fingerprints_are_rejected() {
        let ds = dataset(67);
        let engine = ServingEngine::build(ds, config(0));
        let snapshot = engine.snapshot();
        let mut other = config(0);
        other.c2.backend = SimilarityBackend::GoldFinger { bits: 1024, seed: 999 };
        ServingEngine::from_snapshot(snapshot, other);
    }

    #[test]
    fn epoch_publishes_carry_incremental_rebuild_stats() {
        let ds = dataset(83);
        let engine = ServingEngine::build(ds.clone(), config(0));
        // The initial build resolves everything (empty cache) and is not
        // recorded as a swap.
        let initial = engine.current_epoch().rebuild_stats();
        assert!(initial.clusters_total > 0);
        assert_eq!(initial.clusters_resolved, initial.clusters_total);
        assert_eq!(initial.reuse_ratio, 0.0);
        assert!(engine.rebuild_history().is_empty());

        // A publish after a few inserts re-solves only the touched
        // clusters.
        for i in 0..3u32 {
            engine.insert(ds.profile(i * 11).to_vec(), i as u64);
        }
        engine.publish();
        let stats = engine.current_epoch().rebuild_stats();
        assert_eq!(stats.clusters_total, stats.clusters_resolved + stats.clusters_reused());
        assert!(
            stats.reuse_ratio > 0.5,
            "only {:.2} of {} clusters reused after 3 inserts",
            stats.reuse_ratio,
            stats.clusters_total
        );
        assert!(stats.rebuild_ms > 0.0);
        let history = engine.rebuild_history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].clusters_total, stats.clusters_total);

        // Publishing again with nothing pending reuses every cluster.
        engine.publish();
        assert_eq!(engine.current_epoch().rebuild_stats().reuse_ratio, 1.0);
        assert_eq!(engine.rebuild_history().len(), 2);
    }

    #[test]
    fn snapshot_restored_engines_rebuild_from_an_empty_cache() {
        let ds = dataset(89);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let restored = ServingEngine::from_snapshot(engine.snapshot(), config(0));
        assert_eq!(restored.current_epoch().rebuild_stats().clusters_total, 0);
        restored.insert(ds.profile(4).to_vec(), 1);
        restored.publish();
        // First publish re-seeds the cache (nothing to reuse) …
        let first = restored.current_epoch().rebuild_stats();
        assert_eq!(first.reuse_ratio, 0.0);
        assert!(first.clusters_total > 0);
        // … after which publishes are incremental again.
        restored.insert(ds.profile(9).to_vec(), 2);
        restored.publish();
        assert!(restored.current_epoch().rebuild_stats().reuse_ratio > 0.5);
    }

    #[test]
    fn failed_rebuilds_keep_the_last_good_epoch_live() {
        let _serial = crate::fault_lock();
        silence_injected_panics();
        let ds = dataset(97);
        let engine = ServingEngine::build(ds.clone(), config(0));
        engine.insert(ds.profile(3).to_vec(), 1);
        let held = engine.current_epoch();

        // Span 12 swamps the engine's per-cluster retry budget, so every
        // publish attempt aborts with a typed payload until the schedule
        // drains; p = 1 makes every cluster a candidate.
        let _guard = Faults::global()
            .arm(FaultPlan::new(12345, 1.0).only(&[Site::SolveCluster]).with_span(12));
        let failure = engine.try_publish().unwrap_err();
        assert!(failure.reason.contains("solve.cluster"), "reason: {}", failure.reason);
        assert_eq!(failure.attempts, 1);

        // The last good epoch is still live and complete; the pending
        // insert survived for the next attempt.
        assert_eq!(engine.current_epoch().epoch(), 1);
        assert!(!engine.query(ds.profile(5), 5, 9).neighbors.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.rebuild_failures, 1);
        assert_eq!(stats.epoch_swaps, 0);
        assert_eq!(stats.pending_inserts, 1, "pending inserts must survive a failed rebuild");
        assert_eq!(held.epoch(), 1);

        // Each retry drains failure budget; a bounded loop must outlast
        // the schedule and publish the absorbed insert.
        let mut published = None;
        for _ in 0..64 {
            if let Ok(epoch) = engine.try_publish() {
                published = Some(epoch);
                break;
            }
        }
        assert_eq!(published, Some(2), "retries must eventually publish");
        let stats = engine.stats();
        assert_eq!(stats.pending_inserts, 0);
        assert_eq!(stats.num_users, ds.num_users() + 1);
        assert!(stats.rebuild_failures >= 1);
    }

    #[test]
    fn insert_triggered_retries_back_off_then_recover() {
        let _serial = crate::fault_lock();
        silence_injected_panics();
        let ds = dataset(101);
        let engine = ServingEngine::build(ds.clone(), config(1));
        let guard = Faults::global()
            .arm(FaultPlan::new(2024, 1.0).only(&[Site::SolveCluster]).with_span(12));

        // rebuild_after = 1: this insert triggers a publish, which fails
        // and is absorbed.
        let first = engine.insert(ds.profile(1).to_vec(), 1);
        assert_eq!(first.published, None);
        let failures = engine.rebuild_failures();
        assert!(failures >= 1);
        assert_eq!(engine.current_epoch().epoch(), 1);

        // The immediate next insert lands inside the backoff window, so
        // no rebuild is even attempted.
        let second = engine.insert(ds.profile(2).to_vec(), 2);
        assert_eq!(second.published, None);
        assert_eq!(engine.rebuild_failures(), failures, "backoff must gate the retry");
        assert_eq!(engine.stats().pending_inserts, 2);

        // Chaos over; once the deferral lapses the next insert publishes
        // everything that queued up during the outage.
        drop(guard);
        std::thread::sleep(rebuild_backoff(failures.min(u32::MAX as u64) as u32));
        let third = engine.insert(ds.profile(3).to_vec(), 3);
        assert_eq!(third.published, Some(2));
        let stats = engine.stats();
        assert_eq!(stats.pending_inserts, 0);
        assert_eq!(stats.num_users, ds.num_users() + 3, "no insert may be lost to the outage");
    }

    #[test]
    fn rebuild_failures_preserve_genuine_panic_messages() {
        // Recovery must not anonymize real bugs: a non-injected payload
        // keeps its message, an injected one names its site.
        let genuine: Box<dyn std::any::Any + Send> = Box::new("genuine bug at cluster 7");
        assert_eq!(describe_panic(genuine.as_ref()), "genuine bug at cluster 7");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("kaput"));
        assert_eq!(describe_panic(owned.as_ref()), "kaput");
        let injected: Box<dyn std::any::Any + Send> =
            Box::new(cnc_faults::InjectedPanic { site: Site::SolveCluster, key: 3 });
        assert_eq!(describe_panic(injected.as_ref()), "injected fault at solve.cluster (key 3)");
        assert!(rebuild_backoff(1) < rebuild_backoff(2));
        assert_eq!(rebuild_backoff(30), REBUILD_RETRY_CAP);
    }

    #[test]
    fn sessions_survive_epoch_swaps() {
        let ds = dataset(71);
        let engine = ServingEngine::build(ds.clone(), config(3));
        let mut session = engine.session();
        let before = engine.query_with(&mut session, ds.profile(4), 5, 9);
        for i in 0..3u32 {
            engine.insert(ds.profile(i).to_vec(), i as u64);
        }
        assert_eq!(engine.current_epoch().epoch(), 2);
        let after = engine.query_with(&mut session, ds.profile(4), 5, 9);
        assert!(!before.neighbors.is_empty() && !after.neighbors.is_empty());
        // Same profile, fresh scratch: the session must behave like a new
        // one on the new epoch.
        assert_eq!(after.neighbors, engine.query(ds.profile(4), 5, 9).neighbors);
    }
}
