//! The concurrent serving engine: epoch-swapped reads, a single writer.
//!
//! The paper's motivating deployment ("online news recommenders, in which
//! the use of fresh data is of utmost importance", §I) alternates two
//! activities: serving KNN queries from the freshest built graph, and
//! absorbing the interaction stream so the next graph is fresher still.
//! [`ServingEngine`] runs both concurrently:
//!
//! * **Readers** load the current [`ServingEpoch`] — an immutable bundle
//!   of dataset + graph + fingerprints — as one `Arc` clone under a brief
//!   read lock (two atomic operations; no lock is held while the query
//!   executes), then answer through the batched beam search of
//!   `cnc-query`. Any number of threads query in parallel, and a query
//!   started on epoch `e` finishes on epoch `e` even if a swap happens
//!   mid-flight.
//! * **The writer** absorbs streaming inserts into a
//!   [`DynamicIndex`] (each newcomer gets a neighbourhood *now*, and
//!   existing users receive it as a reverse neighbour), and every
//!   [`ServingConfig::rebuild_after`] inserts rebuilds the graph with the
//!   full C² pipeline on the sharded [`Runtime`] — re-fingerprinting once
//!   and sharing that build between the construction
//!   ([`Runtime::execute_shared`]) and the published epoch's query
//!   kernels — then **atomically publishes** the new epoch.
//!
//! Epochs persist: [`ServingEngine::snapshot`] captures the current epoch
//! in the [`crate::Snapshot`] format and
//! [`ServingEngine::from_snapshot`] brings a server back up from disk,
//! answering queries identically to the engine that wrote it (locked by
//! `tests/serve.rs`).

use crate::snapshot::{write_snapshot, Snapshot, SnapshotError};
use cnc_core::{C2Config, ClusterCache, RebuildStats};
use cnc_dataset::{Dataset, ItemId, UserId};
use cnc_graph::KnnGraph;
use cnc_query::{BeamSearchConfig, DynamicIndex, QueryIndex, QueryResult, Searcher};
use cnc_runtime::{Runtime, RuntimeConfig};
use cnc_similarity::{GoldFinger, SimilarityBackend};
use cnc_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Everything the engine needs to build, serve and rebuild.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// The C² build configuration (backend, k, clustering knobs); used
    /// for the initial build and every epoch rebuild.
    pub c2: C2Config,
    /// The sharded runtime executing (re)builds.
    pub runtime: RuntimeConfig,
    /// Beam-search parameters for queries and insert placements.
    pub beam: BeamSearchConfig,
    /// Rebuild and publish a new epoch after this many inserts
    /// (0 = only on explicit [`ServingEngine::publish`] calls).
    pub rebuild_after: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            c2: C2Config::default(),
            runtime: RuntimeConfig::default(),
            beam: BeamSearchConfig::default(),
            rebuild_after: 1024,
        }
    }
}

/// One immutable published serving state. Readers hold it by `Arc`, so a
/// swap never invalidates an in-flight query.
pub struct ServingEpoch {
    epoch: u64,
    dataset: Dataset,
    graph: KnnGraph,
    fingerprints: Option<Arc<GoldFinger>>,
    /// How the build that published this epoch split between reused and
    /// re-solved clusters (all-zero for epochs restored from parts or a
    /// snapshot, which carry no build record).
    rebuild: RebuildStats,
}

impl ServingEpoch {
    /// Bundles an epoch; the parts must agree on the user count.
    ///
    /// # Panics
    /// Panics on a user-count mismatch.
    pub fn new(
        epoch: u64,
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
    ) -> Self {
        assert_eq!(dataset.num_users(), graph.num_users(), "graph/dataset user mismatch");
        if let Some(gf) = &fingerprints {
            assert_eq!(gf.num_users(), dataset.num_users(), "fingerprints must cover the dataset");
        }
        ServingEpoch { epoch, dataset, graph, fingerprints, rebuild: RebuildStats::default() }
    }

    /// The epoch's sequence number (1 for the initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The reuse figures of the incremental build that published this
    /// epoch: `clusters_total`, `clusters_resolved`, `reuse_ratio` and
    /// `rebuild_ms` (zeros when the epoch was loaded rather than built).
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.rebuild
    }

    /// Users served by this epoch.
    pub fn num_users(&self) -> usize {
        self.dataset.num_users()
    }

    /// The epoch's dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The epoch's graph.
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// The epoch's fingerprints, when the backend uses them.
    pub fn fingerprints(&self) -> Option<&Arc<GoldFinger>> {
        self.fingerprints.as_ref()
    }

    /// A query index over this epoch (fingerprint-scored when the epoch
    /// carries fingerprints, exact Jaccard otherwise).
    pub fn index(&self) -> QueryIndex<'_> {
        match &self.fingerprints {
            Some(gf) => QueryIndex::with_goldfinger(&self.dataset, &self.graph, gf),
            None => QueryIndex::new(&self.dataset, &self.graph),
        }
    }
}

/// The result of one streaming insert.
#[derive(Clone, Copy, Debug)]
pub struct InsertOutcome {
    /// The id the newcomer will have in the next published epoch.
    pub user: UserId,
    /// Similarity computations the placement search spent.
    pub comparisons: usize,
    /// `Some(epoch)` when this insert triggered a rebuild and published
    /// that epoch.
    pub published: Option<u64>,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Copy, Debug)]
pub struct ServingStats {
    /// Queries answered so far.
    pub queries: u64,
    /// Streaming inserts absorbed so far.
    pub inserts: u64,
    /// Epochs published after the initial one (i.e. swaps).
    pub epoch_swaps: u64,
    /// The current epoch's sequence number.
    pub epoch: u64,
    /// Users served by the current epoch.
    pub num_users: usize,
    /// Inserts absorbed but not yet published.
    pub pending_inserts: usize,
}

/// Per-client scratch (visited marks + batch buffers) reused across
/// queries and epoch swaps.
pub struct ServingSession {
    searcher: Searcher,
}

/// The writer side: the dynamic index absorbing the stream, plus the
/// per-cluster solution cache the next incremental rebuild consults. The
/// pending count lives in an engine-level atomic so monitoring never has
/// to take this lock (a rebuild holds it for the full build).
struct Writer {
    dynamic: DynamicIndex,
    cache: ClusterCache,
}

/// Telemetry handles for the serving path, resolved once at engine
/// construction (the registry lock never appears on the query path).
/// Recording is gated on [`Telemetry::enabled`] at each site; the
/// histograms are the bounded-memory source of the serve bench's latency
/// percentiles.
struct ServeMetrics {
    queries_served: Arc<Counter>,
    queries_empty: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
    query_comparisons: Arc<Histogram>,
    insert_latency_ns: Arc<Histogram>,
    inserts_total: Arc<Counter>,
    epoch_publishes: Arc<Counter>,
    rebuild_ms: Arc<Histogram>,
    epoch: Arc<Gauge>,
    epoch_users: Arc<Gauge>,
    pending_inserts: Arc<Gauge>,
}

impl ServeMetrics {
    fn new() -> Self {
        let t = Telemetry::global();
        ServeMetrics {
            queries_served: t.counter("cnc_queries_total", &[("outcome", "served")]),
            queries_empty: t.counter("cnc_queries_total", &[("outcome", "empty")]),
            query_latency_ns: t.histogram("cnc_query_latency_ns", &[]),
            query_comparisons: t.histogram("cnc_query_comparisons", &[]),
            insert_latency_ns: t.histogram("cnc_insert_latency_ns", &[]),
            inserts_total: t.counter("cnc_inserts_total", &[]),
            epoch_publishes: t.counter("cnc_epoch_publishes_total", &[]),
            rebuild_ms: t.histogram("cnc_rebuild_ms", &[]),
            epoch: t.gauge("cnc_epoch", &[]),
            epoch_users: t.gauge("cnc_epoch_users", &[]),
            pending_inserts: t.gauge("cnc_pending_inserts", &[]),
        }
    }
}

/// A concurrent KNN serving engine (see the module docs).
pub struct ServingEngine {
    config: ServingConfig,
    current: RwLock<Arc<ServingEpoch>>,
    writer: Mutex<Writer>,
    queries: AtomicU64,
    inserts: AtomicU64,
    epoch_swaps: AtomicU64,
    /// Inserts absorbed but not yet published (written under the writer
    /// lock, read lock-free by [`ServingEngine::stats`]).
    pending: AtomicUsize,
    /// One [`RebuildStats`] per published epoch swap (the initial build is
    /// not a swap and is excluded), for the serve bench's reuse
    /// trajectory. Bounded to [`REBUILD_HISTORY_CAP`] entries — a
    /// long-lived engine publishing every few seconds must not grow
    /// monitoring state without bound; the oldest swaps are dropped.
    rebuild_history: Mutex<std::collections::VecDeque<RebuildStats>>,
    metrics: ServeMetrics,
}

/// Retained epoch-publish records (newest kept; see
/// [`ServingEngine::rebuild_history`]).
const REBUILD_HISTORY_CAP: usize = 1024;

impl ServingEngine {
    /// Builds the first epoch from `dataset` with the configured C²
    /// pipeline on the sharded runtime, fingerprinting once and sharing
    /// the build between construction and serving. The build's
    /// per-cluster solutions seed the writer's [`ClusterCache`], so the
    /// first published epoch already rebuilds incrementally.
    ///
    /// # Panics
    /// Panics if the configurations are invalid (see [`Runtime::new`] and
    /// [`BeamSearchConfig::validate`]).
    pub fn build(dataset: Dataset, config: ServingConfig) -> Self {
        let empty = ClusterCache::new(&config.c2);
        let (graph, fingerprints, cache, rebuild) = build_epoch(&dataset, &config, &empty, &[]);
        Self::from_parts_with(dataset, graph, fingerprints, config, cache, rebuild)
    }

    /// Wraps an already-built state (the first epoch) without rebuilding.
    /// The writer's cluster cache starts empty, so the *first* published
    /// epoch re-solves every cluster and re-seeds the cache.
    ///
    /// # Panics
    /// Panics if the parts disagree on the user count, the fingerprints'
    /// presence does not match the configured backend, or the beam
    /// configuration is invalid for the graph's `k`.
    pub fn from_parts(
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
        config: ServingConfig,
    ) -> Self {
        let cache = ClusterCache::new(&config.c2);
        Self::from_parts_with(dataset, graph, fingerprints, config, cache, RebuildStats::default())
    }

    fn from_parts_with(
        dataset: Dataset,
        graph: KnnGraph,
        fingerprints: Option<Arc<GoldFinger>>,
        config: ServingConfig,
        cache: ClusterCache,
        rebuild: RebuildStats,
    ) -> Self {
        match (&config.c2.backend, &fingerprints) {
            (SimilarityBackend::GoldFinger { bits, seed }, Some(gf)) => assert_eq!(
                (*bits, *seed),
                (gf.bits(), gf.seed()),
                "fingerprints must match the configured backend"
            ),
            (SimilarityBackend::GoldFinger { .. }, None) => {
                panic!("GoldFinger backend requires the epoch's fingerprints")
            }
            (SimilarityBackend::Raw, Some(_)) => {
                panic!("Raw backend must not carry fingerprints")
            }
            (SimilarityBackend::Raw, None) => {}
        }
        let mut epoch = ServingEpoch::new(1, dataset, graph, fingerprints);
        epoch.rebuild = rebuild;
        let epoch = Arc::new(epoch);
        let writer = Writer { dynamic: writer_index(&epoch, &config), cache };
        let metrics = ServeMetrics::new();
        if Telemetry::global().enabled() {
            metrics.epoch.set(epoch.epoch() as i64);
            metrics.epoch_users.set(epoch.num_users() as i64);
        }
        ServingEngine {
            config,
            current: RwLock::new(epoch),
            writer: Mutex::new(writer),
            queries: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            epoch_swaps: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
            rebuild_history: Mutex::new(std::collections::VecDeque::new()),
            metrics,
        }
    }

    /// Brings an engine up from a persisted snapshot; it answers queries
    /// identically to the engine that wrote the snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot's fingerprints don't match the configured
    /// backend (a mismatch would serve scores inconsistent with every
    /// future rebuild).
    pub fn from_snapshot(snapshot: Snapshot, config: ServingConfig) -> Self {
        let Snapshot { dataset, graph, goldfinger } = snapshot;
        Self::from_parts(dataset, graph, goldfinger.map(Arc::new), config)
    }

    /// Persists the current epoch to `path` **atomically**, streaming
    /// straight from the epoch's buffers (no clone of the dataset, graph
    /// or fingerprint words — the footprint matters at serving scale);
    /// returns the encoded size. Pending (unpublished) inserts are not
    /// included — publish first if they must survive.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let epoch = self.current_epoch();
        write_snapshot(&epoch.dataset, &epoch.graph, epoch.fingerprints.as_deref(), path)
    }

    /// Captures the current epoch as an owned, persistable [`Snapshot`]
    /// (clones the epoch — prefer [`ServingEngine::write_snapshot`] when
    /// the goal is just a file). Pending (unpublished) inserts are not
    /// included — publish first if they must survive.
    pub fn snapshot(&self) -> Snapshot {
        let epoch = self.current_epoch();
        Snapshot::new(
            epoch.dataset.clone(),
            epoch.graph.clone(),
            epoch.fingerprints.as_ref().map(|gf| (**gf).clone()),
        )
    }

    /// The active configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The currently published epoch (readers may hold it as long as they
    /// like; swaps never invalidate it).
    pub fn current_epoch(&self) -> Arc<ServingEpoch> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Allocates per-client scratch, reusable across queries and epoch
    /// swaps.
    pub fn session(&self) -> ServingSession {
        ServingSession { searcher: self.current_epoch().index().searcher() }
    }

    /// Answers one KNN query (allocating scratch internally; prefer
    /// [`ServingEngine::query_with`] on hot paths). The profile need not
    /// be sorted.
    pub fn query(&self, profile: &[ItemId], k: usize, seed: u64) -> QueryResult {
        let mut session = self.session();
        self.query_with(&mut session, profile, k, seed)
    }

    /// Answers one KNN query with per-client scratch.
    pub fn query_with(
        &self,
        session: &mut ServingSession,
        profile: &[ItemId],
        k: usize,
        seed: u64,
    ) -> QueryResult {
        let timer = Telemetry::global().enabled().then(Instant::now);
        let mut query = profile.to_vec();
        query.sort_unstable();
        query.dedup();
        // Clone the Arc under the read lock, run the query outside it: a
        // concurrent publish proceeds without waiting for this query.
        let epoch = self.current_epoch();
        let result =
            epoch.index().search_with(&mut session.searcher, &query, k, &self.config.beam, seed);
        self.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = timer {
            self.metrics.query_latency_ns.record(start.elapsed().as_nanos() as u64);
            self.metrics.query_comparisons.record(result.comparisons as u64);
            if result.neighbors.is_empty() {
                self.metrics.queries_empty.inc();
            } else {
                self.metrics.queries_served.inc();
            }
        }
        result
    }

    /// Absorbs one streaming insert: the newcomer is placed in the
    /// writer's dynamic index immediately (visible to the *next* epoch),
    /// and — every [`ServingConfig::rebuild_after`] inserts — the graph
    /// is rebuilt and the new epoch published atomically.
    ///
    /// Single-writer: concurrent inserts serialize on the writer lock;
    /// queries are never blocked.
    pub fn insert(&self, profile: Vec<ItemId>, seed: u64) -> InsertOutcome {
        let timer = Telemetry::global().enabled().then(Instant::now);
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let (user, comparisons) = writer.dynamic.add_user(profile, seed);
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = timer {
            // Placement latency only — a triggered rebuild is accounted by
            // its own `publish` span and `cnc_rebuild_ms`.
            self.metrics.insert_latency_ns.record(start.elapsed().as_nanos() as u64);
            self.metrics.inserts_total.inc();
            self.metrics.pending_inserts.set(pending as i64);
        }
        let published = if self.config.rebuild_after > 0 && pending >= self.config.rebuild_after {
            Some(self.rebuild_locked(&mut writer))
        } else {
            None
        };
        InsertOutcome { user, comparisons, published }
    }

    /// Rebuilds from the writer's current state and publishes the epoch
    /// now, regardless of the pending count; returns the new epoch's
    /// sequence number.
    pub fn publish(&self) -> u64 {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        self.rebuild_locked(&mut writer)
    }

    /// The engine's counters, in one consistent-enough view for
    /// monitoring. Every field is a relaxed atomic or the epoch pointer —
    /// this never takes the writer lock, so health checks don't stall
    /// behind an in-progress rebuild.
    pub fn stats(&self) -> ServingStats {
        let epoch = self.current_epoch();
        let pending = self.pending.load(Ordering::Relaxed);
        ServingStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            epoch: epoch.epoch(),
            num_users: epoch.num_users(),
            pending_inserts: pending,
        }
    }

    /// The reuse figures of the most recent epoch publishes (oldest
    /// first, at most the newest 1024 swaps retained; the initial build
    /// is not a swap). This is the serve bench's `reuse_ratio` /
    /// `rebuild_ms` trajectory source.
    pub fn rebuild_history(&self) -> Vec<RebuildStats> {
        self.rebuild_history.lock().expect("rebuild history poisoned").iter().copied().collect()
    }

    /// Incremental rebuild + epoch swap, with the writer lock held
    /// (single writer): only the clusters touched since the last epoch —
    /// tracked by the dynamic index's inserted ids and the `BuildPlan`
    /// content hashes — are re-solved against the writer's
    /// [`ClusterCache`]; cached partial lists cover the rest. Readers
    /// keep serving the old epoch until the single pointer store below.
    fn rebuild_locked(&self, writer: &mut Writer) -> u64 {
        let telemetry = Telemetry::global();
        let mut span = telemetry.span("publish");
        let dataset = writer.dynamic.to_dataset();
        let inserted: Vec<UserId> = writer.dynamic.inserted_ids().collect();
        let (graph, fingerprints, cache, rebuild) =
            build_epoch(&dataset, &self.config, &writer.cache, &inserted);
        let next = {
            let current = self.current.read().expect("epoch lock poisoned");
            current.epoch() + 1
        };
        let mut epoch = ServingEpoch::new(next, dataset, graph, fingerprints);
        epoch.rebuild = rebuild;
        let epoch = Arc::new(epoch);
        writer.dynamic = writer_index(&epoch, &self.config);
        writer.cache = cache;
        self.pending.store(0, Ordering::Relaxed);
        *self.current.write().expect("epoch lock poisoned") = Arc::clone(&epoch);
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        if telemetry.enabled() {
            span.attr("epoch", next);
            span.attr("clusters_resolved", rebuild.clusters_resolved as u64);
            span.attr("clusters_reused", rebuild.clusters_reused() as u64);
            self.metrics.epoch_publishes.inc();
            self.metrics.rebuild_ms.record(rebuild.rebuild_ms as u64);
            self.metrics.epoch.set(next as i64);
            self.metrics.epoch_users.set(epoch.num_users() as i64);
            self.metrics.pending_inserts.set(0);
        }
        let mut history = self.rebuild_history.lock().expect("rebuild history poisoned");
        if history.len() == REBUILD_HISTORY_CAP {
            history.pop_front();
        }
        history.push_back(rebuild);
        next
    }
}

/// One **incremental** C² build on the sharded runtime: fingerprints
/// built once (in parallel, on the runtime's worker budget) and shared
/// between the graph construction and the returned serving state; only
/// clusters missing `prev` — or touched by a `force_dirty` user — are
/// re-solved. Returns the graph, the shared fingerprints, the cache for
/// the *next* build and the reuse figures (`rebuild_ms` covers the whole
/// epoch build, fingerprinting included).
fn build_epoch(
    dataset: &Dataset,
    config: &ServingConfig,
    prev: &ClusterCache,
    force_dirty: &[UserId],
) -> (KnnGraph, Option<Arc<GoldFinger>>, ClusterCache, RebuildStats) {
    let start = Instant::now();
    let runtime = Runtime::new(config.runtime);
    let (graph, fingerprints, cache, mut rebuild) = match config.c2.backend {
        SimilarityBackend::GoldFinger { bits, seed } => {
            let gf = Arc::new(GoldFinger::build_parallel(
                dataset,
                bits,
                seed,
                config.runtime.effective_workers(),
            ));
            let result = runtime.execute_incremental_shared(
                dataset,
                &config.c2,
                Arc::clone(&gf),
                prev,
                force_dirty,
            );
            (result.graph, Some(gf), result.cache, result.rebuild)
        }
        SimilarityBackend::Raw => {
            let result = runtime.execute_incremental(dataset, &config.c2, prev, force_dirty);
            (result.graph, None, result.cache, result.rebuild)
        }
    };
    rebuild.rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
    (graph, fingerprints, cache, rebuild)
}

/// A fresh writer-side dynamic index over a published epoch (profiles,
/// graph and — in fingerprint mode — the growable fingerprint copy).
fn writer_index(epoch: &ServingEpoch, config: &ServingConfig) -> DynamicIndex {
    match &epoch.fingerprints {
        Some(gf) => DynamicIndex::with_goldfinger(
            &epoch.dataset,
            epoch.graph.clone(),
            config.beam,
            (**gf).clone(),
        ),
        None => DynamicIndex::new(&epoch.dataset, epoch.graph.clone(), config.beam),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_dataset::SyntheticConfig;

    fn dataset(seed: u64) -> Dataset {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.num_users = 300;
        cfg.num_items = 250;
        cfg.communities = 6;
        cfg.mean_profile = 18.0;
        cfg.min_profile = 6;
        cfg.generate()
    }

    fn config(rebuild_after: usize) -> ServingConfig {
        ServingConfig {
            c2: C2Config {
                k: 8,
                backend: SimilarityBackend::GoldFinger { bits: 1024, seed: 5 },
                seed: 11,
                threads: 1,
                ..C2Config::default()
            },
            runtime: RuntimeConfig::with_workers(2),
            beam: BeamSearchConfig { beam_width: 24, entry_points: 5, max_comparisons: 0 },
            rebuild_after,
        }
    }

    #[test]
    fn queries_are_deterministic_and_counted() {
        let ds = dataset(41);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let query = ds.profile(10);
        let a = engine.query(query, 5, 7);
        let b = engine.query(query, 5, 7);
        assert_eq!(a.neighbors, b.neighbors);
        assert!(!a.neighbors.is_empty());
        assert!(a.comparisons > 0);
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.num_users, ds.num_users());
    }

    #[test]
    fn unsorted_query_profiles_are_normalized() {
        let ds = dataset(43);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let sorted = engine.query(&[3, 9, 40], 5, 1);
        let shuffled = engine.query(&[40, 3, 9, 3], 5, 1);
        assert_eq!(sorted.neighbors, shuffled.neighbors);
    }

    #[test]
    fn inserts_publish_after_the_configured_threshold() {
        let ds = dataset(47);
        let n = ds.num_users();
        let engine = ServingEngine::build(ds.clone(), config(5));
        for i in 0..4u32 {
            let outcome = engine.insert(ds.profile(i * 7).to_vec(), i as u64);
            assert_eq!(outcome.published, None, "insert {i} must not publish yet");
        }
        let fifth = engine.insert(ds.profile(50).to_vec(), 99);
        assert_eq!(fifth.published, Some(2), "fifth insert must publish epoch 2");
        let stats = engine.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.epoch_swaps, 1);
        assert_eq!(stats.num_users, n + 5, "published epoch serves the absorbed users");
        assert_eq!(stats.pending_inserts, 0);
    }

    #[test]
    fn manual_publish_absorbs_pending_inserts() {
        let ds = dataset(53);
        let engine = ServingEngine::build(ds.clone(), config(0));
        engine.insert(ds.profile(1).to_vec(), 1);
        engine.insert(ds.profile(2).to_vec(), 2);
        assert_eq!(engine.stats().pending_inserts, 2);
        assert_eq!(engine.publish(), 2);
        let stats = engine.stats();
        assert_eq!(stats.num_users, ds.num_users() + 2);
        assert_eq!(stats.pending_inserts, 0);
    }

    #[test]
    fn readers_keep_their_epoch_across_a_swap() {
        let ds = dataset(59);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let held = engine.current_epoch();
        engine.insert(ds.profile(0).to_vec(), 3);
        engine.publish();
        assert_eq!(held.epoch(), 1, "a held epoch must not change under a swap");
        assert_eq!(held.num_users(), ds.num_users());
        assert_eq!(engine.current_epoch().epoch(), 2);
    }

    #[test]
    fn raw_backend_serves_without_fingerprints() {
        let ds = dataset(61);
        let mut cfg = config(0);
        cfg.c2.backend = SimilarityBackend::Raw;
        let engine = ServingEngine::build(ds.clone(), cfg);
        assert!(engine.current_epoch().fingerprints().is_none());
        let result = engine.query(ds.profile(5), 5, 2);
        assert!(!result.neighbors.is_empty());
        engine.insert(ds.profile(9).to_vec(), 1);
        assert_eq!(engine.publish(), 2);
    }

    #[test]
    #[should_panic(expected = "fingerprints must match the configured backend")]
    fn mismatched_snapshot_fingerprints_are_rejected() {
        let ds = dataset(67);
        let engine = ServingEngine::build(ds, config(0));
        let snapshot = engine.snapshot();
        let mut other = config(0);
        other.c2.backend = SimilarityBackend::GoldFinger { bits: 1024, seed: 999 };
        ServingEngine::from_snapshot(snapshot, other);
    }

    #[test]
    fn epoch_publishes_carry_incremental_rebuild_stats() {
        let ds = dataset(83);
        let engine = ServingEngine::build(ds.clone(), config(0));
        // The initial build resolves everything (empty cache) and is not
        // recorded as a swap.
        let initial = engine.current_epoch().rebuild_stats();
        assert!(initial.clusters_total > 0);
        assert_eq!(initial.clusters_resolved, initial.clusters_total);
        assert_eq!(initial.reuse_ratio, 0.0);
        assert!(engine.rebuild_history().is_empty());

        // A publish after a few inserts re-solves only the touched
        // clusters.
        for i in 0..3u32 {
            engine.insert(ds.profile(i * 11).to_vec(), i as u64);
        }
        engine.publish();
        let stats = engine.current_epoch().rebuild_stats();
        assert_eq!(stats.clusters_total, stats.clusters_resolved + stats.clusters_reused());
        assert!(
            stats.reuse_ratio > 0.5,
            "only {:.2} of {} clusters reused after 3 inserts",
            stats.reuse_ratio,
            stats.clusters_total
        );
        assert!(stats.rebuild_ms > 0.0);
        let history = engine.rebuild_history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].clusters_total, stats.clusters_total);

        // Publishing again with nothing pending reuses every cluster.
        engine.publish();
        assert_eq!(engine.current_epoch().rebuild_stats().reuse_ratio, 1.0);
        assert_eq!(engine.rebuild_history().len(), 2);
    }

    #[test]
    fn snapshot_restored_engines_rebuild_from_an_empty_cache() {
        let ds = dataset(89);
        let engine = ServingEngine::build(ds.clone(), config(0));
        let restored = ServingEngine::from_snapshot(engine.snapshot(), config(0));
        assert_eq!(restored.current_epoch().rebuild_stats().clusters_total, 0);
        restored.insert(ds.profile(4).to_vec(), 1);
        restored.publish();
        // First publish re-seeds the cache (nothing to reuse) …
        let first = restored.current_epoch().rebuild_stats();
        assert_eq!(first.reuse_ratio, 0.0);
        assert!(first.clusters_total > 0);
        // … after which publishes are incremental again.
        restored.insert(ds.profile(9).to_vec(), 2);
        restored.publish();
        assert!(restored.current_epoch().rebuild_stats().reuse_ratio > 0.5);
    }

    #[test]
    fn sessions_survive_epoch_swaps() {
        let ds = dataset(71);
        let engine = ServingEngine::build(ds.clone(), config(3));
        let mut session = engine.session();
        let before = engine.query_with(&mut session, ds.profile(4), 5, 9);
        for i in 0..3u32 {
            engine.insert(ds.profile(i).to_vec(), i as u64);
        }
        assert_eq!(engine.current_epoch().epoch(), 2);
        let after = engine.query_with(&mut session, ds.profile(4), 5, 9);
        assert!(!before.neighbors.is_empty() && !after.neighbors.is_empty());
        // Same profile, fresh scratch: the session must behave like a new
        // one on the new epoch.
        assert_eq!(after.neighbors, engine.query(ds.profile(4), 5, 9).neighbors);
    }
}
